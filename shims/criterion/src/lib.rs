//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Provides just what the workspace's `harness = false` benches use:
//! `Criterion`, `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId::from_parameter`, `sample_size`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! wall-clock mean over a fixed number of timed runs after a short
//! warm-up — enough to spot order-of-magnitude regressions without the
//! statistical machinery of the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Label for a parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Uses the parameter's `Display` form as the case label.
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// A function/parameter pair label.
    pub fn new<P: Display>(function: &str, p: P) -> BenchmarkId {
        BenchmarkId(format!("{function}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Times a closure over repeated runs.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        let mean = start.elapsed() / self.samples as u32;
        LAST_MEAN.with(|m| *m.borrow_mut() = Some(mean));
    }
}

thread_local! {
    static LAST_MEAN: std::cell::RefCell<Option<Duration>> =
        const { std::cell::RefCell::new(None) };
}

fn report(name: &str, samples: usize) {
    let mean = LAST_MEAN.with(|m| m.borrow_mut().take());
    match mean {
        Some(d) => println!("bench {name:<48} {d:>12.3?} /iter ({samples} samples)"),
        None => println!("bench {name:<48} (no measurement)"),
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples };
    f(&mut b);
    report(name, samples);
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 10, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: 10,
        }
    }
}

/// A group of related benchmark cases sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed runs per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one case in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Runs one case parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $func(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0usize;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, _| {
            b.iter(|| count += 1)
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(count, 4);
    }
}

//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The benchmark only ever constructs seeded [`rngs::StdRng`] values and
//! draws from half-open / inclusive numeric ranges, so that is exactly what
//! this crate provides. The generator is xoshiro256** seeded through
//! SplitMix64: deterministic for a given seed, fast, and statistically
//! strong enough for synthetic data generation and shuffling. The stream
//! differs from upstream `rand`'s ChaCha12-based `StdRng`; nothing in the
//! workspace depends on the exact upstream stream, only on seeded
//! determinism.

/// Integer/float generation from an underlying 64-bit stream.
pub trait RngCore {
    /// Next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<usize> = (0..16).map(|_| a.gen_range(0usize..1_000_000)).collect();
        let ys: Vec<usize> = (0..16).map(|_| b.gen_range(0usize..1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5..3.5);
            assert!((-2.5..3.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn inclusive_usize_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the forms the workspace's property tests actually use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! numeric range strategies, `proptest::collection::vec`, `prop_map`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Each case draws inputs from a deterministic per-case seed, so failures
//! print a reproducible case number. There is no shrinking: the failing
//! case is reported as-is.

pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of random values (subset of proptest's `Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (subset of proptest's `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property is false for this input.
        Fail(String),
        /// The input did not satisfy a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives a strategy/closure pair over many deterministic cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Runs up to `config.cases` accepted cases; returns the first
        /// failure message, if any.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
        where
            S: Strategy,
            F: FnMut(S::Value) -> TestCaseResult,
        {
            let base = match std::env::var("PROPTEST_SEED") {
                Ok(s) => s.parse::<u64>().unwrap_or(0x5EED_CAFE),
                Err(_) => 0x5EED_CAFE,
            };
            let mut accepted = 0u32;
            let mut attempts = 0u64;
            let max_attempts = (self.config.cases as u64).saturating_mul(16).max(1024);
            while accepted < self.config.cases {
                if attempts >= max_attempts {
                    return Err(format!(
                        "too many input rejections: {accepted}/{} cases after {attempts} attempts",
                        self.config.cases
                    ));
                }
                let mut rng = StdRng::seed_from_u64(base.wrapping_add(attempts));
                let value = strategy.new_value(&mut rng);
                attempts += 1;
                match test(value) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(format!(
                            "property failed at case {attempts} (seed base {base}): {msg}"
                        ));
                    }
                }
            }
            Ok(())
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-attributed function driven by [`test_runner::TestRunner`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strat = ( $($strat,)+ );
                let outcome = runner.run(&strat, |($($arg,)+)| {
                    $body
                    Ok(())
                });
                if let Err(msg) = outcome {
                    panic!("{msg}");
                }
            }
        )*
    };
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vec_strategy_respects_size_range() {
        let s = crate::collection::vec(0.0f64..1.0, 3..7);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((3..7).contains(&v.len()), "{}", v.len());
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        let s = (1usize..5).prop_map(|n| n * 10);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_inputs(xs in crate::collection::vec(-1.0f64..1.0, 1..20), k in 1usize..5) {
            prop_assert!(!xs.is_empty());
            prop_assert!((1..5).contains(&k));
            for x in &xs {
                prop_assert!((-1.0..1.0).contains(x), "{x}");
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_info() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8));
        let outcome = runner.run(&(0usize..10,), |(n,)| {
            prop_assert!(n < 3, "n = {n}");
            Ok(())
        });
        if let Err(msg) = outcome {
            panic!("{msg}");
        }
    }
}

/root/repo/target/release/examples/quickstart-5528815dfff36e70.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5528815dfff36e70: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/release/examples/rolling_eval-0dca4655830a9123.d: examples/rolling_eval.rs

/root/repo/target/release/examples/rolling_eval-0dca4655830a9123: examples/rolling_eval.rs

examples/rolling_eval.rs:

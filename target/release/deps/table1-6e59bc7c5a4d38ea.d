/root/repo/target/release/deps/table1-6e59bc7c5a4d38ea.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-6e59bc7c5a4d38ea: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:

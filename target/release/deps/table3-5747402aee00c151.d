/root/repo/target/release/deps/table3-5747402aee00c151.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-5747402aee00c151: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:

/root/repo/target/release/deps/figure5-8812c4849d07e6d5.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-8812c4849d07e6d5: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:

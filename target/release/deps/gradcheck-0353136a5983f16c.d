/root/repo/target/release/deps/gradcheck-0353136a5983f16c.d: crates/tfb-nn/tests/gradcheck.rs

/root/repo/target/release/deps/gradcheck-0353136a5983f16c: crates/tfb-nn/tests/gradcheck.rs

crates/tfb-nn/tests/gradcheck.rs:

/root/repo/target/release/deps/tfb_characteristics-0e09b4cb81b2d32c.d: crates/tfb-characteristics/src/lib.rs crates/tfb-characteristics/src/adf.rs crates/tfb-characteristics/src/catch22.rs crates/tfb-characteristics/src/correlation.rs crates/tfb-characteristics/src/shifting.rs crates/tfb-characteristics/src/strength.rs crates/tfb-characteristics/src/transition.rs crates/tfb-characteristics/src/vector.rs

/root/repo/target/release/deps/libtfb_characteristics-0e09b4cb81b2d32c.rlib: crates/tfb-characteristics/src/lib.rs crates/tfb-characteristics/src/adf.rs crates/tfb-characteristics/src/catch22.rs crates/tfb-characteristics/src/correlation.rs crates/tfb-characteristics/src/shifting.rs crates/tfb-characteristics/src/strength.rs crates/tfb-characteristics/src/transition.rs crates/tfb-characteristics/src/vector.rs

/root/repo/target/release/deps/libtfb_characteristics-0e09b4cb81b2d32c.rmeta: crates/tfb-characteristics/src/lib.rs crates/tfb-characteristics/src/adf.rs crates/tfb-characteristics/src/catch22.rs crates/tfb-characteristics/src/correlation.rs crates/tfb-characteristics/src/shifting.rs crates/tfb-characteristics/src/strength.rs crates/tfb-characteristics/src/transition.rs crates/tfb-characteristics/src/vector.rs

crates/tfb-characteristics/src/lib.rs:
crates/tfb-characteristics/src/adf.rs:
crates/tfb-characteristics/src/catch22.rs:
crates/tfb-characteristics/src/correlation.rs:
crates/tfb-characteristics/src/shifting.rs:
crates/tfb-characteristics/src/strength.rs:
crates/tfb-characteristics/src/transition.rs:
crates/tfb-characteristics/src/vector.rs:

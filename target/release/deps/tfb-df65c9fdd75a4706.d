/root/repo/target/release/deps/tfb-df65c9fdd75a4706.d: src/bin/tfb.rs

/root/repo/target/release/deps/tfb-df65c9fdd75a4706: src/bin/tfb.rs

src/bin/tfb.rs:

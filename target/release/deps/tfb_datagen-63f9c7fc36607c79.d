/root/repo/target/release/deps/tfb_datagen-63f9c7fc36607c79.d: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

/root/repo/target/release/deps/libtfb_datagen-63f9c7fc36607c79.rlib: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

/root/repo/target/release/deps/libtfb_datagen-63f9c7fc36607c79.rmeta: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

crates/tfb-datagen/src/lib.rs:
crates/tfb-datagen/src/components.rs:
crates/tfb-datagen/src/profiles.rs:
crates/tfb-datagen/src/univariate.rs:

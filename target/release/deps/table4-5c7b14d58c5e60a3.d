/root/repo/target/release/deps/table4-5c7b14d58c5e60a3.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-5c7b14d58c5e60a3: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:

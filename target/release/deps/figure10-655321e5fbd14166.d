/root/repo/target/release/deps/figure10-655321e5fbd14166.d: crates/bench/src/bin/figure10.rs

/root/repo/target/release/deps/figure10-655321e5fbd14166: crates/bench/src/bin/figure10.rs

crates/bench/src/bin/figure10.rs:

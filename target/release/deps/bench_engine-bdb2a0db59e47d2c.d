/root/repo/target/release/deps/bench_engine-bdb2a0db59e47d2c.d: crates/bench/src/bin/bench_engine.rs

/root/repo/target/release/deps/bench_engine-bdb2a0db59e47d2c: crates/bench/src/bin/bench_engine.rs

crates/bench/src/bin/bench_engine.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench

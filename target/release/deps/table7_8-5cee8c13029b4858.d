/root/repo/target/release/deps/table7_8-5cee8c13029b4858.d: crates/bench/src/bin/table7_8.rs

/root/repo/target/release/deps/table7_8-5cee8c13029b4858: crates/bench/src/bin/table7_8.rs

crates/bench/src/bin/table7_8.rs:

/root/repo/target/release/deps/proptest-bf506c3ba1e863f8.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-bf506c3ba1e863f8.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-bf506c3ba1e863f8.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

/root/repo/target/release/deps/figure3-5f85ff93804a87e1.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-5f85ff93804a87e1: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:

/root/repo/target/release/deps/table5-730871bea4461e51.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-730871bea4461e51: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:

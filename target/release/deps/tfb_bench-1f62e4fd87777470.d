/root/repo/target/release/deps/tfb_bench-1f62e4fd87777470.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtfb_bench-1f62e4fd87777470.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtfb_bench-1f62e4fd87777470.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/release/deps/figure9-f6b73d206aaa8354.d: crates/bench/src/bin/figure9.rs

/root/repo/target/release/deps/figure9-f6b73d206aaa8354: crates/bench/src/bin/figure9.rs

crates/bench/src/bin/figure9.rs:

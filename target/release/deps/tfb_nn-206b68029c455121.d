/root/repo/target/release/deps/tfb_nn-206b68029c455121.d: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

/root/repo/target/release/deps/tfb_nn-206b68029c455121: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

crates/tfb-nn/src/lib.rs:
crates/tfb-nn/src/blocks.rs:
crates/tfb-nn/src/models.rs:
crates/tfb-nn/src/optim.rs:
crates/tfb-nn/src/tape.rs:
crates/tfb-nn/src/train.rs:

/root/repo/target/release/deps/table2-66b86fd9b48ed36b.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-66b86fd9b48ed36b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:

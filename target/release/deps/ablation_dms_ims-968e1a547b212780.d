/root/repo/target/release/deps/ablation_dms_ims-968e1a547b212780.d: crates/bench/src/bin/ablation_dms_ims.rs

/root/repo/target/release/deps/ablation_dms_ims-968e1a547b212780: crates/bench/src/bin/ablation_dms_ims.rs

crates/bench/src/bin/ablation_dms_ims.rs:

/root/repo/target/release/deps/tfb_json-be8fcf4d95d8de78.d: crates/tfb-json/src/lib.rs

/root/repo/target/release/deps/libtfb_json-be8fcf4d95d8de78.rlib: crates/tfb-json/src/lib.rs

/root/repo/target/release/deps/libtfb_json-be8fcf4d95d8de78.rmeta: crates/tfb-json/src/lib.rs

crates/tfb-json/src/lib.rs:

/root/repo/target/release/deps/tfb_json-d8455a7c5e583727.d: crates/tfb-json/src/lib.rs

/root/repo/target/release/deps/libtfb_json-d8455a7c5e583727.rlib: crates/tfb-json/src/lib.rs

/root/repo/target/release/deps/libtfb_json-d8455a7c5e583727.rmeta: crates/tfb-json/src/lib.rs

crates/tfb-json/src/lib.rs:

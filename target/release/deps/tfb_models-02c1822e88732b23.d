/root/repo/target/release/deps/tfb_models-02c1822e88732b23.d: crates/tfb-models/src/lib.rs crates/tfb-models/src/arima.rs crates/tfb-models/src/ets.rs crates/tfb-models/src/gbdt.rs crates/tfb-models/src/kalman.rs crates/tfb-models/src/knn.rs crates/tfb-models/src/linear.rs crates/tfb-models/src/naive.rs crates/tfb-models/src/sarima.rs crates/tfb-models/src/forest.rs crates/tfb-models/src/tabular.rs crates/tfb-models/src/theta.rs crates/tfb-models/src/var.rs

/root/repo/target/release/deps/tfb_models-02c1822e88732b23: crates/tfb-models/src/lib.rs crates/tfb-models/src/arima.rs crates/tfb-models/src/ets.rs crates/tfb-models/src/gbdt.rs crates/tfb-models/src/kalman.rs crates/tfb-models/src/knn.rs crates/tfb-models/src/linear.rs crates/tfb-models/src/naive.rs crates/tfb-models/src/sarima.rs crates/tfb-models/src/forest.rs crates/tfb-models/src/tabular.rs crates/tfb-models/src/theta.rs crates/tfb-models/src/var.rs

crates/tfb-models/src/lib.rs:
crates/tfb-models/src/arima.rs:
crates/tfb-models/src/ets.rs:
crates/tfb-models/src/gbdt.rs:
crates/tfb-models/src/kalman.rs:
crates/tfb-models/src/knn.rs:
crates/tfb-models/src/linear.rs:
crates/tfb-models/src/naive.rs:
crates/tfb-models/src/sarima.rs:
crates/tfb-models/src/forest.rs:
crates/tfb-models/src/tabular.rs:
crates/tfb-models/src/theta.rs:
crates/tfb-models/src/var.rs:

/root/repo/target/release/deps/tfb_nn-19f3c133fc99d2a8.d: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

/root/repo/target/release/deps/libtfb_nn-19f3c133fc99d2a8.rlib: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

/root/repo/target/release/deps/libtfb_nn-19f3c133fc99d2a8.rmeta: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

crates/tfb-nn/src/lib.rs:
crates/tfb-nn/src/blocks.rs:
crates/tfb-nn/src/models.rs:
crates/tfb-nn/src/optim.rs:
crates/tfb-nn/src/tape.rs:
crates/tfb-nn/src/train.rs:

/root/repo/target/release/deps/tfb_bench-d1bd2a78531e1883.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtfb_bench-d1bd2a78531e1883.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtfb_bench-d1bd2a78531e1883.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/release/deps/determinism-544c8e92da484a83.d: crates/tfb-nn/tests/determinism.rs

/root/repo/target/release/deps/determinism-544c8e92da484a83: crates/tfb-nn/tests/determinism.rs

crates/tfb-nn/tests/determinism.rs:

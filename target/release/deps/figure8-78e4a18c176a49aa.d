/root/repo/target/release/deps/figure8-78e4a18c176a49aa.d: crates/bench/src/bin/figure8.rs

/root/repo/target/release/deps/figure8-78e4a18c176a49aa: crates/bench/src/bin/figure8.rs

crates/bench/src/bin/figure8.rs:

/root/repo/target/release/deps/tfb_math-375ea7ee40a0761e.d: crates/tfb-math/src/lib.rs crates/tfb-math/src/acf.rs crates/tfb-math/src/eigen.rs crates/tfb-math/src/fft.rs crates/tfb-math/src/loess.rs crates/tfb-math/src/matrix.rs crates/tfb-math/src/pca.rs crates/tfb-math/src/regression.rs crates/tfb-math/src/stats.rs crates/tfb-math/src/stl.rs

/root/repo/target/release/deps/tfb_math-375ea7ee40a0761e: crates/tfb-math/src/lib.rs crates/tfb-math/src/acf.rs crates/tfb-math/src/eigen.rs crates/tfb-math/src/fft.rs crates/tfb-math/src/loess.rs crates/tfb-math/src/matrix.rs crates/tfb-math/src/pca.rs crates/tfb-math/src/regression.rs crates/tfb-math/src/stats.rs crates/tfb-math/src/stl.rs

crates/tfb-math/src/lib.rs:
crates/tfb-math/src/acf.rs:
crates/tfb-math/src/eigen.rs:
crates/tfb-math/src/fft.rs:
crates/tfb-math/src/loess.rs:
crates/tfb-math/src/matrix.rs:
crates/tfb-math/src/pca.rs:
crates/tfb-math/src/regression.rs:
crates/tfb-math/src/stats.rs:
crates/tfb-math/src/stl.rs:

/root/repo/target/release/deps/proptests-1a66eb598de9826b.d: crates/tfb-math/tests/proptests.rs

/root/repo/target/release/deps/proptests-1a66eb598de9826b: crates/tfb-math/tests/proptests.rs

crates/tfb-math/tests/proptests.rs:

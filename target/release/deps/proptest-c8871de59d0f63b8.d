/root/repo/target/release/deps/proptest-c8871de59d0f63b8.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c8871de59d0f63b8.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c8871de59d0f63b8.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

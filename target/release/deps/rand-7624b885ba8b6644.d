/root/repo/target/release/deps/rand-7624b885ba8b6644.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-7624b885ba8b6644.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-7624b885ba8b6644.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:

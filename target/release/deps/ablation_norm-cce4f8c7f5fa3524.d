/root/repo/target/release/deps/ablation_norm-cce4f8c7f5fa3524.d: crates/bench/src/bin/ablation_norm.rs

/root/repo/target/release/deps/ablation_norm-cce4f8c7f5fa3524: crates/bench/src/bin/ablation_norm.rs

crates/bench/src/bin/ablation_norm.rs:

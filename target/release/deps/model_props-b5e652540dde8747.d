/root/repo/target/release/deps/model_props-b5e652540dde8747.d: crates/tfb-models/tests/model_props.rs

/root/repo/target/release/deps/model_props-b5e652540dde8747: crates/tfb-models/tests/model_props.rs

crates/tfb-models/tests/model_props.rs:

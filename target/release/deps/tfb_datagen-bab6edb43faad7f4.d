/root/repo/target/release/deps/tfb_datagen-bab6edb43faad7f4.d: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

/root/repo/target/release/deps/libtfb_datagen-bab6edb43faad7f4.rlib: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

/root/repo/target/release/deps/libtfb_datagen-bab6edb43faad7f4.rmeta: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

crates/tfb-datagen/src/lib.rs:
crates/tfb-datagen/src/components.rs:
crates/tfb-datagen/src/profiles.rs:
crates/tfb-datagen/src/univariate.rs:

/root/repo/target/release/deps/table6-4633765fa656bb30.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-4633765fa656bb30: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:

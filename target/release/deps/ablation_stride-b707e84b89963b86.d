/root/repo/target/release/deps/ablation_stride-b707e84b89963b86.d: crates/bench/src/bin/ablation_stride.rs

/root/repo/target/release/deps/ablation_stride-b707e84b89963b86: crates/bench/src/bin/ablation_stride.rs

crates/bench/src/bin/ablation_stride.rs:

/root/repo/target/release/deps/tfb_data-b0a435da4759a55a.d: crates/tfb-data/src/lib.rs crates/tfb-data/src/batch.rs crates/tfb-data/src/csvfmt.rs crates/tfb-data/src/impute.rs crates/tfb-data/src/normalize.rs crates/tfb-data/src/repository.rs crates/tfb-data/src/series.rs crates/tfb-data/src/split.rs crates/tfb-data/src/window.rs

/root/repo/target/release/deps/libtfb_data-b0a435da4759a55a.rlib: crates/tfb-data/src/lib.rs crates/tfb-data/src/batch.rs crates/tfb-data/src/csvfmt.rs crates/tfb-data/src/impute.rs crates/tfb-data/src/normalize.rs crates/tfb-data/src/repository.rs crates/tfb-data/src/series.rs crates/tfb-data/src/split.rs crates/tfb-data/src/window.rs

/root/repo/target/release/deps/libtfb_data-b0a435da4759a55a.rmeta: crates/tfb-data/src/lib.rs crates/tfb-data/src/batch.rs crates/tfb-data/src/csvfmt.rs crates/tfb-data/src/impute.rs crates/tfb-data/src/normalize.rs crates/tfb-data/src/repository.rs crates/tfb-data/src/series.rs crates/tfb-data/src/split.rs crates/tfb-data/src/window.rs

crates/tfb-data/src/lib.rs:
crates/tfb-data/src/batch.rs:
crates/tfb-data/src/csvfmt.rs:
crates/tfb-data/src/impute.rs:
crates/tfb-data/src/normalize.rs:
crates/tfb-data/src/repository.rs:
crates/tfb-data/src/series.rs:
crates/tfb-data/src/split.rs:
crates/tfb-data/src/window.rs:

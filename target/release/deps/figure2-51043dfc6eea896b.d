/root/repo/target/release/deps/figure2-51043dfc6eea896b.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-51043dfc6eea896b: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:

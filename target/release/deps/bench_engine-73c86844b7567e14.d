/root/repo/target/release/deps/bench_engine-73c86844b7567e14.d: crates/bench/src/bin/bench_engine.rs

/root/repo/target/release/deps/bench_engine-73c86844b7567e14: crates/bench/src/bin/bench_engine.rs

crates/bench/src/bin/bench_engine.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench

/root/repo/target/release/deps/figure11-98163145f999984b.d: crates/bench/src/bin/figure11.rs

/root/repo/target/release/deps/figure11-98163145f999984b: crates/bench/src/bin/figure11.rs

crates/bench/src/bin/figure11.rs:

/root/repo/target/release/deps/figure1-b065b207a7122dd5.d: crates/bench/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-b065b207a7122dd5: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:

/root/repo/target/release/deps/tfb-7ec788163be9c101.d: src/lib.rs

/root/repo/target/release/deps/libtfb-7ec788163be9c101.rlib: src/lib.rs

/root/repo/target/release/deps/libtfb-7ec788163be9c101.rmeta: src/lib.rs

src/lib.rs:

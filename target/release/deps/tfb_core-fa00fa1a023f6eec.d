/root/repo/target/release/deps/tfb_core-fa00fa1a023f6eec.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

/root/repo/target/release/deps/libtfb_core-fa00fa1a023f6eec.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

/root/repo/target/release/deps/libtfb_core-fa00fa1a023f6eec.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/data.rs:
crates/core/src/eval.rs:
crates/core/src/method.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/viz.rs:

/root/repo/target/release/deps/tfb-9fb698a93c396b96.d: src/bin/tfb.rs

/root/repo/target/release/deps/tfb-9fb698a93c396b96: src/bin/tfb.rs

src/bin/tfb.rs:

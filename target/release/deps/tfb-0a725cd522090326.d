/root/repo/target/release/deps/tfb-0a725cd522090326.d: src/lib.rs

/root/repo/target/release/deps/libtfb-0a725cd522090326.rlib: src/lib.rs

/root/repo/target/release/deps/libtfb-0a725cd522090326.rmeta: src/lib.rs

src/lib.rs:

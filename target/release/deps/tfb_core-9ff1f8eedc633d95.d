/root/repo/target/release/deps/tfb_core-9ff1f8eedc633d95.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

/root/repo/target/release/deps/libtfb_core-9ff1f8eedc633d95.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

/root/repo/target/release/deps/libtfb_core-9ff1f8eedc633d95.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/data.rs:
crates/core/src/eval.rs:
crates/core/src/method.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/viz.rs:

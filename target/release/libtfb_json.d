/root/repo/target/release/libtfb_json.rlib: /root/repo/crates/tfb-json/src/lib.rs

/root/repo/target/debug/examples/model_bakeoff-af1ba67e5e0a806d.d: examples/model_bakeoff.rs Cargo.toml

/root/repo/target/debug/examples/libmodel_bakeoff-af1ba67e5e0a806d.rmeta: examples/model_bakeoff.rs Cargo.toml

examples/model_bakeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/characterize-356af52dee84d119.d: examples/characterize.rs Cargo.toml

/root/repo/target/debug/examples/libcharacterize-356af52dee84d119.rmeta: examples/characterize.rs Cargo.toml

examples/characterize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/extend_tfb-0fba23a9f5c364b5.d: examples/extend_tfb.rs Cargo.toml

/root/repo/target/debug/examples/libextend_tfb-0fba23a9f5c364b5.rmeta: examples/extend_tfb.rs Cargo.toml

examples/extend_tfb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/extend_tfb-38473b512cf7ada1.d: examples/extend_tfb.rs

/root/repo/target/debug/examples/extend_tfb-38473b512cf7ada1: examples/extend_tfb.rs

examples/extend_tfb.rs:

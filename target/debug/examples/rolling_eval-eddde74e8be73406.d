/root/repo/target/debug/examples/rolling_eval-eddde74e8be73406.d: examples/rolling_eval.rs

/root/repo/target/debug/examples/rolling_eval-eddde74e8be73406: examples/rolling_eval.rs

examples/rolling_eval.rs:

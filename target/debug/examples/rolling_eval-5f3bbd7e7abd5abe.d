/root/repo/target/debug/examples/rolling_eval-5f3bbd7e7abd5abe.d: examples/rolling_eval.rs Cargo.toml

/root/repo/target/debug/examples/librolling_eval-5f3bbd7e7abd5abe.rmeta: examples/rolling_eval.rs Cargo.toml

examples/rolling_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/quickstart-f94f7b81f27826ef.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f94f7b81f27826ef: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/characterize-49565743903ea00b.d: examples/characterize.rs

/root/repo/target/debug/examples/characterize-49565743903ea00b: examples/characterize.rs

examples/characterize.rs:

/root/repo/target/debug/examples/model_bakeoff-a7c3e7ed421266db.d: examples/model_bakeoff.rs

/root/repo/target/debug/examples/model_bakeoff-a7c3e7ed421266db: examples/model_bakeoff.rs

examples/model_bakeoff.rs:

/root/repo/target/debug/examples/quickstart-2809253258dd9497.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2809253258dd9497: examples/quickstart.rs

examples/quickstart.rs:

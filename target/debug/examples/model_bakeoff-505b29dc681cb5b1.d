/root/repo/target/debug/examples/model_bakeoff-505b29dc681cb5b1.d: examples/model_bakeoff.rs

/root/repo/target/debug/examples/model_bakeoff-505b29dc681cb5b1: examples/model_bakeoff.rs

examples/model_bakeoff.rs:

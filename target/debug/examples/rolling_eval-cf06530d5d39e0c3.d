/root/repo/target/debug/examples/rolling_eval-cf06530d5d39e0c3.d: examples/rolling_eval.rs

/root/repo/target/debug/examples/rolling_eval-cf06530d5d39e0c3: examples/rolling_eval.rs

examples/rolling_eval.rs:

/root/repo/target/debug/examples/characterize-d07aca11fd6c5baf.d: examples/characterize.rs

/root/repo/target/debug/examples/characterize-d07aca11fd6c5baf: examples/characterize.rs

examples/characterize.rs:

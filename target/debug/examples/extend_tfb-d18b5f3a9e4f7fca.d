/root/repo/target/debug/examples/extend_tfb-d18b5f3a9e4f7fca.d: examples/extend_tfb.rs

/root/repo/target/debug/examples/extend_tfb-d18b5f3a9e4f7fca: examples/extend_tfb.rs

examples/extend_tfb.rs:

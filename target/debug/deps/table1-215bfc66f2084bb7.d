/root/repo/target/debug/deps/table1-215bfc66f2084bb7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-215bfc66f2084bb7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:

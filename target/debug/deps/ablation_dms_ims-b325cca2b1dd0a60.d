/root/repo/target/debug/deps/ablation_dms_ims-b325cca2b1dd0a60.d: crates/bench/src/bin/ablation_dms_ims.rs

/root/repo/target/debug/deps/ablation_dms_ims-b325cca2b1dd0a60: crates/bench/src/bin/ablation_dms_ims.rs

crates/bench/src/bin/ablation_dms_ims.rs:

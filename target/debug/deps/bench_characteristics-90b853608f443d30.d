/root/repo/target/debug/deps/bench_characteristics-90b853608f443d30.d: crates/bench/benches/bench_characteristics.rs Cargo.toml

/root/repo/target/debug/deps/libbench_characteristics-90b853608f443d30.rmeta: crates/bench/benches/bench_characteristics.rs Cargo.toml

crates/bench/benches/bench_characteristics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bench_math-36aad45290bac572.d: crates/bench/benches/bench_math.rs Cargo.toml

/root/repo/target/debug/deps/libbench_math-36aad45290bac572.rmeta: crates/bench/benches/bench_math.rs Cargo.toml

crates/bench/benches/bench_math.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/figure10-97c671aa8c6d8b37.d: crates/bench/src/bin/figure10.rs Cargo.toml

/root/repo/target/debug/deps/libfigure10-97c671aa8c6d8b37.rmeta: crates/bench/src/bin/figure10.rs Cargo.toml

crates/bench/src/bin/figure10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

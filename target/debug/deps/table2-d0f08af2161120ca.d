/root/repo/target/debug/deps/table2-d0f08af2161120ca.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-d0f08af2161120ca: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:

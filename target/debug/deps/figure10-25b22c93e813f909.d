/root/repo/target/debug/deps/figure10-25b22c93e813f909.d: crates/bench/src/bin/figure10.rs

/root/repo/target/debug/deps/figure10-25b22c93e813f909: crates/bench/src/bin/figure10.rs

crates/bench/src/bin/figure10.rs:

/root/repo/target/debug/deps/ablation_dms_ims-02fc6c8d597542ee.d: crates/bench/src/bin/ablation_dms_ims.rs

/root/repo/target/debug/deps/ablation_dms_ims-02fc6c8d597542ee: crates/bench/src/bin/ablation_dms_ims.rs

crates/bench/src/bin/ablation_dms_ims.rs:

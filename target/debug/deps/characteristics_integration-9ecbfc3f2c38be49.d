/root/repo/target/debug/deps/characteristics_integration-9ecbfc3f2c38be49.d: tests/characteristics_integration.rs

/root/repo/target/debug/deps/characteristics_integration-9ecbfc3f2c38be49: tests/characteristics_integration.rs

tests/characteristics_integration.rs:

/root/repo/target/debug/deps/figure1-c7089cedb3b11b2f.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-c7089cedb3b11b2f: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:

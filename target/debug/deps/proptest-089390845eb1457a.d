/root/repo/target/debug/deps/proptest-089390845eb1457a.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-089390845eb1457a.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-089390845eb1457a.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

/root/repo/target/debug/deps/tfb_models-55bf911a946b9807.d: crates/tfb-models/src/lib.rs crates/tfb-models/src/arima.rs crates/tfb-models/src/ets.rs crates/tfb-models/src/forest.rs crates/tfb-models/src/gbdt.rs crates/tfb-models/src/kalman.rs crates/tfb-models/src/knn.rs crates/tfb-models/src/linear.rs crates/tfb-models/src/naive.rs crates/tfb-models/src/sarima.rs crates/tfb-models/src/tabular.rs crates/tfb-models/src/theta.rs crates/tfb-models/src/var.rs

/root/repo/target/debug/deps/libtfb_models-55bf911a946b9807.rlib: crates/tfb-models/src/lib.rs crates/tfb-models/src/arima.rs crates/tfb-models/src/ets.rs crates/tfb-models/src/forest.rs crates/tfb-models/src/gbdt.rs crates/tfb-models/src/kalman.rs crates/tfb-models/src/knn.rs crates/tfb-models/src/linear.rs crates/tfb-models/src/naive.rs crates/tfb-models/src/sarima.rs crates/tfb-models/src/tabular.rs crates/tfb-models/src/theta.rs crates/tfb-models/src/var.rs

/root/repo/target/debug/deps/libtfb_models-55bf911a946b9807.rmeta: crates/tfb-models/src/lib.rs crates/tfb-models/src/arima.rs crates/tfb-models/src/ets.rs crates/tfb-models/src/forest.rs crates/tfb-models/src/gbdt.rs crates/tfb-models/src/kalman.rs crates/tfb-models/src/knn.rs crates/tfb-models/src/linear.rs crates/tfb-models/src/naive.rs crates/tfb-models/src/sarima.rs crates/tfb-models/src/tabular.rs crates/tfb-models/src/theta.rs crates/tfb-models/src/var.rs

crates/tfb-models/src/lib.rs:
crates/tfb-models/src/arima.rs:
crates/tfb-models/src/ets.rs:
crates/tfb-models/src/forest.rs:
crates/tfb-models/src/gbdt.rs:
crates/tfb-models/src/kalman.rs:
crates/tfb-models/src/knn.rs:
crates/tfb-models/src/linear.rs:
crates/tfb-models/src/naive.rs:
crates/tfb-models/src/sarima.rs:
crates/tfb-models/src/tabular.rs:
crates/tfb-models/src/theta.rs:
crates/tfb-models/src/var.rs:

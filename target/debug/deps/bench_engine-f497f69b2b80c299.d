/root/repo/target/debug/deps/bench_engine-f497f69b2b80c299.d: crates/bench/src/bin/bench_engine.rs

/root/repo/target/debug/deps/bench_engine-f497f69b2b80c299: crates/bench/src/bin/bench_engine.rs

crates/bench/src/bin/bench_engine.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench

/root/repo/target/debug/deps/tfb-11511cad1746d907.d: src/bin/tfb.rs

/root/repo/target/debug/deps/tfb-11511cad1746d907: src/bin/tfb.rs

src/bin/tfb.rs:

/root/repo/target/debug/deps/tfb_math-bc6b7d302adf8e3c.d: crates/tfb-math/src/lib.rs crates/tfb-math/src/acf.rs crates/tfb-math/src/eigen.rs crates/tfb-math/src/fft.rs crates/tfb-math/src/loess.rs crates/tfb-math/src/matrix.rs crates/tfb-math/src/pca.rs crates/tfb-math/src/regression.rs crates/tfb-math/src/stats.rs crates/tfb-math/src/stl.rs

/root/repo/target/debug/deps/libtfb_math-bc6b7d302adf8e3c.rlib: crates/tfb-math/src/lib.rs crates/tfb-math/src/acf.rs crates/tfb-math/src/eigen.rs crates/tfb-math/src/fft.rs crates/tfb-math/src/loess.rs crates/tfb-math/src/matrix.rs crates/tfb-math/src/pca.rs crates/tfb-math/src/regression.rs crates/tfb-math/src/stats.rs crates/tfb-math/src/stl.rs

/root/repo/target/debug/deps/libtfb_math-bc6b7d302adf8e3c.rmeta: crates/tfb-math/src/lib.rs crates/tfb-math/src/acf.rs crates/tfb-math/src/eigen.rs crates/tfb-math/src/fft.rs crates/tfb-math/src/loess.rs crates/tfb-math/src/matrix.rs crates/tfb-math/src/pca.rs crates/tfb-math/src/regression.rs crates/tfb-math/src/stats.rs crates/tfb-math/src/stl.rs

crates/tfb-math/src/lib.rs:
crates/tfb-math/src/acf.rs:
crates/tfb-math/src/eigen.rs:
crates/tfb-math/src/fft.rs:
crates/tfb-math/src/loess.rs:
crates/tfb-math/src/matrix.rs:
crates/tfb-math/src/pca.rs:
crates/tfb-math/src/regression.rs:
crates/tfb-math/src/stats.rs:
crates/tfb-math/src/stl.rs:

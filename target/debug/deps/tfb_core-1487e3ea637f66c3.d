/root/repo/target/debug/deps/tfb_core-1487e3ea637f66c3.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/libtfb_core-1487e3ea637f66c3.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/libtfb_core-1487e3ea637f66c3.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/data.rs:
crates/core/src/eval.rs:
crates/core/src/method.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/viz.rs:

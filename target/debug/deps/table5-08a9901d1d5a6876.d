/root/repo/target/debug/deps/table5-08a9901d1d5a6876.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-08a9901d1d5a6876: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:

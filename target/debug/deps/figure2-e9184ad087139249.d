/root/repo/target/debug/deps/figure2-e9184ad087139249.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-e9184ad087139249: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:

/root/repo/target/debug/deps/pipeline_end_to_end-ed39f8ae3727e36b.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-ed39f8ae3727e36b: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:

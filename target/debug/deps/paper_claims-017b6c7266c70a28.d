/root/repo/target/debug/deps/paper_claims-017b6c7266c70a28.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-017b6c7266c70a28: tests/paper_claims.rs

tests/paper_claims.rs:

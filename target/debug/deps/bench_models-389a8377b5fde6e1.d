/root/repo/target/debug/deps/bench_models-389a8377b5fde6e1.d: crates/bench/benches/bench_models.rs Cargo.toml

/root/repo/target/debug/deps/libbench_models-389a8377b5fde6e1.rmeta: crates/bench/benches/bench_models.rs Cargo.toml

crates/bench/benches/bench_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

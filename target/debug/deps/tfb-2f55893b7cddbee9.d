/root/repo/target/debug/deps/tfb-2f55893b7cddbee9.d: src/bin/tfb.rs

/root/repo/target/debug/deps/tfb-2f55893b7cddbee9: src/bin/tfb.rs

src/bin/tfb.rs:

/root/repo/target/debug/deps/pipeline_end_to_end-1874f6e52fb72280.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-1874f6e52fb72280: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:

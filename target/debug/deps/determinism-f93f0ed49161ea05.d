/root/repo/target/debug/deps/determinism-f93f0ed49161ea05.d: crates/tfb-nn/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-f93f0ed49161ea05.rmeta: crates/tfb-nn/tests/determinism.rs Cargo.toml

crates/tfb-nn/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

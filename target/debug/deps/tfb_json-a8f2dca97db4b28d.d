/root/repo/target/debug/deps/tfb_json-a8f2dca97db4b28d.d: crates/tfb-json/src/lib.rs

/root/repo/target/debug/deps/libtfb_json-a8f2dca97db4b28d.rlib: crates/tfb-json/src/lib.rs

/root/repo/target/debug/deps/libtfb_json-a8f2dca97db4b28d.rmeta: crates/tfb-json/src/lib.rs

crates/tfb-json/src/lib.rs:

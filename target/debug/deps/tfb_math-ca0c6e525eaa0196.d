/root/repo/target/debug/deps/tfb_math-ca0c6e525eaa0196.d: crates/tfb-math/src/lib.rs crates/tfb-math/src/acf.rs crates/tfb-math/src/eigen.rs crates/tfb-math/src/fft.rs crates/tfb-math/src/loess.rs crates/tfb-math/src/matrix.rs crates/tfb-math/src/pca.rs crates/tfb-math/src/regression.rs crates/tfb-math/src/stats.rs crates/tfb-math/src/stl.rs

/root/repo/target/debug/deps/libtfb_math-ca0c6e525eaa0196.rlib: crates/tfb-math/src/lib.rs crates/tfb-math/src/acf.rs crates/tfb-math/src/eigen.rs crates/tfb-math/src/fft.rs crates/tfb-math/src/loess.rs crates/tfb-math/src/matrix.rs crates/tfb-math/src/pca.rs crates/tfb-math/src/regression.rs crates/tfb-math/src/stats.rs crates/tfb-math/src/stl.rs

/root/repo/target/debug/deps/libtfb_math-ca0c6e525eaa0196.rmeta: crates/tfb-math/src/lib.rs crates/tfb-math/src/acf.rs crates/tfb-math/src/eigen.rs crates/tfb-math/src/fft.rs crates/tfb-math/src/loess.rs crates/tfb-math/src/matrix.rs crates/tfb-math/src/pca.rs crates/tfb-math/src/regression.rs crates/tfb-math/src/stats.rs crates/tfb-math/src/stl.rs

crates/tfb-math/src/lib.rs:
crates/tfb-math/src/acf.rs:
crates/tfb-math/src/eigen.rs:
crates/tfb-math/src/fft.rs:
crates/tfb-math/src/loess.rs:
crates/tfb-math/src/matrix.rs:
crates/tfb-math/src/pca.rs:
crates/tfb-math/src/regression.rs:
crates/tfb-math/src/stats.rs:
crates/tfb-math/src/stl.rs:

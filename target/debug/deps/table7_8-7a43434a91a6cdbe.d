/root/repo/target/debug/deps/table7_8-7a43434a91a6cdbe.d: crates/bench/src/bin/table7_8.rs

/root/repo/target/debug/deps/table7_8-7a43434a91a6cdbe: crates/bench/src/bin/table7_8.rs

crates/bench/src/bin/table7_8.rs:

/root/repo/target/debug/deps/model_props-723ec35ab85693a1.d: crates/tfb-models/tests/model_props.rs

/root/repo/target/debug/deps/model_props-723ec35ab85693a1: crates/tfb-models/tests/model_props.rs

crates/tfb-models/tests/model_props.rs:

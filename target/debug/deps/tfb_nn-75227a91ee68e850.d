/root/repo/target/debug/deps/tfb_nn-75227a91ee68e850.d: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

/root/repo/target/debug/deps/tfb_nn-75227a91ee68e850: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

crates/tfb-nn/src/lib.rs:
crates/tfb-nn/src/blocks.rs:
crates/tfb-nn/src/models.rs:
crates/tfb-nn/src/optim.rs:
crates/tfb-nn/src/tape.rs:
crates/tfb-nn/src/train.rs:

/root/repo/target/debug/deps/tfb_core-3d316b4df1612428.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/tfb_core-3d316b4df1612428: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/data.rs:
crates/core/src/eval.rs:
crates/core/src/method.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/viz.rs:

/root/repo/target/debug/deps/ablation_dms_ims-dea1bddcfc2c152f.d: crates/bench/src/bin/ablation_dms_ims.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dms_ims-dea1bddcfc2c152f.rmeta: crates/bench/src/bin/ablation_dms_ims.rs Cargo.toml

crates/bench/src/bin/ablation_dms_ims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

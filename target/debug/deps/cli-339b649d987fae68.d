/root/repo/target/debug/deps/cli-339b649d987fae68.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-339b649d987fae68.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_tfb=placeholder:tfb
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablation_stride-232e15fa4d34ad58.d: crates/bench/src/bin/ablation_stride.rs

/root/repo/target/debug/deps/ablation_stride-232e15fa4d34ad58: crates/bench/src/bin/ablation_stride.rs

crates/bench/src/bin/ablation_stride.rs:

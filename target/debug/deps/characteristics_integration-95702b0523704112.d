/root/repo/target/debug/deps/characteristics_integration-95702b0523704112.d: tests/characteristics_integration.rs

/root/repo/target/debug/deps/characteristics_integration-95702b0523704112: tests/characteristics_integration.rs

tests/characteristics_integration.rs:

/root/repo/target/debug/deps/proptest-6875d79b569acaf2.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-6875d79b569acaf2: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

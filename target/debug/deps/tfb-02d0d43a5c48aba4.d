/root/repo/target/debug/deps/tfb-02d0d43a5c48aba4.d: src/lib.rs

/root/repo/target/debug/deps/tfb-02d0d43a5c48aba4: src/lib.rs

src/lib.rs:

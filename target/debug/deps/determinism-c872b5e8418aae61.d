/root/repo/target/debug/deps/determinism-c872b5e8418aae61.d: crates/tfb-nn/tests/determinism.rs

/root/repo/target/debug/deps/determinism-c872b5e8418aae61: crates/tfb-nn/tests/determinism.rs

crates/tfb-nn/tests/determinism.rs:

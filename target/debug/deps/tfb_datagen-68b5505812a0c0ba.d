/root/repo/target/debug/deps/tfb_datagen-68b5505812a0c0ba.d: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_datagen-68b5505812a0c0ba.rmeta: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs Cargo.toml

crates/tfb-datagen/src/lib.rs:
crates/tfb-datagen/src/components.rs:
crates/tfb-datagen/src/profiles.rs:
crates/tfb-datagen/src/univariate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

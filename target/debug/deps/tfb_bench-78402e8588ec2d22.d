/root/repo/target/debug/deps/tfb_bench-78402e8588ec2d22.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtfb_bench-78402e8588ec2d22.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtfb_bench-78402e8588ec2d22.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

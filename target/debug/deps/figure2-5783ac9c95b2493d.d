/root/repo/target/debug/deps/figure2-5783ac9c95b2493d.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-5783ac9c95b2493d: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:

/root/repo/target/debug/deps/figure8-5726e29291ebeecd.d: crates/bench/src/bin/figure8.rs

/root/repo/target/debug/deps/figure8-5726e29291ebeecd: crates/bench/src/bin/figure8.rs

crates/bench/src/bin/figure8.rs:

/root/repo/target/debug/deps/tfb-7e34fac8d055b24a.d: src/bin/tfb.rs

/root/repo/target/debug/deps/tfb-7e34fac8d055b24a: src/bin/tfb.rs

src/bin/tfb.rs:

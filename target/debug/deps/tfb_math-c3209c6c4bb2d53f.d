/root/repo/target/debug/deps/tfb_math-c3209c6c4bb2d53f.d: crates/tfb-math/src/lib.rs crates/tfb-math/src/acf.rs crates/tfb-math/src/eigen.rs crates/tfb-math/src/fft.rs crates/tfb-math/src/loess.rs crates/tfb-math/src/matrix.rs crates/tfb-math/src/pca.rs crates/tfb-math/src/regression.rs crates/tfb-math/src/stats.rs crates/tfb-math/src/stl.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_math-c3209c6c4bb2d53f.rmeta: crates/tfb-math/src/lib.rs crates/tfb-math/src/acf.rs crates/tfb-math/src/eigen.rs crates/tfb-math/src/fft.rs crates/tfb-math/src/loess.rs crates/tfb-math/src/matrix.rs crates/tfb-math/src/pca.rs crates/tfb-math/src/regression.rs crates/tfb-math/src/stats.rs crates/tfb-math/src/stl.rs Cargo.toml

crates/tfb-math/src/lib.rs:
crates/tfb-math/src/acf.rs:
crates/tfb-math/src/eigen.rs:
crates/tfb-math/src/fft.rs:
crates/tfb-math/src/loess.rs:
crates/tfb-math/src/matrix.rs:
crates/tfb-math/src/pca.rs:
crates/tfb-math/src/regression.rs:
crates/tfb-math/src/stats.rs:
crates/tfb-math/src/stl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/figure5-9568e9419d8a9a59.d: crates/bench/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-9568e9419d8a9a59.rmeta: crates/bench/src/bin/figure5.rs Cargo.toml

crates/bench/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/tfb_datagen-ac0d2ea29422bf73.d: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

/root/repo/target/debug/deps/libtfb_datagen-ac0d2ea29422bf73.rlib: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

/root/repo/target/debug/deps/libtfb_datagen-ac0d2ea29422bf73.rmeta: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

crates/tfb-datagen/src/lib.rs:
crates/tfb-datagen/src/components.rs:
crates/tfb-datagen/src/profiles.rs:
crates/tfb-datagen/src/univariate.rs:

/root/repo/target/debug/deps/table6-6b514148f5f1db50.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-6b514148f5f1db50: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:

/root/repo/target/debug/deps/tfb-4317cbf69ec1dad4.d: src/bin/tfb.rs Cargo.toml

/root/repo/target/debug/deps/libtfb-4317cbf69ec1dad4.rmeta: src/bin/tfb.rs Cargo.toml

src/bin/tfb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

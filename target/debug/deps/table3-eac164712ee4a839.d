/root/repo/target/debug/deps/table3-eac164712ee4a839.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-eac164712ee4a839: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:

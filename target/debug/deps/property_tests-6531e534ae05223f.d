/root/repo/target/debug/deps/property_tests-6531e534ae05223f.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-6531e534ae05223f: tests/property_tests.rs

tests/property_tests.rs:

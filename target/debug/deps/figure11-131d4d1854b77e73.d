/root/repo/target/debug/deps/figure11-131d4d1854b77e73.d: crates/bench/src/bin/figure11.rs Cargo.toml

/root/repo/target/debug/deps/libfigure11-131d4d1854b77e73.rmeta: crates/bench/src/bin/figure11.rs Cargo.toml

crates/bench/src/bin/figure11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

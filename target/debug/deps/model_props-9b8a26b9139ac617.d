/root/repo/target/debug/deps/model_props-9b8a26b9139ac617.d: crates/tfb-models/tests/model_props.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_props-9b8a26b9139ac617.rmeta: crates/tfb-models/tests/model_props.rs Cargo.toml

crates/tfb-models/tests/model_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/failure_injection-dec6914b40ac87a0.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-dec6914b40ac87a0: tests/failure_injection.rs

tests/failure_injection.rs:

/root/repo/target/debug/deps/table2-bc971ff5491cdca7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-bc971ff5491cdca7: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:

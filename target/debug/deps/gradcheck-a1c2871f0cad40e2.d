/root/repo/target/debug/deps/gradcheck-a1c2871f0cad40e2.d: crates/tfb-nn/tests/gradcheck.rs

/root/repo/target/debug/deps/gradcheck-a1c2871f0cad40e2: crates/tfb-nn/tests/gradcheck.rs

crates/tfb-nn/tests/gradcheck.rs:

/root/repo/target/debug/deps/figure8-91e5cb8ccd7eef5f.d: crates/bench/src/bin/figure8.rs

/root/repo/target/debug/deps/figure8-91e5cb8ccd7eef5f: crates/bench/src/bin/figure8.rs

crates/bench/src/bin/figure8.rs:

/root/repo/target/debug/deps/table7_8-fc5873757a17017f.d: crates/bench/src/bin/table7_8.rs Cargo.toml

/root/repo/target/debug/deps/libtable7_8-fc5873757a17017f.rmeta: crates/bench/src/bin/table7_8.rs Cargo.toml

crates/bench/src/bin/table7_8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/tfb-fdebc39ff861c656.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtfb-fdebc39ff861c656.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/figure5-720cd5a8dc989d23.d: crates/bench/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-720cd5a8dc989d23.rmeta: crates/bench/src/bin/figure5.rs Cargo.toml

crates/bench/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/property_tests-693ddb36c5719b92.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-693ddb36c5719b92: tests/property_tests.rs

tests/property_tests.rs:

/root/repo/target/debug/deps/proptests-7e6b3872bdc75cf6.d: crates/tfb-math/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7e6b3872bdc75cf6: crates/tfb-math/tests/proptests.rs

crates/tfb-math/tests/proptests.rs:

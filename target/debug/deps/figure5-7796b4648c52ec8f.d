/root/repo/target/debug/deps/figure5-7796b4648c52ec8f.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-7796b4648c52ec8f: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:

/root/repo/target/debug/deps/tfb_datagen-9bc6ff2f227bcb54.d: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

/root/repo/target/debug/deps/libtfb_datagen-9bc6ff2f227bcb54.rlib: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

/root/repo/target/debug/deps/libtfb_datagen-9bc6ff2f227bcb54.rmeta: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

crates/tfb-datagen/src/lib.rs:
crates/tfb-datagen/src/components.rs:
crates/tfb-datagen/src/profiles.rs:
crates/tfb-datagen/src/univariate.rs:

/root/repo/target/debug/deps/proptests-aca77feff0ed6a6c.d: crates/tfb-math/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-aca77feff0ed6a6c.rmeta: crates/tfb-math/tests/proptests.rs Cargo.toml

crates/tfb-math/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/table5-6d4a64a3c3e57ce0.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-6d4a64a3c3e57ce0: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:

/root/repo/target/debug/deps/ablation_stride-4f0dd9e5782c5c29.d: crates/bench/src/bin/ablation_stride.rs

/root/repo/target/debug/deps/ablation_stride-4f0dd9e5782c5c29: crates/bench/src/bin/ablation_stride.rs

crates/bench/src/bin/ablation_stride.rs:

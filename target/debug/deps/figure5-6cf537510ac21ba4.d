/root/repo/target/debug/deps/figure5-6cf537510ac21ba4.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-6cf537510ac21ba4: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:

/root/repo/target/debug/deps/tfb_core-780d6896f920dde5.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/libtfb_core-780d6896f920dde5.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/libtfb_core-780d6896f920dde5.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/data.rs:
crates/core/src/eval.rs:
crates/core/src/method.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/viz.rs:

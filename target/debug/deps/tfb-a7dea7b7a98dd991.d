/root/repo/target/debug/deps/tfb-a7dea7b7a98dd991.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtfb-a7dea7b7a98dd991.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

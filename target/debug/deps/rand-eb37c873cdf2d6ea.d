/root/repo/target/debug/deps/rand-eb37c873cdf2d6ea.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-eb37c873cdf2d6ea.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

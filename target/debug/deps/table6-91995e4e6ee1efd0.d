/root/repo/target/debug/deps/table6-91995e4e6ee1efd0.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-91995e4e6ee1efd0: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:

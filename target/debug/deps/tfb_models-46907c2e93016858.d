/root/repo/target/debug/deps/tfb_models-46907c2e93016858.d: crates/tfb-models/src/lib.rs crates/tfb-models/src/arima.rs crates/tfb-models/src/ets.rs crates/tfb-models/src/forest.rs crates/tfb-models/src/gbdt.rs crates/tfb-models/src/kalman.rs crates/tfb-models/src/knn.rs crates/tfb-models/src/linear.rs crates/tfb-models/src/naive.rs crates/tfb-models/src/sarima.rs crates/tfb-models/src/tabular.rs crates/tfb-models/src/theta.rs crates/tfb-models/src/var.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_models-46907c2e93016858.rmeta: crates/tfb-models/src/lib.rs crates/tfb-models/src/arima.rs crates/tfb-models/src/ets.rs crates/tfb-models/src/forest.rs crates/tfb-models/src/gbdt.rs crates/tfb-models/src/kalman.rs crates/tfb-models/src/knn.rs crates/tfb-models/src/linear.rs crates/tfb-models/src/naive.rs crates/tfb-models/src/sarima.rs crates/tfb-models/src/tabular.rs crates/tfb-models/src/theta.rs crates/tfb-models/src/var.rs Cargo.toml

crates/tfb-models/src/lib.rs:
crates/tfb-models/src/arima.rs:
crates/tfb-models/src/ets.rs:
crates/tfb-models/src/forest.rs:
crates/tfb-models/src/gbdt.rs:
crates/tfb-models/src/kalman.rs:
crates/tfb-models/src/knn.rs:
crates/tfb-models/src/linear.rs:
crates/tfb-models/src/naive.rs:
crates/tfb-models/src/sarima.rs:
crates/tfb-models/src/tabular.rs:
crates/tfb-models/src/theta.rs:
crates/tfb-models/src/var.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

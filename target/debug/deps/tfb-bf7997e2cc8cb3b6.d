/root/repo/target/debug/deps/tfb-bf7997e2cc8cb3b6.d: src/lib.rs

/root/repo/target/debug/deps/libtfb-bf7997e2cc8cb3b6.rlib: src/lib.rs

/root/repo/target/debug/deps/libtfb-bf7997e2cc8cb3b6.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/tfb-ffdd604f5462886a.d: src/lib.rs

/root/repo/target/debug/deps/libtfb-ffdd604f5462886a.rlib: src/lib.rs

/root/repo/target/debug/deps/libtfb-ffdd604f5462886a.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/figure11-b69b72e5dd485c66.d: crates/bench/src/bin/figure11.rs

/root/repo/target/debug/deps/figure11-b69b72e5dd485c66: crates/bench/src/bin/figure11.rs

crates/bench/src/bin/figure11.rs:

/root/repo/target/debug/deps/ablation_norm-7be5d2c07ee44e97.d: crates/bench/src/bin/ablation_norm.rs Cargo.toml

/root/repo/target/debug/deps/libablation_norm-7be5d2c07ee44e97.rmeta: crates/bench/src/bin/ablation_norm.rs Cargo.toml

crates/bench/src/bin/ablation_norm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/figure9-23bbc52ea44a38bb.d: crates/bench/src/bin/figure9.rs

/root/repo/target/debug/deps/figure9-23bbc52ea44a38bb: crates/bench/src/bin/figure9.rs

crates/bench/src/bin/figure9.rs:

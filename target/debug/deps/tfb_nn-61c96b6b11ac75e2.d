/root/repo/target/debug/deps/tfb_nn-61c96b6b11ac75e2.d: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

/root/repo/target/debug/deps/tfb_nn-61c96b6b11ac75e2: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

crates/tfb-nn/src/lib.rs:
crates/tfb-nn/src/blocks.rs:
crates/tfb-nn/src/models.rs:
crates/tfb-nn/src/optim.rs:
crates/tfb-nn/src/tape.rs:
crates/tfb-nn/src/train.rs:

/root/repo/target/debug/deps/tfb_characteristics-9581dfe24e5b8448.d: crates/tfb-characteristics/src/lib.rs crates/tfb-characteristics/src/adf.rs crates/tfb-characteristics/src/catch22.rs crates/tfb-characteristics/src/correlation.rs crates/tfb-characteristics/src/shifting.rs crates/tfb-characteristics/src/strength.rs crates/tfb-characteristics/src/transition.rs crates/tfb-characteristics/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_characteristics-9581dfe24e5b8448.rmeta: crates/tfb-characteristics/src/lib.rs crates/tfb-characteristics/src/adf.rs crates/tfb-characteristics/src/catch22.rs crates/tfb-characteristics/src/correlation.rs crates/tfb-characteristics/src/shifting.rs crates/tfb-characteristics/src/strength.rs crates/tfb-characteristics/src/transition.rs crates/tfb-characteristics/src/vector.rs Cargo.toml

crates/tfb-characteristics/src/lib.rs:
crates/tfb-characteristics/src/adf.rs:
crates/tfb-characteristics/src/catch22.rs:
crates/tfb-characteristics/src/correlation.rs:
crates/tfb-characteristics/src/shifting.rs:
crates/tfb-characteristics/src/strength.rs:
crates/tfb-characteristics/src/transition.rs:
crates/tfb-characteristics/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/figure3-70f347b45911c1f4.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-70f347b45911c1f4: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:

/root/repo/target/debug/deps/tfb_json-47694e92b34928ce.d: crates/tfb-json/src/lib.rs

/root/repo/target/debug/deps/tfb_json-47694e92b34928ce: crates/tfb-json/src/lib.rs

crates/tfb-json/src/lib.rs:

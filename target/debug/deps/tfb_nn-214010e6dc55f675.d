/root/repo/target/debug/deps/tfb_nn-214010e6dc55f675.d: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

/root/repo/target/debug/deps/libtfb_nn-214010e6dc55f675.rlib: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

/root/repo/target/debug/deps/libtfb_nn-214010e6dc55f675.rmeta: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

crates/tfb-nn/src/lib.rs:
crates/tfb-nn/src/blocks.rs:
crates/tfb-nn/src/models.rs:
crates/tfb-nn/src/optim.rs:
crates/tfb-nn/src/tape.rs:
crates/tfb-nn/src/train.rs:

/root/repo/target/debug/deps/tfb_models-18011a3ca886a339.d: crates/tfb-models/src/lib.rs crates/tfb-models/src/arima.rs crates/tfb-models/src/ets.rs crates/tfb-models/src/forest.rs crates/tfb-models/src/gbdt.rs crates/tfb-models/src/kalman.rs crates/tfb-models/src/knn.rs crates/tfb-models/src/linear.rs crates/tfb-models/src/naive.rs crates/tfb-models/src/sarima.rs crates/tfb-models/src/tabular.rs crates/tfb-models/src/theta.rs crates/tfb-models/src/var.rs

/root/repo/target/debug/deps/tfb_models-18011a3ca886a339: crates/tfb-models/src/lib.rs crates/tfb-models/src/arima.rs crates/tfb-models/src/ets.rs crates/tfb-models/src/forest.rs crates/tfb-models/src/gbdt.rs crates/tfb-models/src/kalman.rs crates/tfb-models/src/knn.rs crates/tfb-models/src/linear.rs crates/tfb-models/src/naive.rs crates/tfb-models/src/sarima.rs crates/tfb-models/src/tabular.rs crates/tfb-models/src/theta.rs crates/tfb-models/src/var.rs

crates/tfb-models/src/lib.rs:
crates/tfb-models/src/arima.rs:
crates/tfb-models/src/ets.rs:
crates/tfb-models/src/forest.rs:
crates/tfb-models/src/gbdt.rs:
crates/tfb-models/src/kalman.rs:
crates/tfb-models/src/knn.rs:
crates/tfb-models/src/linear.rs:
crates/tfb-models/src/naive.rs:
crates/tfb-models/src/sarima.rs:
crates/tfb-models/src/tabular.rs:
crates/tfb-models/src/theta.rs:
crates/tfb-models/src/var.rs:

/root/repo/target/debug/deps/tfb_nn-caa25740c2d36c20.d: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

/root/repo/target/debug/deps/libtfb_nn-caa25740c2d36c20.rlib: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

/root/repo/target/debug/deps/libtfb_nn-caa25740c2d36c20.rmeta: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs

crates/tfb-nn/src/lib.rs:
crates/tfb-nn/src/blocks.rs:
crates/tfb-nn/src/models.rs:
crates/tfb-nn/src/optim.rs:
crates/tfb-nn/src/tape.rs:
crates/tfb-nn/src/train.rs:

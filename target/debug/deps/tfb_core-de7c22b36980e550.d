/root/repo/target/debug/deps/tfb_core-de7c22b36980e550.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_core-de7c22b36980e550.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/eval.rs crates/core/src/method.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/viz.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/data.rs:
crates/core/src/eval.rs:
crates/core/src/method.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/viz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

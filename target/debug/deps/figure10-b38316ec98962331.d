/root/repo/target/debug/deps/figure10-b38316ec98962331.d: crates/bench/src/bin/figure10.rs

/root/repo/target/debug/deps/figure10-b38316ec98962331: crates/bench/src/bin/figure10.rs

crates/bench/src/bin/figure10.rs:

/root/repo/target/debug/deps/tfb_bench-f00f8130ba8b92d2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtfb_bench-f00f8130ba8b92d2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtfb_bench-f00f8130ba8b92d2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/tfb_bench-f36f24b7d55eb052.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_bench-f36f24b7d55eb052.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablation_norm-380534cba003e7f1.d: crates/bench/src/bin/ablation_norm.rs

/root/repo/target/debug/deps/ablation_norm-380534cba003e7f1: crates/bench/src/bin/ablation_norm.rs

crates/bench/src/bin/ablation_norm.rs:

/root/repo/target/debug/deps/tfb-012dc0a4b6ae0459.d: src/bin/tfb.rs

/root/repo/target/debug/deps/tfb-012dc0a4b6ae0459: src/bin/tfb.rs

src/bin/tfb.rs:

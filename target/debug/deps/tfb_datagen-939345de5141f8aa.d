/root/repo/target/debug/deps/tfb_datagen-939345de5141f8aa.d: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

/root/repo/target/debug/deps/tfb_datagen-939345de5141f8aa: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

crates/tfb-datagen/src/lib.rs:
crates/tfb-datagen/src/components.rs:
crates/tfb-datagen/src/profiles.rs:
crates/tfb-datagen/src/univariate.rs:

/root/repo/target/debug/deps/ablation_norm-6d82667b9f193e84.d: crates/bench/src/bin/ablation_norm.rs

/root/repo/target/debug/deps/ablation_norm-6d82667b9f193e84: crates/bench/src/bin/ablation_norm.rs

crates/bench/src/bin/ablation_norm.rs:

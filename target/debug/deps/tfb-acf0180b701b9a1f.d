/root/repo/target/debug/deps/tfb-acf0180b701b9a1f.d: src/bin/tfb.rs Cargo.toml

/root/repo/target/debug/deps/libtfb-acf0180b701b9a1f.rmeta: src/bin/tfb.rs Cargo.toml

src/bin/tfb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/rand-d27c0be1620ecfbb.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-d27c0be1620ecfbb.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/tfb_nn-4ba7d7953e1e1b97.d: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_nn-4ba7d7953e1e1b97.rmeta: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs Cargo.toml

crates/tfb-nn/src/lib.rs:
crates/tfb-nn/src/blocks.rs:
crates/tfb-nn/src/models.rs:
crates/tfb-nn/src/optim.rs:
crates/tfb-nn/src/tape.rs:
crates/tfb-nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/table7_8-81d6a9844b1fc24b.d: crates/bench/src/bin/table7_8.rs

/root/repo/target/debug/deps/table7_8-81d6a9844b1fc24b: crates/bench/src/bin/table7_8.rs

crates/bench/src/bin/table7_8.rs:

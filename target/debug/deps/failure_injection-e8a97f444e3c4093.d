/root/repo/target/debug/deps/failure_injection-e8a97f444e3c4093.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-e8a97f444e3c4093: tests/failure_injection.rs

tests/failure_injection.rs:

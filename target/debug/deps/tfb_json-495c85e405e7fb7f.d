/root/repo/target/debug/deps/tfb_json-495c85e405e7fb7f.d: crates/tfb-json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_json-495c85e405e7fb7f.rmeta: crates/tfb-json/src/lib.rs Cargo.toml

crates/tfb-json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

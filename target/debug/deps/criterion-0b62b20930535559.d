/root/repo/target/debug/deps/criterion-0b62b20930535559.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-0b62b20930535559: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:

/root/repo/target/debug/deps/ablation_dms_ims-cd518bf96da45537.d: crates/bench/src/bin/ablation_dms_ims.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dms_ims-cd518bf96da45537.rmeta: crates/bench/src/bin/ablation_dms_ims.rs Cargo.toml

crates/bench/src/bin/ablation_dms_ims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/gradcheck-d85d95638a761c42.d: crates/tfb-nn/tests/gradcheck.rs

/root/repo/target/debug/deps/gradcheck-d85d95638a761c42: crates/tfb-nn/tests/gradcheck.rs

crates/tfb-nn/tests/gradcheck.rs:

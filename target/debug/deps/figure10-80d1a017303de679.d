/root/repo/target/debug/deps/figure10-80d1a017303de679.d: crates/bench/src/bin/figure10.rs Cargo.toml

/root/repo/target/debug/deps/libfigure10-80d1a017303de679.rmeta: crates/bench/src/bin/figure10.rs Cargo.toml

crates/bench/src/bin/figure10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

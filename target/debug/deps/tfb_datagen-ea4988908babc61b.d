/root/repo/target/debug/deps/tfb_datagen-ea4988908babc61b.d: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

/root/repo/target/debug/deps/tfb_datagen-ea4988908babc61b: crates/tfb-datagen/src/lib.rs crates/tfb-datagen/src/components.rs crates/tfb-datagen/src/profiles.rs crates/tfb-datagen/src/univariate.rs

crates/tfb-datagen/src/lib.rs:
crates/tfb-datagen/src/components.rs:
crates/tfb-datagen/src/profiles.rs:
crates/tfb-datagen/src/univariate.rs:

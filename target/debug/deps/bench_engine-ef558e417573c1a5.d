/root/repo/target/debug/deps/bench_engine-ef558e417573c1a5.d: crates/bench/src/bin/bench_engine.rs Cargo.toml

/root/repo/target/debug/deps/libbench_engine-ef558e417573c1a5.rmeta: crates/bench/src/bin/bench_engine.rs Cargo.toml

crates/bench/src/bin/bench_engine.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

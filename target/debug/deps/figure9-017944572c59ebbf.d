/root/repo/target/debug/deps/figure9-017944572c59ebbf.d: crates/bench/src/bin/figure9.rs

/root/repo/target/debug/deps/figure9-017944572c59ebbf: crates/bench/src/bin/figure9.rs

crates/bench/src/bin/figure9.rs:

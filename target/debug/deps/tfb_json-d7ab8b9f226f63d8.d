/root/repo/target/debug/deps/tfb_json-d7ab8b9f226f63d8.d: crates/tfb-json/src/lib.rs

/root/repo/target/debug/deps/libtfb_json-d7ab8b9f226f63d8.rlib: crates/tfb-json/src/lib.rs

/root/repo/target/debug/deps/libtfb_json-d7ab8b9f226f63d8.rmeta: crates/tfb-json/src/lib.rs

crates/tfb-json/src/lib.rs:

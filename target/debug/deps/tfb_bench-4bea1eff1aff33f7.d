/root/repo/target/debug/deps/tfb_bench-4bea1eff1aff33f7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/tfb_bench-4bea1eff1aff33f7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

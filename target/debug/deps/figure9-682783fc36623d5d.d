/root/repo/target/debug/deps/figure9-682783fc36623d5d.d: crates/bench/src/bin/figure9.rs Cargo.toml

/root/repo/target/debug/deps/libfigure9-682783fc36623d5d.rmeta: crates/bench/src/bin/figure9.rs Cargo.toml

crates/bench/src/bin/figure9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/table1-5a5367af0ce75de7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5a5367af0ce75de7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:

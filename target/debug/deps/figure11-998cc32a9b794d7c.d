/root/repo/target/debug/deps/figure11-998cc32a9b794d7c.d: crates/bench/src/bin/figure11.rs

/root/repo/target/debug/deps/figure11-998cc32a9b794d7c: crates/bench/src/bin/figure11.rs

crates/bench/src/bin/figure11.rs:

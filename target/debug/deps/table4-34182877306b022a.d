/root/repo/target/debug/deps/table4-34182877306b022a.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-34182877306b022a: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:

/root/repo/target/debug/deps/table3-dc786eaf6fc187a4.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-dc786eaf6fc187a4: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:

/root/repo/target/debug/deps/determinism-8947595a2580e539.d: crates/tfb-nn/tests/determinism.rs

/root/repo/target/debug/deps/determinism-8947595a2580e539: crates/tfb-nn/tests/determinism.rs

crates/tfb-nn/tests/determinism.rs:

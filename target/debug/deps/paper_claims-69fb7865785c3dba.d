/root/repo/target/debug/deps/paper_claims-69fb7865785c3dba.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-69fb7865785c3dba: tests/paper_claims.rs

tests/paper_claims.rs:

/root/repo/target/debug/deps/tfb_characteristics-557b5eb791f6dd97.d: crates/tfb-characteristics/src/lib.rs crates/tfb-characteristics/src/adf.rs crates/tfb-characteristics/src/catch22.rs crates/tfb-characteristics/src/correlation.rs crates/tfb-characteristics/src/shifting.rs crates/tfb-characteristics/src/strength.rs crates/tfb-characteristics/src/transition.rs crates/tfb-characteristics/src/vector.rs

/root/repo/target/debug/deps/libtfb_characteristics-557b5eb791f6dd97.rlib: crates/tfb-characteristics/src/lib.rs crates/tfb-characteristics/src/adf.rs crates/tfb-characteristics/src/catch22.rs crates/tfb-characteristics/src/correlation.rs crates/tfb-characteristics/src/shifting.rs crates/tfb-characteristics/src/strength.rs crates/tfb-characteristics/src/transition.rs crates/tfb-characteristics/src/vector.rs

/root/repo/target/debug/deps/libtfb_characteristics-557b5eb791f6dd97.rmeta: crates/tfb-characteristics/src/lib.rs crates/tfb-characteristics/src/adf.rs crates/tfb-characteristics/src/catch22.rs crates/tfb-characteristics/src/correlation.rs crates/tfb-characteristics/src/shifting.rs crates/tfb-characteristics/src/strength.rs crates/tfb-characteristics/src/transition.rs crates/tfb-characteristics/src/vector.rs

crates/tfb-characteristics/src/lib.rs:
crates/tfb-characteristics/src/adf.rs:
crates/tfb-characteristics/src/catch22.rs:
crates/tfb-characteristics/src/correlation.rs:
crates/tfb-characteristics/src/shifting.rs:
crates/tfb-characteristics/src/strength.rs:
crates/tfb-characteristics/src/transition.rs:
crates/tfb-characteristics/src/vector.rs:

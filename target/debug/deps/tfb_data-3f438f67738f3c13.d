/root/repo/target/debug/deps/tfb_data-3f438f67738f3c13.d: crates/tfb-data/src/lib.rs crates/tfb-data/src/batch.rs crates/tfb-data/src/csvfmt.rs crates/tfb-data/src/impute.rs crates/tfb-data/src/normalize.rs crates/tfb-data/src/repository.rs crates/tfb-data/src/series.rs crates/tfb-data/src/split.rs crates/tfb-data/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_data-3f438f67738f3c13.rmeta: crates/tfb-data/src/lib.rs crates/tfb-data/src/batch.rs crates/tfb-data/src/csvfmt.rs crates/tfb-data/src/impute.rs crates/tfb-data/src/normalize.rs crates/tfb-data/src/repository.rs crates/tfb-data/src/series.rs crates/tfb-data/src/split.rs crates/tfb-data/src/window.rs Cargo.toml

crates/tfb-data/src/lib.rs:
crates/tfb-data/src/batch.rs:
crates/tfb-data/src/csvfmt.rs:
crates/tfb-data/src/impute.rs:
crates/tfb-data/src/normalize.rs:
crates/tfb-data/src/repository.rs:
crates/tfb-data/src/series.rs:
crates/tfb-data/src/split.rs:
crates/tfb-data/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/criterion-e6585eabdc4450c8.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e6585eabdc4450c8.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e6585eabdc4450c8.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:

/root/repo/target/debug/deps/figure1-86f265aeb04398e8.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-86f265aeb04398e8: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:

/root/repo/target/debug/deps/characteristics_integration-776064a3d9a6aef4.d: tests/characteristics_integration.rs Cargo.toml

/root/repo/target/debug/deps/libcharacteristics_integration-776064a3d9a6aef4.rmeta: tests/characteristics_integration.rs Cargo.toml

tests/characteristics_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

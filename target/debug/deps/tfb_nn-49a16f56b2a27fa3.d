/root/repo/target/debug/deps/tfb_nn-49a16f56b2a27fa3.d: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_nn-49a16f56b2a27fa3.rmeta: crates/tfb-nn/src/lib.rs crates/tfb-nn/src/blocks.rs crates/tfb-nn/src/models.rs crates/tfb-nn/src/optim.rs crates/tfb-nn/src/tape.rs crates/tfb-nn/src/train.rs Cargo.toml

crates/tfb-nn/src/lib.rs:
crates/tfb-nn/src/blocks.rs:
crates/tfb-nn/src/models.rs:
crates/tfb-nn/src/optim.rs:
crates/tfb-nn/src/tape.rs:
crates/tfb-nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/rand-c139b7ee7f9ef516.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c139b7ee7f9ef516.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c139b7ee7f9ef516.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:

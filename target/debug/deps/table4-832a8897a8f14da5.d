/root/repo/target/debug/deps/table4-832a8897a8f14da5.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-832a8897a8f14da5: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:

/root/repo/target/debug/deps/tfb_bench-f2427dfe2e4a83c8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_bench-f2427dfe2e4a83c8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

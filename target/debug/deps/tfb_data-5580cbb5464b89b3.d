/root/repo/target/debug/deps/tfb_data-5580cbb5464b89b3.d: crates/tfb-data/src/lib.rs crates/tfb-data/src/batch.rs crates/tfb-data/src/csvfmt.rs crates/tfb-data/src/impute.rs crates/tfb-data/src/normalize.rs crates/tfb-data/src/repository.rs crates/tfb-data/src/series.rs crates/tfb-data/src/split.rs crates/tfb-data/src/window.rs

/root/repo/target/debug/deps/tfb_data-5580cbb5464b89b3: crates/tfb-data/src/lib.rs crates/tfb-data/src/batch.rs crates/tfb-data/src/csvfmt.rs crates/tfb-data/src/impute.rs crates/tfb-data/src/normalize.rs crates/tfb-data/src/repository.rs crates/tfb-data/src/series.rs crates/tfb-data/src/split.rs crates/tfb-data/src/window.rs

crates/tfb-data/src/lib.rs:
crates/tfb-data/src/batch.rs:
crates/tfb-data/src/csvfmt.rs:
crates/tfb-data/src/impute.rs:
crates/tfb-data/src/normalize.rs:
crates/tfb-data/src/repository.rs:
crates/tfb-data/src/series.rs:
crates/tfb-data/src/split.rs:
crates/tfb-data/src/window.rs:

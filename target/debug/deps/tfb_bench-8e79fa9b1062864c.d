/root/repo/target/debug/deps/tfb_bench-8e79fa9b1062864c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/tfb_bench-8e79fa9b1062864c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/cli-2c25b8cdbc9930c4.d: tests/cli.rs

/root/repo/target/debug/deps/cli-2c25b8cdbc9930c4: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_tfb=/root/repo/target/debug/tfb

/root/repo/target/debug/deps/tfb_json-a708f3641cda5b64.d: crates/tfb-json/src/lib.rs

/root/repo/target/debug/deps/tfb_json-a708f3641cda5b64: crates/tfb-json/src/lib.rs

crates/tfb-json/src/lib.rs:

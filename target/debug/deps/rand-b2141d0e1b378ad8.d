/root/repo/target/debug/deps/rand-b2141d0e1b378ad8.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-b2141d0e1b378ad8: shims/rand/src/lib.rs

shims/rand/src/lib.rs:

/root/repo/target/debug/deps/tfb_characteristics-cdc63de27f478566.d: crates/tfb-characteristics/src/lib.rs crates/tfb-characteristics/src/adf.rs crates/tfb-characteristics/src/catch22.rs crates/tfb-characteristics/src/correlation.rs crates/tfb-characteristics/src/shifting.rs crates/tfb-characteristics/src/strength.rs crates/tfb-characteristics/src/transition.rs crates/tfb-characteristics/src/vector.rs

/root/repo/target/debug/deps/tfb_characteristics-cdc63de27f478566: crates/tfb-characteristics/src/lib.rs crates/tfb-characteristics/src/adf.rs crates/tfb-characteristics/src/catch22.rs crates/tfb-characteristics/src/correlation.rs crates/tfb-characteristics/src/shifting.rs crates/tfb-characteristics/src/strength.rs crates/tfb-characteristics/src/transition.rs crates/tfb-characteristics/src/vector.rs

crates/tfb-characteristics/src/lib.rs:
crates/tfb-characteristics/src/adf.rs:
crates/tfb-characteristics/src/catch22.rs:
crates/tfb-characteristics/src/correlation.rs:
crates/tfb-characteristics/src/shifting.rs:
crates/tfb-characteristics/src/strength.rs:
crates/tfb-characteristics/src/transition.rs:
crates/tfb-characteristics/src/vector.rs:

/root/repo/target/debug/deps/tfb_json-7ec558834ac2ef8e.d: crates/tfb-json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtfb_json-7ec558834ac2ef8e.rmeta: crates/tfb-json/src/lib.rs Cargo.toml

crates/tfb-json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

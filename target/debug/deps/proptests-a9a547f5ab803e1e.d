/root/repo/target/debug/deps/proptests-a9a547f5ab803e1e.d: crates/tfb-math/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a9a547f5ab803e1e: crates/tfb-math/tests/proptests.rs

crates/tfb-math/tests/proptests.rs:

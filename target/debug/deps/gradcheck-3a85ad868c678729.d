/root/repo/target/debug/deps/gradcheck-3a85ad868c678729.d: crates/tfb-nn/tests/gradcheck.rs Cargo.toml

/root/repo/target/debug/deps/libgradcheck-3a85ad868c678729.rmeta: crates/tfb-nn/tests/gradcheck.rs Cargo.toml

crates/tfb-nn/tests/gradcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bench_engine-a836e7d909b3f0c1.d: crates/bench/src/bin/bench_engine.rs Cargo.toml

/root/repo/target/debug/deps/libbench_engine-a836e7d909b3f0c1.rmeta: crates/bench/src/bin/bench_engine.rs Cargo.toml

crates/bench/src/bin/bench_engine.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

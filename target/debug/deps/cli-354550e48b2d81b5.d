/root/repo/target/debug/deps/cli-354550e48b2d81b5.d: tests/cli.rs

/root/repo/target/debug/deps/cli-354550e48b2d81b5: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_tfb=/root/repo/target/debug/tfb

/root/repo/target/debug/deps/figure3-db5d56646c48edf4.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-db5d56646c48edf4: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:

/root/repo/target/debug/deps/tfb-aef880353c1b3ac1.d: src/lib.rs

/root/repo/target/debug/deps/tfb-aef880353c1b3ac1: src/lib.rs

src/lib.rs:

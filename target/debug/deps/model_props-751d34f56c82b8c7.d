/root/repo/target/debug/deps/model_props-751d34f56c82b8c7.d: crates/tfb-models/tests/model_props.rs

/root/repo/target/debug/deps/model_props-751d34f56c82b8c7: crates/tfb-models/tests/model_props.rs

crates/tfb-models/tests/model_props.rs:

/root/repo/target/debug/deps/ablation_stride-f219af75853b2463.d: crates/bench/src/bin/ablation_stride.rs Cargo.toml

/root/repo/target/debug/deps/libablation_stride-f219af75853b2463.rmeta: crates/bench/src/bin/ablation_stride.rs Cargo.toml

crates/bench/src/bin/ablation_stride.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

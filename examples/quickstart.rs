//! Quickstart: generate a dataset, build three methods from the universal
//! interface, and compare them with TFB's rolling evaluation.
//!
//! Run with `cargo run --example quickstart --release`.

use tfb::core::{build_method, data, eval, Metric};
use tfb::datagen::Scale;

fn main() {
    // 1. Load a dataset from the registry. The collection mirrors Table 5
    //    of the paper; `Scale::DEFAULT` caps sizes for laptop runs.
    let dataset = data::load("ETTh1", Scale::DEFAULT).expect("ETTh1 is in the registry");
    println!(
        "dataset {}: {} points x {} channels ({} split)",
        dataset.series.name,
        dataset.series.len(),
        dataset.series.dim(),
        dataset.profile.split.label(),
    );

    // 2. Configure TFB's rolling evaluation: look-back 96, horizon 24,
    //    z-score normalization fitted on the training region, MAE + MSE.
    let mut settings = eval::EvalSettings::rolling(96, 24, dataset.profile.split);
    settings.max_windows = 50; // evenly subsampled; never "drop last"

    // 3. Evaluate one method per paradigm through the same pipeline.
    for name in ["VAR", "LR", "NLinear"] {
        let mut method =
            build_method(name, 96, 24, dataset.series.dim(), None).expect("known method");
        let outcome =
            eval::evaluate(&mut method, &dataset.series, &settings).expect("evaluation succeeds");
        println!(
            "{:<10} mae={:.3} mse={:.3}  ({} windows, train {:?}, {:.2} ms/window, {} params)",
            outcome.method,
            outcome.metric(Metric::Mae),
            outcome.metric(Metric::Mse),
            outcome.n_windows,
            outcome.train_time,
            outcome.infer_time.as_secs_f64() * 1e3,
            outcome.parameters,
        );
    }
}

//! Config-driven benchmarking: describe an experiment as JSON (the
//! pipeline's standard configuration file), run it on a thread pool, and
//! emit the reporting layer's artifacts.
//!
//! Run with `cargo run --example rolling_eval --release`.

use tfb::core::report::{ResultTable, RunLog};
use tfb::core::{run_jobs, BenchmarkConfig, Metric, Parallelism};

fn main() {
    let config_json = r#"{
        "datasets": ["ILI", "NASDAQ", "Exchange"],
        "methods": ["Naive", "SeasonalNaive", "VAR", "LR", "KNN", "NLinear", "DLinear"],
        "horizons": [24, 36],
        "lookbacks": [36, 104],
        "strategy": {"rolling": {"stride": 4}},
        "metrics": ["mae", "mse", "smape"],
        "max_windows": 20,
        "max_len": 1000,
        "max_dim": 4
    }"#;
    let config = BenchmarkConfig::from_json(config_json).expect("valid config");
    let mut log = RunLog::new();
    log.log(format!("config: {}", config.to_json()));

    let results = run_jobs(&config, Parallelism::Threads(4), None);
    let mut table = ResultTable::default();
    for (job, result) in config.jobs().iter().zip(&results) {
        match result {
            Ok(outcome) => {
                log.log(format!(
                    "{}/{}/F={} -> mae={:.3} ({} windows, lookback {})",
                    job.dataset,
                    job.method,
                    job.horizon,
                    outcome.metric(Metric::Mae),
                    outcome.n_windows,
                    outcome.lookback,
                ));
                table.push(outcome);
            }
            Err(e) => log.log(format!(
                "{}/{}/F={} failed: {e}",
                job.dataset, job.method, job.horizon
            )),
        }
    }

    println!("{}", table.to_markdown(Metric::Mae));
    let out_dir = std::path::Path::new("target/tfb-results");
    let csv = table
        .write_csv(out_dir, "rolling_eval_example")
        .expect("write csv");
    log.write(out_dir, "rolling_eval_example")
        .expect("write log");
    println!("wrote {} and the run log", csv.display());
}

//! A Table-1-style bake-off: the statistical baselines VAR and LR against
//! recent deep models on NASDAQ, Wind and ILI — the experiment the paper
//! uses to demonstrate the stereotype bias against traditional methods
//! (Issue 2).
//!
//! Run with `cargo run --example model_bakeoff --release`.

use tfb::core::report::{RankTable, ResultTable};
use tfb::core::{build_method, data, eval, Metric};
use tfb::datagen::Scale;
use tfb::nn::TrainConfig;

fn main() {
    let scale = Scale {
        max_len: 1200,
        max_dim: 5,
    };
    let methods = [
        "VAR",
        "LR",
        "PatchTST",
        "NLinear",
        "FEDformer",
        "Crossformer",
    ];
    // A small training budget keeps this example snappy; the bench binaries
    // use larger budgets.
    let train_cfg = TrainConfig {
        epochs: 10,
        max_samples: 400,
        ..TrainConfig::default()
    };
    let mut table = ResultTable::default();
    for dataset_name in ["NASDAQ", "Wind", "ILI"] {
        let dataset = data::load(dataset_name, scale).expect("dataset in registry");
        let horizon = 24;
        let lookback = 36;
        let mut settings = eval::EvalSettings::rolling(lookback, horizon, dataset.profile.split);
        settings.max_windows = 30;
        for name in methods {
            let mut method = build_method(
                name,
                lookback,
                horizon,
                dataset.series.dim(),
                Some(train_cfg),
            )
            .expect("known method");
            match eval::evaluate(&mut method, &dataset.series, &settings) {
                Ok(outcome) => table.push(&outcome),
                Err(e) => eprintln!("{dataset_name}/{name}: {e}"),
            }
        }
    }
    println!("MAE, horizon 24 (cf. Table 1 of the paper):\n");
    println!("{}", table.to_markdown(Metric::Mae));
    let ranks = RankTable::compute(&table, Metric::Mae);
    println!("wins per method (best MAE per dataset):");
    for (m, w) in &ranks.wins {
        println!("  {m:<12} {w}");
    }
    let stat_wins =
        ranks.wins.get("VAR").copied().unwrap_or(0) + ranks.wins.get("LR").copied().unwrap_or(0);
    println!(
        "\nstatistical/ML baselines win {stat_wins} of {} datasets — the paper's Issue 2 in action",
        ranks.cases
    );
}

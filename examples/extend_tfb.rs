//! Extending the benchmark: plug a *user-defined* forecaster and a custom
//! metric into the pipeline (the method layer's "Universal Interface"), and
//! render the forecasts with the reporting layer's SVG module.
//!
//! Run with `cargo run --example extend_tfb --release`.

use tfb::core::eval::{evaluate, EvalSettings};
use tfb::core::method::Method;
use tfb::core::viz::forecast_chart;
use tfb::core::Metric;
use tfb::data::MultiSeries;
use tfb::datagen::Scale;
use tfb::models::{ModelError, StatForecaster};

/// A toy user method: damped mean-reversion towards the recent average.
/// Implementing one trait is the entire integration surface.
struct MeanReversion {
    window: usize,
    rate: f64,
}

impl StatForecaster for MeanReversion {
    fn name(&self) -> &'static str {
        "MeanReversion"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>, ModelError> {
        let n = history.len();
        if n < self.window {
            return Err(ModelError::InsufficientData("window longer than history"));
        }
        let dim = history.dim();
        let mut out = Vec::with_capacity(horizon * dim);
        for h in 1..=horizon {
            for c in 0..dim {
                let recent: Vec<f64> = (n - self.window..n).map(|t| history.at(t, c)).collect();
                let mean = recent.iter().sum::<f64>() / self.window as f64;
                let last = history.at(n - 1, c);
                let decay = (1.0 - self.rate).powi(h as i32);
                out.push(mean + (last - mean) * decay);
            }
        }
        Ok(out)
    }
}

/// A custom metric: fraction of steps where the forecast got the *direction*
/// of change wrong (a trading-style criterion none of the eight built-ins
/// capture).
fn direction_error(forecast: &[f64], actual: &[f64]) -> f64 {
    let wrong = forecast
        .windows(2)
        .zip(actual.windows(2))
        .filter(|(f, a)| (f[1] - f[0]).signum() != (a[1] - a[0]).signum())
        .count();
    wrong as f64 / forecast.len().saturating_sub(1).max(1) as f64
}

fn main() {
    let dataset = tfb::core::data::load("Exchange", Scale::DEFAULT).expect("in registry");
    let mut settings = EvalSettings::rolling(36, 24, dataset.profile.split);
    settings.max_windows = 30;
    settings.custom_metrics = vec![("direction_error", direction_error)];

    println!("custom method + custom metric through the standard pipeline:\n");
    println!("| method | mae | direction_error |");
    println!("|---|---|---|");
    let mut to_plot: Vec<(&str, Vec<f64>)> = Vec::new();
    let history: Vec<f64> =
        dataset.series.channel(0)[dataset.series.len() - 120..dataset.series.len() - 24].to_vec();
    for (name, mut method) in [
        (
            "MeanReversion",
            Method::Stat(Box::new(MeanReversion {
                window: 20,
                rate: 0.1,
            })),
        ),
        (
            "Naive",
            tfb::core::build_method("Naive", 36, 24, dataset.series.dim(), None).unwrap(),
        ),
        (
            "Theta",
            tfb::core::build_method("Theta", 36, 24, dataset.series.dim(), None).unwrap(),
        ),
    ] {
        let out = evaluate(&mut method, &dataset.series, &settings).expect("evaluation runs");
        println!(
            "| {name} | {:.4} | {:.3} |",
            out.metric(Metric::Mae),
            out.metrics["direction_error"]
        );
        // Forecast the plotted tail for the SVG.
        let tail = dataset.series.slice_rows(0..dataset.series.len() - 24);
        if let Method::Stat(m) = &method {
            if let Ok(f) = m.forecast(&tail, 24) {
                let ch0: Vec<f64> = f.iter().step_by(dataset.series.dim()).copied().collect();
                to_plot.push((name, ch0));
            }
        }
    }
    let (chart, series) = forecast_chart(
        "Exchange, channel 0: last 96 points + forecasts",
        &history,
        &to_plot,
    );
    let path = std::path::Path::new("target/tfb-results/extend_tfb.svg");
    chart.write(&series, path).expect("svg written");
    println!("\nwrote {}", path.display());
}

//! Dataset characterization: score datasets on the six TFB characteristics
//! (Section 3 of the paper), print the taxonomy, and demonstrate the data
//! layer's coverage-expansion acceptance rule.
//!
//! Run with `cargo run --example characterize --release`.

use tfb::core::data::{expands_coverage, load_all, DatasetCharacteristics};
use tfb::datagen::Scale;

fn main() {
    let scale = Scale {
        max_len: 1500,
        max_dim: 6,
    };
    println!(
        "{:<12} {:>6} {:>12} {:>13} {:>9} {:>11} {:>12}",
        "dataset", "trend", "seasonality", "stationarity", "shifting", "transition", "correlation"
    );
    let mut accepted: Vec<DatasetCharacteristics> = Vec::new();
    for handle in load_all(scale) {
        let c = DatasetCharacteristics::compute(&handle.series, 4);
        println!(
            "{:<12} {:>6.3} {:>12.3} {:>13.3} {:>9.3} {:>11.4} {:>12.3}",
            handle.series.name,
            c.trend,
            c.seasonality,
            c.stationarity,
            c.shifting,
            c.transition,
            c.correlation,
        );
        // The data layer accepts a dataset when it expands the coverage of
        // the characteristic space.
        if expands_coverage(&accepted, &c, 0.05) {
            accepted.push(c);
        }
    }
    println!(
        "\nacceptance rule kept {} of 25 datasets as coverage-expanding at distance 0.05",
        accepted.len()
    );

    // Characterize a slice of the univariate archive (Table 4 style).
    let archive = tfb::datagen::UnivariateArchive::generate(200, 7);
    let mut tagged = [0usize; 5];
    for s in &archive.series {
        let v = tfb::characteristics::CharacteristicVector::of_series(s);
        let t = v.tag(Default::default());
        for (i, flag) in [
            t.seasonality,
            t.trend,
            t.shifting,
            t.transition,
            t.stationary,
        ]
        .into_iter()
        .enumerate()
        {
            if flag {
                tagged[i] += 1;
            }
        }
    }
    println!(
        "\nunivariate archive ({} series): seasonal={} trending={} shifting={} transition={} stationary={}",
        archive.len(),
        tagged[0],
        tagged[1],
        tagged[2],
        tagged[3],
        tagged[4]
    );
}

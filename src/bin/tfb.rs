//! `tfb` — command-line driver for the benchmark pipeline.
//!
//! ```text
//! tfb run <config.json> [--threads N] [--out DIR]   run a benchmark config
//! tfb datasets                                      list the dataset registry
//! tfb methods                                       list the method registry
//! tfb characterize <dataset> [--max-len N]          score one dataset
//! tfb example-config                                print a starter config
//! ```
//!
//! The config format is [`tfb::core::BenchmarkConfig`]; results land in the
//! output directory as CSV plus a run log, and the MAE table prints to
//! stdout.

use std::path::PathBuf;
use std::process::ExitCode;
use tfb::core::report::{RankTable, ResultTable, RunLog};
use tfb::core::{run_jobs, BenchmarkConfig, Metric, Parallelism};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("datasets") => cmd_datasets(),
        Some("methods") => cmd_methods(),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("example-config") => cmd_example_config(),
        _ => {
            eprintln!(
                "usage: tfb <run CONFIG.json [--threads N] [--out DIR] | datasets | methods | characterize DATASET [--max-len N] | example-config>"
            );
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(config_path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("tfb run: missing config path");
        return ExitCode::FAILURE;
    };
    let threads: usize = flag_value(args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let out_dir = PathBuf::from(
        flag_value(args, "--out").unwrap_or_else(|| "target/tfb-results".to_string()),
    );
    let text = match std::fs::read_to_string(config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tfb run: cannot read {config_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = match BenchmarkConfig::from_json(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tfb run: invalid config: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Observability is on by default; TFB_OBS=0 disables it for the run.
    let obs_on = std::env::var("TFB_OBS").map(|v| v != "0").unwrap_or(true);
    if obs_on {
        let opts = tfb_obs::RunOptions {
            events_path: Some(out_dir.join("run.events.jsonl")),
        };
        if let Err(e) = tfb_obs::start_run(opts) {
            eprintln!("tfb run: could not open the observability sink: {e}");
        }
    }
    let mut log = RunLog::new();
    log.log(format!("config file: {config_path}"));
    log.log(config.to_json());
    let jobs = config.jobs();
    eprintln!("running {} jobs on {threads} thread(s)...", jobs.len());
    let results = run_jobs(&config, Parallelism::Threads(threads), None);
    let mut table = ResultTable::default();
    let mut failures = 0usize;
    for (job, result) in jobs.iter().zip(&results) {
        match result {
            Ok(out) => {
                log.log(format!(
                    "{}/{}/F={}: {:?} ({} windows)",
                    job.dataset, job.method, job.horizon, out.metrics, out.n_windows
                ));
                table.push(out);
            }
            Err(e) => {
                failures += 1;
                log.log(format!(
                    "{}/{}/F={}: FAILED: {e}",
                    job.dataset, job.method, job.horizon
                ));
            }
        }
    }
    let primary = config.metric_list().first().copied().unwrap_or(Metric::Mae);
    println!("{}", table.to_markdown(primary));
    println!("measured cost per cell:");
    println!("{}", table.timing_markdown());
    let ranks = RankTable::compute(&table, primary);
    println!("wins per method ({}):", primary.label());
    for (m, w) in &ranks.wins {
        println!("  {m:<14} {w}");
    }
    match table.write_csv(&out_dir, "run") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    if let Err(e) = log.write(&out_dir, "run") {
        eprintln!("could not write log: {e}");
    }
    let meta = [
        ("config_file", config_path.to_string()),
        ("config_hash", tfb_obs::fnv1a_hex(text.as_bytes())),
        ("git_rev", tfb_obs::git_rev().unwrap_or_default()),
        ("threads", threads.to_string()),
        ("jobs", jobs.len().to_string()),
        ("failures", failures.to_string()),
    ];
    if let Some(manifest) = tfb_obs::finish_run(&meta) {
        let path = out_dir.join("run.manifest.json");
        match manifest.write(&path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write the run manifest: {e}"),
        }
    }
    if failures > 0 {
        eprintln!("{failures} job(s) failed (see the run log)");
    }
    ExitCode::SUCCESS
}

fn cmd_datasets() -> ExitCode {
    println!(
        "{:<12} {:<12} {:<10} {:>8} {:>6}  split",
        "name", "domain", "frequency", "length", "dim"
    );
    for p in tfb::datagen::all_profiles() {
        println!(
            "{:<12} {:<12} {:<10} {:>8} {:>6}  {}",
            p.name,
            p.domain.label(),
            p.frequency.label(),
            p.paper_len,
            p.paper_dim,
            p.split.label()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_methods() -> ExitCode {
    use tfb::core::method::{DL_METHODS, ML_METHODS, STAT_METHODS};
    println!("statistical:      {}", STAT_METHODS.join(", "));
    println!("machine learning: {}", ML_METHODS.join(", "));
    println!("deep learning:    {}", DL_METHODS.join(", "));
    ExitCode::SUCCESS
}

fn cmd_characterize(args: &[String]) -> ExitCode {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("tfb characterize: missing dataset name");
        return ExitCode::FAILURE;
    };
    let max_len: usize = flag_value(args, "--max-len")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let scale = tfb::datagen::Scale {
        max_len,
        max_dim: 6,
    };
    let Some(handle) = tfb::core::data::load(name, scale) else {
        eprintln!("tfb characterize: unknown dataset {name} (try `tfb datasets`)");
        return ExitCode::FAILURE;
    };
    let c = tfb::core::data::DatasetCharacteristics::compute(&handle.series, 4);
    println!(
        "dataset:      {name} ({} x {})",
        handle.series.len(),
        handle.series.dim()
    );
    println!("trend:        {:.3}", c.trend);
    println!("seasonality:  {:.3}", c.seasonality);
    println!("stationarity: {:.3}", c.stationarity);
    println!("shifting:     {:.3}", c.shifting);
    println!("transition:   {:.4}", c.transition);
    println!("correlation:  {:.3}", c.correlation);
    ExitCode::SUCCESS
}

fn cmd_example_config() -> ExitCode {
    println!(
        r#"{{
    "datasets": ["ILI", "NASDAQ", "ETTh1"],
    "methods": ["VAR", "LR", "NLinear", "PatchTST"],
    "horizons": [24, 36],
    "lookbacks": [36, 104],
    "strategy": {{"rolling": {{"stride": 1}}}},
    "metrics": ["mae", "mse", "smape"],
    "max_windows": 50,
    "max_len": 2000,
    "max_dim": 6
}}"#
    );
    ExitCode::SUCCESS
}

//! `tfb` — command-line driver for the benchmark pipeline.
//!
//! ```text
//! tfb run <config.json> [--threads N] [--out DIR] [--history DIR|none]
//!                                                   run a benchmark config
//! tfb bench ls                                      list the declarative suites
//! tfb bench run [PATTERN..] [--suite NAME]          execute suite cells, record
//!                                                   manifests into the history
//! tfb bench cmp <A> <B>                             measurements side by side
//! tfb bench rank [--by characteristic|dataset]      Table 6/7-style ranking
//!                                                   from recorded history
//! tfb obs diff <A> <B> [--tol-pct P]                compare two recorded runs
//! tfb obs trend [--metric M] [--limit N]            per-cell metric history
//! tfb obs gate [--baseline X] [--candidate Y]
//!              [--tol-pct P] [--tol-metric P] [--min-runs K]
//!                                                   noise-aware regression gate
//! tfb obs export-trace EVENTS.jsonl [--out FILE]    Perfetto/Chrome trace JSON
//! tfb obs validate-metrics FILE                     check an OpenMetrics exposition
//! tfb train --method M --dataset D --out MODEL.tfba
//!                                                   fit and save a model artifact
//! tfb registry publish MODEL.tfba --name NAME       checksum + store an artifact
//! tfb registry ls|gc|fsck                           inspect / clean / verify
//! tfb registry promote NAME [--baseline A --candidate B]
//!                                                   gate canary → prod
//! tfb registry rollback NAME                        restore the displaced blob
//! tfb serve --model MODEL.tfba [--addr HOST:PORT]   serve forecasts over HTTP
//! tfb serve --registry DIR [--resident-cap N]       serve a whole model fleet
//! tfb datasets                                      list the dataset registry
//! tfb methods                                       list the method registry
//! tfb characterize <dataset> [--max-len N]          score one dataset
//! tfb example-config                                print a starter config
//! ```
//!
//! The config format is [`tfb::core::BenchmarkConfig`]; results land in the
//! output directory as CSV plus a run log, and the MAE table prints to
//! stdout. Every recorded run's manifest is also appended to the run
//! history (default `.tfb-history/`, overridable with `--history` or the
//! `TFB_HISTORY` environment variable; `--history none` disables it),
//! which is what the `obs diff|trend|gate` subcommands read. Run
//! selectors for those subcommands are either a manifest file path or a
//! history selector: `first`, `last`, a 0-based index, or an id prefix.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tfb::core::report::{RankTable, ResultTable, RunLog};
use tfb::core::{run_jobs, BenchmarkConfig, CoreError, Metric, Parallelism};
use tfb::models::ModelError;
use tfb_obs::history::{self, GateTolerances, RunHistory};
use tfb_obs::Manifest;

const USAGE: &str = "usage: tfb <command>
  run CONFIG.json [--threads N] [--out DIR] [--history DIR|none]
  bench ls [--suites DIR]
  bench run [PATTERN..] [--suite NAME] [--suites DIR] [--out DIR]
            [--history DIR|none]
  bench cmp A B [--history DIR|none]
  bench rank [--by characteristic|dataset] [--metric M] [--history DIR]
  obs diff A B [--tol-pct P] [--history DIR|none]
  obs trend [--metric M] [--limit N] [--history DIR]
  obs gate [--baseline X] [--candidate Y] [--tol-pct P] [--tol-metric P]
           [--min-runs K] [--history DIR|none]
  obs record MANIFEST.json [MORE.json|GLOB ..] [--history DIR]
  obs export-trace EVENTS.jsonl [--out TRACE.json]
  obs export-profile EVENTS.jsonl|SEL [--out PROFILE.collapsed] [--history DIR]
  obs postmortem ls [--history DIR]
  obs postmortem show SEL [--history DIR]
  obs postmortem export-trace SEL [--out TRACE.json] [--history DIR]
  obs validate-metrics FILE
  train --method M --dataset D --out MODEL.tfba [--lookback N] [--horizon N]
        [--norm ZScore|MinMax|None] [--max-len N] [--max-dim N] [--epochs N]
  registry publish MODEL.tfba --name NAME [--label prod] [--registry DIR]
  registry ls [--registry DIR]
  registry gc [--registry DIR]
  registry fsck [--registry DIR]
  registry promote NAME [--from canary] [--to prod] [--registry DIR]
           [--baseline SEL --candidate SEL] [--tol-pct P] [--force]
           [--history DIR|none]
  registry rollback NAME [--label prod] [--registry DIR]
  serve --model MODEL.tfba | --registry DIR [--addr HOST:PORT] [--shards N]
        [--resident-cap N] [--batch-max N] [--budget-us N] [--queue-cap N]
        [--out DIR] [--slo-ms MS] [--slo-objective Q] [--profile-hz HZ]
        [--history DIR|none]
  datasets
  methods
  characterize DATASET [--max-len N]
  example-config";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("obs") => cmd_obs(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("registry") => cmd_registry(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("datasets") => cmd_datasets(),
        Some("methods") => cmd_methods(),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("example-config") => cmd_example_config(),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Positional (non-flag) arguments. Every `--flag` consumes the next
/// argument as its value.
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            out.push(args[i].clone());
            i += 1;
        }
    }
    out
}

/// Resolves the history root: `--history DIR`, then `TFB_HISTORY`, then
/// `.tfb-history`. `none` (or `0`) disables the history entirely.
fn history_root(args: &[String]) -> Option<PathBuf> {
    let v = flag_value(args, "--history")
        .or_else(|| std::env::var("TFB_HISTORY").ok())
        .unwrap_or_else(|| ".tfb-history".to_string());
    if v == "none" || v == "0" {
        None
    } else {
        Some(PathBuf::from(v))
    }
}

/// Opens the history lazily: only when a run selector actually needs it.
fn open_history(args: &[String], cache: &mut Option<RunHistory>) -> Result<(), String> {
    if cache.is_some() {
        return Ok(());
    }
    let root = history_root(args).ok_or_else(|| {
        "the run history is disabled (--history none) but a history selector was used".to_string()
    })?;
    *cache = Some(RunHistory::open(&root)?);
    Ok(())
}

/// Loads a manifest from either a file path or a history selector
/// (`first`, `last`, a 0-based index, or an id prefix). Returns the
/// manifest plus the history seq it came from, when it came from one.
fn load_manifest_arg(
    args: &[String],
    hist: &mut Option<RunHistory>,
    arg: &str,
) -> Result<(Manifest, Option<usize>), String> {
    let path = Path::new(arg);
    if path.is_file() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {arg}: {e}"))?;
        let parsed = history::parse_manifest(&text)?;
        for w in &parsed.warnings {
            eprintln!("warning: {arg}: {w}");
        }
        return Ok((parsed.manifest, None));
    }
    open_history(args, hist)?;
    let hist = hist.as_ref().expect("history just opened");
    let entry = hist
        .resolve(arg)
        .ok_or_else(|| {
            format!(
                "no history entry matches {arg:?} ({} run(s) in {})",
                hist.entries().len(),
                hist.root().display()
            )
        })?
        .clone();
    let parsed = hist.load(&entry)?;
    for w in &parsed.warnings {
        eprintln!("warning: run {}: {w}", entry.id);
    }
    Ok((parsed.manifest, Some(entry.seq)))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(config_path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("tfb run: missing config path");
        return ExitCode::FAILURE;
    };
    let threads: usize = flag_value(args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let out_dir = PathBuf::from(
        flag_value(args, "--out").unwrap_or_else(|| "target/tfb-results".to_string()),
    );
    let text = match std::fs::read_to_string(config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tfb run: cannot read {config_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = match BenchmarkConfig::from_json(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tfb run: invalid config: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Observability is on by default; TFB_OBS=0 disables it for the run.
    // A sink that cannot open disarms the run entirely: a half-armed run
    // (events but no manifest, or the reverse) would poison cross-run
    // comparisons, so the fallback is all-or-nothing.
    let obs_on = std::env::var("TFB_OBS").map(|v| v != "0").unwrap_or(true);
    let mut obs_armed = false;
    if obs_on {
        let opts = tfb_obs::RunOptions {
            events_path: Some(out_dir.join("run.events.jsonl")),
        };
        match tfb_obs::start_run(opts) {
            Ok(()) => obs_armed = true,
            Err(e) => eprintln!(
                "tfb run: could not open the observability sink: {e}; \
                 falling back to a fully disarmed run (no events, manifest, or history entry)"
            ),
        }
    }
    let mut log = RunLog::new();
    log.log(format!("config file: {config_path}"));
    log.log(config.to_json());
    let jobs = config.jobs();
    eprintln!("running {} jobs on {threads} thread(s)...", jobs.len());
    let results = run_jobs(&config, Parallelism::Threads(threads), None);
    let mut table = ResultTable::default();
    let mut failures = 0usize;
    for (job, result) in jobs.iter().zip(&results) {
        match result {
            Ok(out) => {
                log.log(format!(
                    "{}/{}/F={}: {:?} ({} windows)",
                    job.dataset, job.method, job.horizon, out.metrics, out.n_windows
                ));
                table.push(out);
            }
            Err(e) => {
                failures += 1;
                // A numerically-aborted cell is marked in the CSV, not
                // silently dropped — same for any other failure.
                let status = match e {
                    CoreError::Model(ModelError::Numerical(_)) => "aborted:numerical",
                    _ => "failed",
                };
                table.push_failure(&job.dataset, &job.method, job.horizon, status);
                log.log(format!(
                    "{}/{}/F={}: FAILED ({status}): {e}",
                    job.dataset, job.method, job.horizon
                ));
            }
        }
    }
    let primary = config.metric_list().first().copied().unwrap_or(Metric::Mae);
    println!("{}", table.to_markdown(primary));
    println!("measured cost per cell:");
    println!("{}", table.timing_markdown());
    let ranks = RankTable::compute(&table, primary);
    println!("wins per method ({}):", primary.label());
    for (m, w) in &ranks.wins {
        println!("  {m:<14} {w}");
    }
    match table.write_csv(&out_dir, "run") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    if let Err(e) = log.write(&out_dir, "run") {
        eprintln!("could not write log: {e}");
    }
    if obs_armed {
        let meta = [
            ("config_file", config_path.to_string()),
            ("config_hash", tfb_obs::fnv1a_hex(text.as_bytes())),
            ("git_rev", tfb_obs::git_rev().unwrap_or_default()),
            ("threads", threads.to_string()),
            ("jobs", jobs.len().to_string()),
            ("failures", failures.to_string()),
            ("kernel", tfb::math::kernel::active_name().to_string()),
        ];
        if let Some(manifest) = tfb_obs::finish_run(&meta) {
            let path = out_dir.join("run.manifest.json");
            match manifest.write(&path) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write the run manifest: {e}"),
            }
            if !manifest.health.is_clean() {
                eprintln!(
                    "health: {} nan, {} diverged, {} aborted cell(s) — see the manifest",
                    manifest.health.nan_cells.len(),
                    manifest.health.diverged_cells.len(),
                    manifest.health.aborted_cells.len()
                );
            }
            if let Some(hroot) = history_root(args) {
                let appended = RunHistory::open(&hroot).and_then(|mut h| h.append(&manifest));
                match appended {
                    Ok(entry) => eprintln!(
                        "history: run {} appended to {}",
                        &entry.id[..8.min(entry.id.len())],
                        hroot.display()
                    ),
                    Err(e) => eprintln!("could not append to the run history: {e}"),
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} job(s) failed (see the run log)");
    }
    ExitCode::SUCCESS
}

/// `tfb bench`: the declarative suite harness. Suites are TOML/JSON
/// files under `benches/suites/`; `run` executes their cells through one
/// measurement pipeline and records a manifest per suite into the run
/// history, which `cmp`, `rank` and the `obs diff|trend|gate` family all
/// read.
fn cmd_bench(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("ls") => cmd_bench_ls(&args[1..]),
        Some("run") => cmd_bench_run(&args[1..]),
        Some("cmp") => cmd_bench_cmp(&args[1..]),
        Some("rank") => cmd_bench_rank(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Resolves `--suites DIR` (default `benches/suites`).
fn suites_dir(args: &[String]) -> PathBuf {
    PathBuf::from(flag_value(args, "--suites").unwrap_or_else(|| "benches/suites".to_string()))
}

fn cmd_bench_ls(args: &[String]) -> ExitCode {
    let dir = suites_dir(args);
    match tfb_bench::suite::discover(&dir) {
        Ok(suites) if suites.is_empty() => {
            println!("no suites under {}", dir.display());
            ExitCode::SUCCESS
        }
        Ok(suites) => {
            print!("{}", tfb_bench::harness::render_ls(&suites));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tfb bench ls: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_bench_run(args: &[String]) -> ExitCode {
    let cfg = tfb_bench::harness::RunConfig {
        suites_dir: suites_dir(args),
        patterns: positionals(args),
        suite: flag_value(args, "--suite"),
        out_dir: PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| "target/obs".into())),
        history: history_root(args),
    };
    match tfb_bench::harness::run(&cfg) {
        Ok(runs) => {
            let cells: usize = runs.iter().map(|r| r.cells_run).sum();
            let rows: usize = runs.iter().map(|r| r.rows).sum();
            println!(
                "{} suite(s), {cells} cell(s), {rows} measurement(s) recorded",
                runs.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tfb bench run: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `tfb bench cmp A B`: the measurement rows of two runs side by side.
/// A and B are manifest paths or history selectors, like `obs diff`.
fn cmd_bench_cmp(args: &[String]) -> ExitCode {
    let pos = positionals(args);
    let [base_sel, new_sel] = pos.as_slice() else {
        eprintln!("usage: tfb bench cmp <A> <B> [--history DIR|none]");
        return ExitCode::FAILURE;
    };
    let mut hist = None;
    let (base, new) = match load_manifest_arg(args, &mut hist, base_sel)
        .and_then(|(b, _)| load_manifest_arg(args, &mut hist, new_sel).map(|(n, _)| (b, n)))
    {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("tfb bench cmp: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", tfb_bench::harness::render_cmp(&base, &new));
    ExitCode::SUCCESS
}

/// `tfb bench rank`: regenerate the paper's Table 6/7-style method
/// ranking from the newest recorded measurement of every cell.
fn cmd_bench_rank(args: &[String]) -> ExitCode {
    let by = flag_value(args, "--by").unwrap_or_else(|| "characteristic".to_string());
    let metric = flag_value(args, "--metric").unwrap_or_else(|| "msmape".to_string());
    let Some(root) = history_root(args) else {
        eprintln!("tfb bench rank: the run history is disabled (--history none)");
        return ExitCode::FAILURE;
    };
    match tfb_bench::harness::rank_from_history(&root, &by, &metric) {
        Ok(ranking) => {
            println!(
                "method ranking by {by} ({metric}, newest record per cell, {})",
                root.display()
            );
            print!(
                "{}",
                tfb_bench::harness::render_rank(&ranking, &by, &metric)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tfb bench rank: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_obs(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("diff") => cmd_obs_diff(&args[1..]),
        Some("trend") => cmd_obs_trend(&args[1..]),
        Some("gate") => cmd_obs_gate(&args[1..]),
        Some("record") => cmd_obs_record(&args[1..]),
        Some("export-trace") => cmd_obs_export_trace(&args[1..]),
        Some("export-profile") => cmd_obs_export_profile(&args[1..]),
        Some("postmortem") => cmd_obs_postmortem(&args[1..]),
        Some("validate-metrics") => cmd_obs_validate_metrics(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// `tfb obs record MANIFEST.json ..`: append existing manifest files to
/// a run history. `tfb run` and `tfb bench run` append their own
/// manifests automatically; this covers every other producer — a
/// drained `tfb serve` session's `serve.manifest.json`, a bench
/// binary's `target/obs/*.manifest.json` — so their histories can feed
/// `obs trend`/`obs gate` too. Arguments may be literal paths or glob
/// patterns (`*`/`?`, quoted so the shell does not expand them first);
/// appends happen in argument order, then lexicographic within a
/// pattern. Keep workloads in separate history dirs: the gate assumes
/// it compares like against like.
fn cmd_obs_record(args: &[String]) -> ExitCode {
    let pos = positionals(args);
    if pos.is_empty() {
        eprintln!("usage: tfb obs record MANIFEST.json [MORE.json|GLOB ..] [--history DIR]");
        return ExitCode::FAILURE;
    }
    let Some(root) = history_root(args) else {
        eprintln!("tfb obs record: the run history is disabled (--history none)");
        return ExitCode::FAILURE;
    };
    let paths = match expand_manifest_args(&pos) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tfb obs record: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut hist = match RunHistory::open(&root) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("tfb obs record: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for path in &paths {
        let appended = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))
            .and_then(|text| hist.append_json(&text));
        match appended {
            Ok(entry) => println!(
                "history: run {} appended from {}",
                &entry.id[..8.min(entry.id.len())],
                path.display()
            ),
            Err(e) => {
                eprintln!("tfb obs record: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    println!(
        "{} manifest(s) appended to {}",
        paths.len() - if failed { 1 } else { 0 },
        root.display()
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Expands `obs record` arguments: a literal path stays as-is; an
/// argument containing `*`/`?` is matched (via the suite glob, where `*`
/// crosses `/`) against the files under its deepest wildcard-free parent
/// directory. A pattern that matches nothing is an error — a typo'd glob
/// silently recording zero manifests would defeat the gate.
fn expand_manifest_args(args: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for arg in args {
        if !arg.contains('*') && !arg.contains('?') {
            out.push(PathBuf::from(arg));
            continue;
        }
        let (dir, rest) = match arg.rfind('/') {
            // Split at the last separator before the first wildcard.
            Some(_) => {
                let wild = arg.find(['*', '?']).unwrap_or(0);
                match arg[..wild].rfind('/') {
                    Some(i) => (&arg[..i], &arg[i + 1..]),
                    None => (".", arg.as_str()),
                }
            }
            None => (".", arg.as_str()),
        };
        let mut matched: Vec<PathBuf> = Vec::new();
        let mut stack = vec![PathBuf::from(dir)];
        while let Some(d) = stack.pop() {
            let entries =
                std::fs::read_dir(&d).map_err(|e| format!("cannot list {}: {e}", d.display()))?;
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if let Ok(rel) = path.strip_prefix(dir) {
                    let rel = rel.to_string_lossy().replace('\\', "/");
                    if tfb_bench::suite::glob_match(rest, &rel) {
                        matched.push(path);
                    }
                }
            }
        }
        if matched.is_empty() {
            return Err(format!("no files match {arg:?}"));
        }
        matched.sort();
        out.extend(matched);
    }
    Ok(out)
}

/// `tfb obs diff A B`: every comparable quantity of two runs, sorted by
/// regression magnitude. With `--tol-pct` the exit code reports whether
/// any regression exceeded the threshold.
fn cmd_obs_diff(args: &[String]) -> ExitCode {
    let pos = positionals(args);
    let [base_sel, new_sel] = pos.as_slice() else {
        eprintln!("usage: tfb obs diff <A> <B> [--tol-pct P] [--history DIR|none]");
        return ExitCode::FAILURE;
    };
    let mut hist = None;
    let base = match load_manifest_arg(args, &mut hist, base_sel) {
        Ok((m, _)) => m,
        Err(e) => {
            eprintln!("tfb obs diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let new = match load_manifest_arg(args, &mut hist, new_sel) {
        Ok((m, _)) => m,
        Err(e) => {
            eprintln!("tfb obs diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows = history::diff_manifests(&base, &new);
    print!("{}", history::render_diff(&rows));
    if let Some(tol) = flag_value(args, "--tol-pct").and_then(|v| v.parse::<f64>().ok()) {
        let over: Vec<&history::DiffRow> = rows
            .iter()
            .filter(|r| r.delta_pct().is_some_and(|d| d > tol))
            .collect();
        if !over.is_empty() {
            eprintln!("{} quantity(ies) regressed beyond +{tol}%:", over.len());
            for r in over {
                eprintln!(
                    "  {} {} ({:+.1}%)",
                    r.kind.tag(),
                    r.name,
                    r.delta_pct().unwrap_or(f64::NAN)
                );
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `tfb obs trend`: wall time and per-cell metric series over the run
/// history, rendered as sparklines (oldest run on the left).
fn cmd_obs_trend(args: &[String]) -> ExitCode {
    let Some(root) = history_root(args) else {
        eprintln!("tfb obs trend: the run history is disabled (--history none)");
        return ExitCode::FAILURE;
    };
    let hist = match RunHistory::open(&root) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("tfb obs trend: {e}");
            return ExitCode::FAILURE;
        }
    };
    if hist.entries().is_empty() {
        println!(
            "history at {} is empty (run `tfb run` first)",
            root.display()
        );
        return ExitCode::SUCCESS;
    }
    let limit: usize = flag_value(args, "--limit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
        .max(1);
    let filter = flag_value(args, "--metric");
    let entries = hist.entries();
    let start = entries.len().saturating_sub(limit);
    let mut manifests: Vec<Manifest> = Vec::new();
    for entry in &entries[start..] {
        match hist.load(entry) {
            Ok(parsed) => {
                for w in &parsed.warnings {
                    eprintln!("warning: run {}: {w}", entry.id);
                }
                manifests.push(parsed.manifest);
            }
            Err(e) => eprintln!("warning: skipping run {}: {e}", entry.id),
        }
    }
    let n = manifests.len();
    println!("{} run(s) in {} (oldest on the left)", n, root.display());
    let wall: Vec<f64> = manifests.iter().map(|m| m.wall_ns as f64 / 1e9).collect();
    if filter.is_none() {
        println!(
            "  {:<44} {}  last {:.2} s",
            "wall time",
            history::sparkline(&wall),
            wall.last().copied().unwrap_or(f64::NAN)
        );
    }
    // Per-cell metric series; runs that lack a cell render as gaps.
    let mut series: std::collections::BTreeMap<String, Vec<f64>> =
        std::collections::BTreeMap::new();
    for (i, m) in manifests.iter().enumerate() {
        for row in &m.metrics {
            let key = format!(
                "{}/{} h={} {}",
                row.dataset, row.method, row.horizon, row.name
            );
            series.entry(key).or_insert_with(|| vec![f64::NAN; n])[i] = row.value;
        }
    }
    let mut printed = 0usize;
    for (key, values) in &series {
        if let Some(f) = &filter {
            if !key.contains(f.as_str()) {
                continue;
            }
        }
        let last = values
            .iter()
            .rev()
            .find(|v| v.is_finite())
            .copied()
            .unwrap_or(f64::NAN);
        println!(
            "  {:<44} {}  last {:.6}",
            key,
            history::sparkline(values),
            last
        );
        printed += 1;
    }
    if printed == 0 {
        match &filter {
            Some(f) => println!("  (no metric matches {f:?})"),
            None => println!("  (no per-cell metrics recorded yet)"),
        }
    }
    ExitCode::SUCCESS
}

/// `tfb obs gate`: the noise-aware regression gate. Baselines are the
/// `--min-runs` history entries starting at `--baseline` (default
/// `first`), the candidate defaults to `last`; both also accept manifest
/// file paths. `--tol-pct` covers wall time, phases, RSS and allocation
/// counters; accuracy metrics use the tighter `--tol-metric`.
fn cmd_obs_gate(args: &[String]) -> ExitCode {
    let tol_pct: f64 = flag_value(args, "--tol-pct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let tol_metric: f64 = flag_value(args, "--tol-metric")
        .and_then(|v| v.parse().ok())
        .unwrap_or(GateTolerances::default().metric_pct);
    let min_runs: usize = flag_value(args, "--min-runs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let baseline_sel = flag_value(args, "--baseline").unwrap_or_else(|| "first".to_string());
    let candidate_sel = flag_value(args, "--candidate").unwrap_or_else(|| "last".to_string());
    let mut hist = None;
    let (candidate, candidate_seq) = match load_manifest_arg(args, &mut hist, &candidate_sel) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("tfb obs gate: cannot load the candidate: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Baselines: a manifest file is a single baseline; a history selector
    // anchors a window of up to `min_runs` entries (candidate excluded).
    let mut baselines: Vec<Manifest> = Vec::new();
    if Path::new(&baseline_sel).is_file() {
        match load_manifest_arg(args, &mut hist, &baseline_sel) {
            Ok((m, _)) => baselines.push(m),
            Err(e) => {
                eprintln!("tfb obs gate: cannot load the baseline: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        if let Err(e) = open_history(args, &mut hist) {
            eprintln!("tfb obs gate: {e}");
            return ExitCode::FAILURE;
        }
        let h = hist.as_ref().expect("history just opened");
        let Some(anchor) = h.resolve(&baseline_sel).map(|e| e.seq) else {
            eprintln!(
                "tfb obs gate: no history entry matches {baseline_sel:?} ({} run(s) in {})",
                h.entries().len(),
                h.root().display()
            );
            return ExitCode::FAILURE;
        };
        for entry in h.entries().iter().skip(anchor) {
            if baselines.len() >= min_runs {
                break;
            }
            if Some(entry.seq) == candidate_seq {
                continue;
            }
            match h.load(entry) {
                Ok(parsed) => {
                    for w in &parsed.warnings {
                        eprintln!("warning: run {}: {w}", entry.id);
                    }
                    baselines.push(parsed.manifest);
                }
                Err(e) => eprintln!("warning: skipping baseline run {}: {e}", entry.id),
            }
        }
    }
    if baselines.is_empty() {
        eprintln!("tfb obs gate: no baseline runs to compare against (only health checks ran)");
    } else if baselines.len() < min_runs {
        eprintln!(
            "note: only {} baseline run(s) available (wanted {min_runs}); \
             the noise aggregates are weaker",
            baselines.len()
        );
    }
    let tol = GateTolerances {
        wall_pct: tol_pct,
        rss_pct: tol_pct,
        alloc_pct: tol_pct,
        metric_pct: tol_metric,
    };
    let refs: Vec<&Manifest> = baselines.iter().collect();
    let report = history::gate(&refs, &candidate, &tol);
    println!(
        "gate: {} check(s) against {} baseline run(s) \
         (tolerance +{tol_pct}% resources, +{tol_metric}% metrics)",
        report.checks.len(),
        report.baseline_runs
    );
    // Whole-number quantities (nanoseconds, bytes, counts) print as
    // integers; fractional accuracy metrics keep their precision.
    let fmt = |v: f64| {
        if v.fract() == 0.0 && v.abs() < 9.0e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.6}")
        }
    };
    for c in report.checks.iter().filter(|c| !c.failed) {
        println!(
            "  ok   {:<44} {:>14} vs {:>14} ({:+.1}%)",
            c.name,
            fmt(c.candidate),
            fmt(c.baseline),
            c.delta_pct
        );
    }
    for f in &report.failures {
        println!("  FAIL {f}");
    }
    if report.passed() {
        println!("gate: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("gate: FAIL ({} regression(s))", report.failures.len());
        ExitCode::FAILURE
    }
}

/// `tfb obs export-trace`: convert a run's JSONL event log into Chrome
/// trace-event JSON — one lane per worker thread, one slice per span /
/// traced request (with per-phase child slices), and flow arrows tying
/// each request to the coalescer batch that served it. The output loads
/// in Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`.
fn cmd_obs_export_trace(args: &[String]) -> ExitCode {
    let pos = positionals(args);
    let [events_path] = pos.as_slice() else {
        eprintln!("usage: tfb obs export-trace EVENTS.jsonl [--out TRACE.json]");
        return ExitCode::FAILURE;
    };
    let out = flag_value(args, "--out").unwrap_or_else(|| format!("{events_path}.trace.json"));
    let text = match std::fs::read_to_string(events_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tfb obs export-trace: cannot read {events_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match tfb_obs::export::chrome_trace(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tfb obs export-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, &trace) {
        eprintln!("tfb obs export-trace: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {out} ({} bytes) — open it in https://ui.perfetto.dev",
        trace.len()
    );
    ExitCode::SUCCESS
}

/// Loads the postmortem index under the history root. Postmortem bundles
/// are written by the flight recorder next to the run history, so the
/// same `--history DIR` / `TFB_HISTORY` resolution applies.
fn load_postmortem_index(
    args: &[String],
) -> Result<(PathBuf, Vec<history::PostmortemEntry>), String> {
    let root = history_root(args).ok_or_else(|| {
        "the run history is disabled (--history none); postmortem bundles live under it".to_string()
    })?;
    let entries = history::load_postmortems(&root)?;
    Ok((root, entries))
}

/// Resolves a postmortem selector (`first`, `last`, 0-based index, id
/// prefix) against the index, with a helpful error on a miss.
fn resolve_postmortem_arg<'a>(
    entries: &'a [history::PostmortemEntry],
    sel: &str,
) -> Result<&'a history::PostmortemEntry, String> {
    if entries.is_empty() {
        return Err("no postmortem bundles recorded yet".to_string());
    }
    history::resolve_postmortem(entries, sel).ok_or_else(|| {
        format!("no postmortem matches selector `{sel}` (try `tfb obs postmortem ls`)")
    })
}

/// `tfb obs postmortem`: inspect the flight recorder's postmortem
/// bundles. `ls` lists the index, `show` prints a bundle's manifest,
/// `export-trace` converts a bundle's captured ring events into the same
/// Perfetto-loadable trace JSON `obs export-trace` produces for full
/// event logs.
fn cmd_obs_postmortem(args: &[String]) -> ExitCode {
    const PM_USAGE: &str =
        "usage: tfb obs postmortem ls | show SEL | export-trace SEL [--out TRACE.json] [--history DIR]";
    let sub = args.first().map(String::as_str);
    let rest = if args.is_empty() { args } else { &args[1..] };
    let (root, entries) = match load_postmortem_index(rest) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("tfb obs postmortem: {e}");
            return ExitCode::FAILURE;
        }
    };
    match sub {
        Some("ls") => {
            if entries.is_empty() {
                println!("no postmortem bundles under {}", root.display());
                return ExitCode::SUCCESS;
            }
            println!("{:<4} {:<16} {:>7}  reason", "idx", "id", "events");
            for (idx, e) in entries.iter().enumerate() {
                println!(
                    "{:<4} {:<16} {:>7}  {}",
                    idx,
                    &e.id[..e.id.len().min(16)],
                    e.events,
                    e.reason
                );
            }
            ExitCode::SUCCESS
        }
        Some("show") => {
            let pos = positionals(rest);
            let [sel] = pos.as_slice() else {
                eprintln!("{PM_USAGE}");
                return ExitCode::FAILURE;
            };
            let entry = match resolve_postmortem_arg(&entries, sel) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("tfb obs postmortem show: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let path = entry.dir(&root).join("postmortem.manifest.json");
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!(
                        "tfb obs postmortem show: cannot read {}: {e}",
                        path.display()
                    );
                    ExitCode::FAILURE
                }
            }
        }
        Some("export-trace") => {
            let pos = positionals(rest);
            let [sel] = pos.as_slice() else {
                eprintln!("{PM_USAGE}");
                return ExitCode::FAILURE;
            };
            let entry = match resolve_postmortem_arg(&entries, sel) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("tfb obs postmortem export-trace: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let dir = entry.dir(&root);
            let events_path = dir.join("events.jsonl");
            let text = match std::fs::read_to_string(&events_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!(
                        "tfb obs postmortem export-trace: cannot read {}: {e}",
                        events_path.display()
                    );
                    return ExitCode::FAILURE;
                }
            };
            let trace = match tfb_obs::export::chrome_trace(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("tfb obs postmortem export-trace: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let out = flag_value(rest, "--out")
                .map(PathBuf::from)
                .unwrap_or_else(|| dir.join("postmortem.trace.json"));
            if let Err(e) = std::fs::write(&out, &trace) {
                eprintln!(
                    "tfb obs postmortem export-trace: cannot write {}: {e}",
                    out.display()
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} ({} bytes) — open it in https://ui.perfetto.dev",
                out.display(),
                trace.len()
            );
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{PM_USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// `tfb obs export-profile`: turn a run's `psample` profiler events into
/// collapsed-stack lines (`thread;frame;frame count`) that flamegraph
/// tools consume directly. The argument is an events file path, or a
/// postmortem selector — a bundle's own `profile.collapsed` is preferred
/// when present, otherwise its captured ring events are aggregated.
fn cmd_obs_export_profile(args: &[String]) -> ExitCode {
    let pos = positionals(args);
    let [arg] = pos.as_slice() else {
        eprintln!(
            "usage: tfb obs export-profile EVENTS.jsonl|SEL [--out PROFILE.collapsed] [--history DIR]"
        );
        return ExitCode::FAILURE;
    };
    let collapsed = if Path::new(arg).is_file() {
        let text = match std::fs::read_to_string(arg) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tfb obs export-profile: cannot read {arg}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match tfb_obs::export::collapsed_profile(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("tfb obs export-profile: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let (root, entries) = match load_postmortem_index(args) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("tfb obs export-profile: {e}");
                return ExitCode::FAILURE;
            }
        };
        let entry = match resolve_postmortem_arg(&entries, arg) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("tfb obs export-profile: {arg} is neither a file nor a bundle: {e}");
                return ExitCode::FAILURE;
            }
        };
        let dir = entry.dir(&root);
        let ready = dir.join("profile.collapsed");
        if ready.is_file() {
            match std::fs::read_to_string(&ready) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!(
                        "tfb obs export-profile: cannot read {}: {e}",
                        ready.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        } else {
            let events_path = dir.join("events.jsonl");
            let text = match std::fs::read_to_string(&events_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!(
                        "tfb obs export-profile: cannot read {}: {e}",
                        events_path.display()
                    );
                    return ExitCode::FAILURE;
                }
            };
            match tfb_obs::export::collapsed_profile(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("tfb obs export-profile: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    if collapsed.is_empty() {
        eprintln!("tfb obs export-profile: no profiler samples (was --profile-hz set?)");
        return ExitCode::FAILURE;
    }
    match flag_value(args, "--out") {
        Some(out) => {
            if let Err(e) = std::fs::write(&out, &collapsed) {
                eprintln!("tfb obs export-profile: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {out} ({} stack(s)) — feed it to a flamegraph renderer",
                collapsed.lines().count()
            );
        }
        None => print!("{collapsed}"),
    }
    ExitCode::SUCCESS
}

/// `tfb obs validate-metrics`: check a saved `GET /metrics` exposition
/// against the in-repo OpenMetrics validator (the same one CI runs).
fn cmd_obs_validate_metrics(args: &[String]) -> ExitCode {
    let pos = positionals(args);
    let [path] = pos.as_slice() else {
        eprintln!("usage: tfb obs validate-metrics FILE");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tfb obs validate-metrics: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match tfb_obs::openmetrics::validate(&text) {
        Ok(()) => {
            println!("{path}: valid OpenMetrics text format");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tfb obs validate-metrics: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `tfb train`: fit one method on one dataset and save the parameters as
/// a `tfb-artifact/v1` file. The normalization sequence is exactly the
/// offline pipeline's: fit the normalizer on the raw training split,
/// normalize the whole series, train on the pre-validation rows — so a
/// served forecast is bit-identical to the offline predict of the same
/// window.
fn cmd_train(args: &[String]) -> ExitCode {
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("tfb train: missing --out MODEL.tfba");
        return ExitCode::FAILURE;
    };
    let method = flag_value(args, "--method").unwrap_or_else(|| "LR".to_string());
    let dataset = flag_value(args, "--dataset").unwrap_or_else(|| "ILI".to_string());
    let lookback: usize = flag_value(args, "--lookback")
        .and_then(|v| v.parse().ok())
        .unwrap_or(36);
    let horizon: usize = flag_value(args, "--horizon")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let max_len: usize = flag_value(args, "--max-len")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let max_dim: usize = flag_value(args, "--max-dim")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let norm_name = flag_value(args, "--norm").unwrap_or_else(|| "ZScore".to_string());
    let Some(norm_kind) = tfb::data::Normalization::parse_name(&norm_name) else {
        eprintln!("tfb train: unknown normalization {norm_name:?} (ZScore, MinMax or None)");
        return ExitCode::FAILURE;
    };
    let scale = tfb::datagen::Scale { max_len, max_dim };
    let Some(handle) = tfb::core::data::load(&dataset, scale) else {
        eprintln!("tfb train: unknown dataset {dataset} (try `tfb datasets`)");
        return ExitCode::FAILURE;
    };
    let split = match tfb::data::ChronoSplit::split(&handle.series, handle.profile.split) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tfb train: cannot split {dataset}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let norm = tfb::data::Normalizer::fit(&split.train, norm_kind);
    let normed = match norm.apply(&handle.series) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("tfb train: cannot normalize {dataset}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let train = normed.slice_rows(0..split.val_start);
    let deep_config = flag_value(args, "--epochs")
        .and_then(|v| v.parse().ok())
        .map(|epochs| tfb::nn::TrainConfig {
            epochs,
            ..tfb::nn::TrainConfig::default()
        });
    let descriptor = format!(
        "{dataset}|{method}|L={lookback}|H={horizon}|{norm_name}|len={max_len}|dim={max_dim}"
    );
    let config_hash = tfb_obs::fnv1a_hex(descriptor.as_bytes());
    eprintln!(
        "training {method} on {dataset} ({} x {}, lookback {lookback}, horizon {horizon})...",
        train.len(),
        train.dim()
    );
    let artifact = match tfb::artifact::fit(
        &method,
        &train,
        lookback,
        horizon,
        norm,
        config_hash,
        deep_config,
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tfb train: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out_path = PathBuf::from(&out);
    if let Err(e) = artifact.save(&out_path) {
        eprintln!("tfb train: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let size = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out} ({size} bytes, {} v{}, method {}, {}d lookback {} horizon {})",
        tfb::artifact::format::SCHEMA_NAME,
        tfb::artifact::format::SCHEMA_VERSION,
        artifact.method,
        artifact.dim,
        artifact.lookback,
        artifact.horizon
    );
    ExitCode::SUCCESS
}

/// `tfb serve`: load an artifact and answer `POST /forecast` until a
/// SIGTERM/SIGINT (or `POST /shutdown`) drains the server. The listen
/// address prints to stdout so scripts can discover an ephemeral port.
///
/// With `--out DIR` the serving run writes its JSONL event log (every
/// span and traced request) to `DIR/serve.events.jsonl` and, on drain,
/// its manifest to `DIR/serve.manifest.json` — feed the event log to
/// `tfb obs export-trace` for a Perfetto view. `--slo-ms` /
/// `--slo-objective` set the latency SLO the burn-rate gauges on
/// `GET /metrics` track (default 50 ms at p99).
/// Resolves the registry root: `--registry DIR`, then `TFB_REGISTRY`,
/// then `.tfb-registry` — the same precedence the history root uses.
fn registry_store_root(args: &[String]) -> PathBuf {
    PathBuf::from(
        flag_value(args, "--registry")
            .or_else(|| std::env::var("TFB_REGISTRY").ok())
            .unwrap_or_else(|| ".tfb-registry".to_string()),
    )
}

fn open_registry(args: &[String]) -> Result<tfb::registry::Registry, ExitCode> {
    let root = registry_store_root(args);
    tfb::registry::Registry::open(&root).map_err(|e| {
        eprintln!("tfb registry: cannot open {}: {e}", root.display());
        ExitCode::FAILURE
    })
}

/// `tfb registry`: the content-addressed model store. `publish` is the
/// only way bytes get in (validated, checksummed, deduplicated);
/// `promote`/`rollback` drive the canary label state machine; `fsck`
/// re-verifies every blob end to end and exits non-zero on corruption.
fn cmd_registry(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("publish") => cmd_registry_publish(&args[1..]),
        Some("ls") => cmd_registry_ls(&args[1..]),
        Some("gc") => cmd_registry_gc(&args[1..]),
        Some("fsck") => cmd_registry_fsck(&args[1..]),
        Some("promote") => cmd_registry_promote(&args[1..]),
        Some("rollback") => cmd_registry_rollback(&args[1..]),
        _ => {
            eprintln!("usage: tfb registry publish|ls|gc|fsck|promote|rollback [--registry DIR]");
            ExitCode::FAILURE
        }
    }
}

fn cmd_registry_publish(args: &[String]) -> ExitCode {
    let pos = positionals(args);
    let [artifact_path] = pos.as_slice() else {
        eprintln!("tfb registry publish: expected exactly one MODEL.tfba path");
        return ExitCode::FAILURE;
    };
    let Some(name) = flag_value(args, "--name") else {
        eprintln!("tfb registry publish: missing --name NAME");
        return ExitCode::FAILURE;
    };
    let label =
        flag_value(args, "--label").unwrap_or_else(|| tfb::registry::DEFAULT_LABEL.to_string());
    let registry = match open_registry(args) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match registry.publish_file(&name, &label, Path::new(artifact_path)) {
        Ok(out) => {
            let dedup = if out.deduplicated {
                " (blob already stored)"
            } else {
                ""
            };
            println!(
                "published {name}@{label} -> {} (generation {}){dedup}",
                out.blob, out.generation
            );
            if let Some(old) = out.replaced {
                println!("  replaced {old}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tfb registry publish: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_registry_ls(args: &[String]) -> ExitCode {
    let registry = match open_registry(args) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let index = match registry.load_index() {
        Ok(i) => i,
        Err(e) => {
            eprintln!("tfb registry ls: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} (generation {}, {} model(s))",
        registry.root().display(),
        index.generation,
        index.models.len()
    );
    for (name, entry) in &index.models {
        for (label, blob) in &entry.labels {
            let size = std::fs::metadata(registry.blob_path(blob))
                .map(|m| format!("{} B", m.len()))
                .unwrap_or_else(|_| "missing".to_string());
            println!("  {name}@{label}  {blob}  {size}");
        }
        if let Some(prev) = &entry.previous {
            println!("  {name}  previous: {prev}");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_registry_gc(args: &[String]) -> ExitCode {
    let registry = match open_registry(args) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match registry.gc() {
        Ok(report) => {
            println!(
                "gc: removed {} blob(s), kept {}",
                report.removed.len(),
                report.kept
            );
            for blob in &report.removed {
                println!("  removed {blob}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tfb registry gc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_registry_fsck(args: &[String]) -> ExitCode {
    let registry = match open_registry(args) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match registry.fsck() {
        Ok(report) => {
            println!(
                "fsck: {} blob(s) verified, {} reference(s) checked",
                report.blobs_checked, report.refs_checked
            );
            if report.ok() {
                println!("fsck: OK");
                ExitCode::SUCCESS
            } else {
                for p in &report.problems {
                    eprintln!("  CORRUPT {p}");
                }
                eprintln!("fsck: {} problem(s)", report.problems.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tfb registry fsck: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `tfb registry promote`: flip `NAME@--from` (canary by default) to
/// `NAME@--to` (prod). When `--baseline` and `--candidate` manifests are
/// given — the pair a canary-mirroring serve session writes on drain —
/// the same noise-aware gate as `tfb obs gate` judges the candidate
/// first, plus an explicit NaN check; the label only flips on a pass
/// (or `--force`).
fn cmd_registry_promote(args: &[String]) -> ExitCode {
    let pos = positionals(args);
    let [name] = pos.as_slice() else {
        eprintln!("tfb registry promote: expected exactly one model NAME");
        return ExitCode::FAILURE;
    };
    let from =
        flag_value(args, "--from").unwrap_or_else(|| tfb::registry::CANARY_LABEL.to_string());
    let to = flag_value(args, "--to").unwrap_or_else(|| tfb::registry::DEFAULT_LABEL.to_string());
    let force = args.iter().any(|a| a == "--force");
    let baseline_sel = flag_value(args, "--baseline");
    let candidate_sel = flag_value(args, "--candidate");
    if baseline_sel.is_some() != candidate_sel.is_some() {
        eprintln!("tfb registry promote: --baseline and --candidate must be given together");
        return ExitCode::FAILURE;
    }
    if let (Some(base_sel), Some(cand_sel)) = (&baseline_sel, &candidate_sel) {
        let tol_pct: f64 = flag_value(args, "--tol-pct")
            .and_then(|v| v.parse().ok())
            .unwrap_or(10.0);
        let mut hist: Option<RunHistory> = None;
        let (baseline, _) = match load_manifest_arg(args, &mut hist, base_sel) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("tfb registry promote: baseline: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (candidate, _) = match load_manifest_arg(args, &mut hist, cand_sel) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("tfb registry promote: candidate: {e}");
                return ExitCode::FAILURE;
            }
        };
        // NaN values in the candidate's mirrored forecasts are an
        // automatic veto: a tolerance-percent gate cannot see them
        // (NaN breaks every comparison it touches).
        let candidate_nans: f64 = candidate
            .metrics
            .iter()
            .filter(|row| row.name.contains("nan"))
            .map(|row| row.value)
            .sum();
        let nan_veto = candidate_nans > 0.0 || !candidate.health.nan_cells.is_empty();
        let tol = GateTolerances {
            wall_pct: tol_pct,
            rss_pct: tol_pct,
            alloc_pct: tol_pct,
            metric_pct: tol_pct,
        };
        let report = history::gate(&[&baseline], &candidate, &tol);
        println!(
            "promote gate: {} check(s), tolerance +{tol_pct}%",
            report.checks.len()
        );
        for f in &report.failures {
            println!("  FAIL {f}");
        }
        if nan_veto {
            println!("  FAIL candidate produced NaN forecasts ({candidate_nans} value(s))");
        }
        if (!report.passed() || nan_veto) && !force {
            eprintln!("promote: gate FAILED; {name}@{from} stays staged (use --force to override)");
            return ExitCode::FAILURE;
        }
        if force && (!report.passed() || nan_veto) {
            eprintln!("promote: gate failed but --force given; promoting anyway");
        } else {
            println!("promote gate: PASS");
        }
    }
    let registry = match open_registry(args) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match registry.promote(name, &from, &to) {
        Ok(blob) => {
            println!("promoted {name}@{from} -> {name}@{to} ({blob})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tfb registry promote: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_registry_rollback(args: &[String]) -> ExitCode {
    let pos = positionals(args);
    let [name] = pos.as_slice() else {
        eprintln!("tfb registry rollback: expected exactly one model NAME");
        return ExitCode::FAILURE;
    };
    let label =
        flag_value(args, "--label").unwrap_or_else(|| tfb::registry::DEFAULT_LABEL.to_string());
    let registry = match open_registry(args) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match registry.rollback(name, &label) {
        Ok(blob) => {
            println!("rolled back {name}@{label} -> {blob}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tfb registry rollback: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints the drain-time canary comparison and, when an output
/// directory is set, writes it as two parallel manifests — baseline
/// (production forecasts on the mirrored traffic) and candidate (the
/// canary's forecasts on the identical traffic) — in the exact shape
/// `tfb obs diff` and `tfb registry promote --baseline --candidate`
/// consume.
fn report_canary(drain: &tfb::serve::DrainReport, out_dir: Option<&Path>) {
    if drain.canary.is_empty() {
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut baseline = Manifest {
        meta: vec![
            ("command".to_string(), "serve-canary".to_string()),
            ("side".to_string(), "baseline".to_string()),
        ],
        cores,
        ..Manifest::default()
    };
    let mut candidate = Manifest {
        meta: vec![
            ("command".to_string(), "serve-canary".to_string()),
            ("side".to_string(), "candidate".to_string()),
        ],
        cores,
        ..Manifest::default()
    };
    let row = |model: &str, horizon: u64, name: &str, value: f64| tfb_obs::manifest::MetricRow {
        dataset: model.to_string(),
        method: "mirror".to_string(),
        horizon: horizon as usize,
        name: name.to_string(),
        value,
    };
    for stat in &drain.canary {
        eprintln!(
            "canary {}: {} mirrored request(s), {} error(s), drift {:.6} \
             (|prod| {:.6} vs |canary| {:.6}), {} NaN value(s)",
            stat.model,
            stat.requests,
            stat.errors,
            stat.mean_abs_delta,
            stat.mean_abs_primary,
            stat.mean_abs_canary,
            stat.nan_canary,
        );
        let m = &stat.model;
        let h = stat.horizon;
        baseline
            .metrics
            .push(row(m, h, "forecast_mean_abs", stat.mean_abs_primary));
        baseline
            .metrics
            .push(row(m, h, "forecast_nan_values", stat.nan_primary as f64));
        baseline.metrics.push(row(m, h, "predict_errors", 0.0));
        candidate
            .metrics
            .push(row(m, h, "forecast_mean_abs", stat.mean_abs_canary));
        candidate
            .metrics
            .push(row(m, h, "forecast_nan_values", stat.nan_canary as f64));
        candidate
            .metrics
            .push(row(m, h, "predict_errors", stat.errors as f64));
        candidate
            .metrics
            .push(row(m, h, "forecast_mean_abs_delta", stat.mean_abs_delta));
    }
    if drain.canary_dropped > 0 {
        eprintln!(
            "canary: {} mirrored request(s) dropped (queue full)",
            drain.canary_dropped
        );
    }
    let Some(dir) = out_dir else {
        eprintln!("canary: no --out directory; comparison manifests not written");
        return;
    };
    let _ = std::fs::create_dir_all(dir);
    for (manifest, file) in [
        (&baseline, "canary.baseline.manifest.json"),
        (&candidate, "canary.candidate.manifest.json"),
    ] {
        let path = dir.join(file);
        match manifest.write(&path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write the canary manifest: {e}"),
        }
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let model_path = flag_value(args, "--model");
    let registry_dir = flag_value(args, "--registry");
    if model_path.is_none() && registry_dir.is_none() {
        eprintln!("tfb serve: need --model MODEL.tfba or --registry DIR");
        return ExitCode::FAILURE;
    };
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut coalescer = tfb::serve::CoalescerConfig::default();
    if let Some(n) = flag_value(args, "--shards").and_then(|v| v.parse().ok()) {
        coalescer.shards = n; // 0 = one shard per core
    }
    // `--max-batch` is the pre-sharding spelling of `--batch-max`.
    if let Some(n) = flag_value(args, "--batch-max")
        .or_else(|| flag_value(args, "--max-batch"))
        .and_then(|v| v.parse().ok())
    {
        coalescer.max_batch = n;
    }
    if let Some(us) = flag_value(args, "--budget-us").and_then(|v| v.parse().ok()) {
        coalescer.budget = std::time::Duration::from_micros(us);
    } else if let Some(ms) = flag_value(args, "--max-delay-ms").and_then(|v| v.parse().ok()) {
        // Legacy alias: the old coalescer held every batch open for a
        // fixed window; budget == hint reproduces that behaviour.
        coalescer.budget = std::time::Duration::from_millis(ms);
        coalescer.coalesce_hint = coalescer.budget;
    }
    if let Some(n) = flag_value(args, "--queue-cap").and_then(|v| v.parse().ok()) {
        coalescer.queue_cap = n;
    }
    // Either a whole registry fleet or a single artifact. `--model` is
    // the original surface and stays: it materializes a one-entry
    // in-memory fleet, so routed requests work against it too.
    let fleet = if let Some(dir) = &registry_dir {
        let registry = match tfb::registry::Registry::open(Path::new(dir)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("tfb serve: cannot open registry {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut fleet_cfg = tfb::registry::fleet::FleetConfig::default();
        if let Some(n) = flag_value(args, "--resident-cap").and_then(|v| v.parse().ok()) {
            fleet_cfg.resident_cap = n;
        }
        match tfb::registry::fleet::Fleet::open(registry, fleet_cfg) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("tfb serve: cannot open fleet over {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let path = model_path.as_deref().expect("checked above");
        let model = match tfb::artifact::ServableModel::load(Path::new(path)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("tfb serve: cannot load {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let name = model.method().to_string();
        tfb::registry::fleet::Fleet::single(&name, model)
    };
    let source = registry_dir
        .clone()
        .or(model_path)
        .expect("one of --model/--registry present");
    // Arm the live metric registry so `GET /metrics` has data. Without
    // `--out` the serving process writes no event log or manifest file.
    let out_dir = flag_value(args, "--out").map(PathBuf::from);
    let obs_on = std::env::var("TFB_OBS").map(|v| v != "0").unwrap_or(true);
    let mut obs_armed = false;
    if obs_on {
        let events_path = out_dir.as_ref().map(|dir| {
            let _ = std::fs::create_dir_all(dir);
            dir.join("serve.events.jsonl")
        });
        match tfb_obs::start_run(tfb_obs::RunOptions { events_path }) {
            Ok(()) => obs_armed = true,
            Err(e) => eprintln!("tfb serve: could not arm observability: {e}"),
        }
    }
    // The SLO must be configured after arming: starting a run resets the
    // tracker so stale windows never leak across runs.
    let slo_ms: Option<f64> = flag_value(args, "--slo-ms").and_then(|v| v.parse().ok());
    let slo_objective: Option<f64> =
        flag_value(args, "--slo-objective").and_then(|v| v.parse().ok());
    if obs_armed && (slo_ms.is_some() || slo_objective.is_some()) {
        let mut slo = tfb_obs::trace::SloConfig::default();
        if let Some(ms) = slo_ms {
            slo.threshold = std::time::Duration::from_secs_f64(ms.max(0.0) / 1e3);
        }
        if let Some(q) = slo_objective {
            slo.objective = q.clamp(0.0, 0.999_999);
        }
        tfb_obs::trace::configure_slo(slo);
    }
    // Arm the flight recorder: anomaly triggers (SLO burn, health
    // sentinels, queue spikes, panics) dump postmortem bundles next to
    // the run history. `--history none` disables it along with the rest
    // of the cross-run machinery.
    let flight_root = if obs_armed { history_root(args) } else { None };
    let flight_armed = flight_root.is_some();
    if let Some(root) = flight_root {
        tfb_obs::flight::configure(tfb_obs::flight::FlightConfig {
            history_root: Some(root),
            context: vec![
                ("command".to_string(), "serve".to_string()),
                ("model".to_string(), source.clone()),
                (
                    "kernel".to_string(),
                    tfb::math::kernel::active_name().to_string(),
                ),
            ],
            ..Default::default()
        });
        tfb_obs::flight::set_armed(true);
        tfb_obs::flight::install_panic_hook();
    }
    // The wall-clock sampling profiler is opt-in; samples land in the
    // event log (and any postmortem bundle) as `psample` events.
    let profile_hz: u32 = flag_value(args, "--profile-hz")
        .or_else(|| std::env::var("TFB_PROFILE_HZ").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if profile_hz > 0 && obs_armed {
        tfb_obs::flight::profiler::start(profile_hz);
        eprintln!("profiler sampling span stacks at {profile_hz} Hz");
    }
    tfb::serve::install_signal_handlers();
    let names = fleet.names();
    eprintln!(
        "serving {} model(s) from {source}: {}",
        names.len(),
        names.join(", ")
    );
    let handle = match tfb::serve::serve_fleet(
        std::sync::Arc::new(fleet),
        tfb::serve::ServerConfig { addr, coalescer },
    ) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("tfb serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shards = handle.shards();
    eprintln!(
        "{shards} shard(s), {} kernels",
        tfb::math::kernel::active_name()
    );
    println!("listening on {}", handle.addr());
    let drain = handle.run_until(tfb::serve::signal_received);
    eprintln!("draining and shutting down...");
    report_canary(&drain, out_dir.as_deref());
    // Stop the profiler before the run closes so its final flush of
    // `psample` rows still lands in the event log.
    if profile_hz > 0 && obs_armed {
        tfb_obs::flight::profiler::stop();
        let collapsed = tfb_obs::flight::profiler::collapsed();
        if !collapsed.is_empty() {
            if let Some(dir) = &out_dir {
                let path = dir.join("serve.profile.collapsed");
                match std::fs::write(&path, &collapsed) {
                    Ok(()) => eprintln!("wrote {}", path.display()),
                    Err(e) => eprintln!("could not write the profile: {e}"),
                }
            }
        }
    }
    if obs_armed {
        let meta = [
            ("command", "serve".to_string()),
            ("model", source.clone()),
            ("shards", shards.to_string()),
            ("kernel", tfb::math::kernel::active_name().to_string()),
        ];
        if let Some(manifest) = tfb_obs::finish_run(&meta) {
            if let Some(dir) = &out_dir {
                let path = dir.join("serve.manifest.json");
                match manifest.write(&path) {
                    Ok(()) => eprintln!("wrote {}", path.display()),
                    Err(e) => eprintln!("could not write the serve manifest: {e}"),
                }
            }
        }
    }
    if flight_armed {
        let (dumps, suppressed) = tfb_obs::flight::stats();
        if dumps > 0 || suppressed > 0 {
            eprintln!("flight recorder: {dumps} postmortem dump(s), {suppressed} suppressed");
        }
        tfb_obs::flight::set_armed(false);
    }
    ExitCode::SUCCESS
}

fn cmd_datasets() -> ExitCode {
    println!(
        "{:<12} {:<12} {:<10} {:>8} {:>6}  split",
        "name", "domain", "frequency", "length", "dim"
    );
    for p in tfb::datagen::all_profiles() {
        println!(
            "{:<12} {:<12} {:<10} {:>8} {:>6}  {}",
            p.name,
            p.domain.label(),
            p.frequency.label(),
            p.paper_len,
            p.paper_dim,
            p.split.label()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_methods() -> ExitCode {
    use tfb::core::method::{DL_METHODS, ML_METHODS, STAT_METHODS};
    println!("statistical:      {}", STAT_METHODS.join(", "));
    println!("machine learning: {}", ML_METHODS.join(", "));
    println!("deep learning:    {}", DL_METHODS.join(", "));
    ExitCode::SUCCESS
}

fn cmd_characterize(args: &[String]) -> ExitCode {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("tfb characterize: missing dataset name");
        return ExitCode::FAILURE;
    };
    let max_len: usize = flag_value(args, "--max-len")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let scale = tfb::datagen::Scale {
        max_len,
        max_dim: 6,
    };
    let Some(handle) = tfb::core::data::load(name, scale) else {
        eprintln!("tfb characterize: unknown dataset {name} (try `tfb datasets`)");
        return ExitCode::FAILURE;
    };
    let c = tfb::core::data::DatasetCharacteristics::compute(&handle.series, 4);
    println!(
        "dataset:      {name} ({} x {})",
        handle.series.len(),
        handle.series.dim()
    );
    println!("trend:        {:.3}", c.trend);
    println!("seasonality:  {:.3}", c.seasonality);
    println!("stationarity: {:.3}", c.stationarity);
    println!("shifting:     {:.3}", c.shifting);
    println!("transition:   {:.4}", c.transition);
    println!("correlation:  {:.3}", c.correlation);
    ExitCode::SUCCESS
}

fn cmd_example_config() -> ExitCode {
    println!(
        r#"{{
    "datasets": ["ILI", "NASDAQ", "ETTh1"],
    "methods": ["VAR", "LR", "NLinear", "PatchTST"],
    "horizons": [24, 36],
    "lookbacks": [36, 104],
    "strategy": {{"rolling": {{"stride": 1}}}},
    "metrics": ["mae", "mse", "smape"],
    "max_windows": 50,
    "max_len": 2000,
    "max_dim": 6
}}"#
    );
    ExitCode::SUCCESS
}

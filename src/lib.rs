//! # TFB-RS
//!
//! A from-scratch Rust reproduction of **TFB: Towards Comprehensive and
//! Fair Benchmarking of Time Series Forecasting Methods** (Qiu et al.,
//! VLDB 2024).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`math`] — numeric substrate (linear algebra, FFT, STL, PCA);
//! * [`data`] — series containers, splits, normalization, windowing;
//! * [`datagen`] — seeded synthetic stand-ins for the TFB dataset
//!   collection (25 multivariate profiles + the univariate archive);
//! * [`characteristics`] — the six TFB characteristics incl. a catch22 port;
//! * [`models`] — statistical and machine-learning forecasters;
//! * [`nn`] — neural substrate and sixteen miniature deep baselines;
//! * [`core`] — the unified pipeline (method registry, fixed/rolling
//!   evaluation, eight metrics, parallel runner, reporting);
//! * [`artifact`] — the versioned `tfb-artifact/v1` binary model format
//!   (train once, serve anywhere);
//! * [`registry`] — the content-addressed model registry (publish /
//!   promote / rollback), mmap zero-copy artifact loading, and the LRU
//!   model fleet the server routes over;
//! * [`serve`] — a threaded HTTP/1.1 forecast server with micro-batching
//!   and backpressure over a loaded artifact or a whole registry fleet.
//!
//! ## Quickstart
//!
//! ```
//! use tfb::core::{build_method, evaluate_quick};
//! use tfb::datagen::Scale;
//!
//! // Generate the synthetic stand-in for the ILI dataset and score VAR on
//! // a 12-step horizon with rolling evaluation.
//! let dataset = tfb::core::data::load("ILI", Scale::TINY).unwrap();
//! let mut method = build_method("VAR", 36, 12, dataset.series.dim(), None).unwrap();
//! let outcome = evaluate_quick(&mut method, &dataset, 36, 12, 8).unwrap();
//! assert!(outcome.metric(tfb::core::Metric::Mae).is_finite());
//! ```

pub use tfb_artifact as artifact;
pub use tfb_characteristics as characteristics;
pub use tfb_data as data;
pub use tfb_datagen as datagen;
pub use tfb_math as math;
pub use tfb_models as models;
pub use tfb_nn as nn;
pub use tfb_registry as registry;
pub use tfb_serve as serve;

/// The unified pipeline plus a couple of facade conveniences.
pub mod core {
    pub use tfb_core::*;

    use tfb_core::data::DatasetHandle;
    use tfb_core::eval::evaluate;

    /// Convenience: rolling evaluation of one method on one dataset with
    /// TFB defaults and a window budget.
    pub fn evaluate_quick(
        method: &mut Method,
        dataset: &DatasetHandle,
        lookback: usize,
        horizon: usize,
        max_windows: usize,
    ) -> Result<EvalOutcome> {
        let mut settings = EvalSettings::rolling(lookback, horizon, dataset.profile.split);
        settings.max_windows = max_windows;
        evaluate(method, &dataset.series, &settings)
    }
}

//! Exponential smoothing (ETS): simple, Holt's linear (optionally damped)
//! and Holt–Winters additive seasonal variants, with smoothing parameters
//! chosen by grid search over the in-sample one-step error.

use crate::{ModelError, Result, StatForecaster};
use tfb_data::MultiSeries;

/// Which ETS variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtsKind {
    /// Simple exponential smoothing (level only).
    Simple,
    /// Holt's linear trend.
    Holt,
    /// Damped linear trend.
    DampedHolt,
    /// Additive Holt–Winters with the given seasonal period (0 = use the
    /// series frequency's natural period).
    HoltWinters {
        /// Seasonal period in steps.
        period: usize,
    },
    /// Picks the best variant by in-sample one-step SSE.
    Auto,
}

/// ETS forecaster; applies per channel to multivariate histories.
#[derive(Debug, Clone, Copy)]
pub struct Ets {
    /// Variant selector.
    pub kind: EtsKind,
}

impl Ets {
    /// Auto-selecting ETS.
    pub fn auto() -> Ets {
        Ets {
            kind: EtsKind::Auto,
        }
    }
}

impl StatForecaster for Ets {
    fn name(&self) -> &'static str {
        "ETS"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>> {
        let dim = history.dim();
        let natural = history.frequency.default_period();
        let mut per_channel = Vec::with_capacity(dim);
        for c in 0..dim {
            let xs = history.channel(c);
            per_channel.push(forecast_channel(&xs, self.kind, natural, horizon)?);
        }
        Ok(crate::interleave_channels(&per_channel))
    }
}

const GRID: [f64; 5] = [0.05, 0.2, 0.4, 0.6, 0.9];

fn forecast_channel(
    xs: &[f64],
    kind: EtsKind,
    natural_period: usize,
    horizon: usize,
) -> Result<Vec<f64>> {
    if xs.len() < 4 {
        return Err(ModelError::InsufficientData("ets needs >= 4 points"));
    }
    match kind {
        EtsKind::Simple => Ok(best_simple(xs).1.forecast(horizon)),
        EtsKind::Holt => Ok(best_holt(xs, 1.0).1.forecast(horizon)),
        EtsKind::DampedHolt => Ok(best_holt(xs, 0.9).1.forecast(horizon)),
        EtsKind::HoltWinters { period } => {
            let p = if period == 0 { natural_period } else { period };
            match best_hw(xs, p) {
                Some((_, s)) => Ok(s.forecast(horizon)),
                None => Ok(best_holt(xs, 1.0).1.forecast(horizon)),
            }
        }
        EtsKind::Auto => {
            let mut best = best_simple(xs);
            let holt = best_holt(xs, 1.0);
            if holt.0 < best.0 {
                best = holt;
            }
            let damped = best_holt(xs, 0.9);
            if damped.0 < best.0 {
                best = damped;
            }
            if let Some(hw) = best_hw(xs, natural_period) {
                if hw.0 < best.0 {
                    best = hw;
                }
            }
            Ok(best.1.forecast(horizon))
        }
    }
}

/// A fitted smoothing state ready to forecast.
#[derive(Debug, Clone)]
enum State {
    Simple {
        level: f64,
    },
    Holt {
        level: f64,
        trend: f64,
        damp: f64,
    },
    HoltWinters {
        level: f64,
        trend: f64,
        seasonal: Vec<f64>,
        period: usize,
    },
}

impl State {
    fn forecast(&self, horizon: usize) -> Vec<f64> {
        match self {
            State::Simple { level } => vec![*level; horizon],
            State::Holt { level, trend, damp } => {
                let mut out = Vec::with_capacity(horizon);
                let mut damp_sum = 0.0;
                let mut damp_pow = 1.0;
                for _ in 0..horizon {
                    damp_pow *= damp;
                    damp_sum += damp_pow;
                    out.push(level + trend * damp_sum);
                }
                out
            }
            State::HoltWinters {
                level,
                trend,
                seasonal,
                period,
            } => (1..=horizon)
                .map(|h| {
                    let s = seasonal[(seasonal.len() + h - 1) % period];
                    level + trend * h as f64 + s
                })
                .collect(),
        }
    }
}

fn best_simple(xs: &[f64]) -> (f64, State) {
    let mut best = (f64::INFINITY, State::Simple { level: xs[0] });
    for &alpha in &GRID {
        let mut level = xs[0];
        let mut sse = 0.0;
        for &x in &xs[1..] {
            let e = x - level;
            sse += e * e;
            level += alpha * e;
        }
        if sse < best.0 {
            best = (sse, State::Simple { level });
        }
    }
    best
}

fn best_holt(xs: &[f64], damp: f64) -> (f64, State) {
    let mut best = (
        f64::INFINITY,
        State::Holt {
            level: xs[0],
            trend: 0.0,
            damp,
        },
    );
    for &alpha in &GRID {
        for &beta in &GRID {
            let mut level = xs[0];
            let mut trend = xs[1] - xs[0];
            let mut sse = 0.0;
            for &x in &xs[1..] {
                let pred = level + damp * trend;
                let e = x - pred;
                sse += e * e;
                let new_level = alpha * x + (1.0 - alpha) * pred;
                trend = beta * (new_level - level) + (1.0 - beta) * damp * trend;
                level = new_level;
            }
            if sse < best.0 {
                best = (sse, State::Holt { level, trend, damp });
            }
        }
    }
    best
}

fn best_hw(xs: &[f64], period: usize) -> Option<(f64, State)> {
    if period < 2 || xs.len() < 2 * period + 2 {
        return None;
    }
    // Initial seasonal indices from the first two full cycles.
    let init_seasonal: Vec<f64> = (0..period)
        .map(|i| {
            let a = xs[i];
            let b = xs[i + period];
            let cycle_mean: f64 = xs[..2 * period].iter().sum::<f64>() / (2 * period) as f64;
            (a + b) / 2.0 - cycle_mean
        })
        .collect();
    let mut best: Option<(f64, State)> = None;
    for &alpha in &GRID {
        for &gamma in &[0.05, 0.3, 0.6] {
            let mut level = xs[..period].iter().sum::<f64>() / period as f64;
            let mut trend = (xs[period..2 * period].iter().sum::<f64>()
                - xs[..period].iter().sum::<f64>())
                / (period * period) as f64;
            let mut seasonal = init_seasonal.clone();
            let mut sse = 0.0;
            for (t, &x) in xs.iter().enumerate() {
                let s_idx = t % period;
                let pred = level + trend + seasonal[s_idx];
                let e = x - pred;
                if t >= period {
                    sse += e * e;
                }
                let new_level = level + trend + alpha * e;
                trend += 0.1 * alpha * e / period as f64;
                seasonal[s_idx] += gamma * e;
                level = new_level;
            }
            if best.as_ref().is_none_or(|(b, _)| sse < *b) {
                best = Some((
                    sse,
                    State::HoltWinters {
                        level,
                        trend,
                        seasonal,
                        period,
                    },
                ));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};

    fn uni(values: Vec<f64>, freq: Frequency) -> MultiSeries {
        MultiSeries::from_channels("s", freq, Domain::Other, &[values]).unwrap()
    }

    #[test]
    fn simple_converges_to_recent_level() {
        let mut xs = vec![0.0; 50];
        xs.extend(vec![10.0; 50]);
        let f = Ets {
            kind: EtsKind::Simple,
        }
        .forecast(&uni(xs, Frequency::Daily), 5)
        .unwrap();
        assert!(f.iter().all(|v| (v - 10.0).abs() < 1.0), "{f:?}");
    }

    #[test]
    fn holt_follows_linear_trend() {
        let xs: Vec<f64> = (0..100).map(|t| 3.0 * t as f64).collect();
        let f = Ets {
            kind: EtsKind::Holt,
        }
        .forecast(&uni(xs, Frequency::Daily), 4)
        .unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = 3.0 * (100 + h) as f64;
            assert!((v - expect).abs() < 6.0, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn damped_forecast_grows_slower_than_holt() {
        let xs: Vec<f64> = (0..100).map(|t| 2.0 * t as f64).collect();
        let holt = Ets {
            kind: EtsKind::Holt,
        }
        .forecast(&uni(xs.clone(), Frequency::Daily), 30)
        .unwrap();
        let damped = Ets {
            kind: EtsKind::DampedHolt,
        }
        .forecast(&uni(xs, Frequency::Daily), 30)
        .unwrap();
        assert!(damped[29] < holt[29]);
    }

    #[test]
    fn holt_winters_captures_seasonality() {
        let xs: Vec<f64> = (0..96)
            .map(|t| 5.0 * (std::f64::consts::TAU * t as f64 / 12.0).sin())
            .collect();
        let f = Ets {
            kind: EtsKind::HoltWinters { period: 12 },
        }
        .forecast(&uni(xs, Frequency::Monthly), 12)
        .unwrap();
        // The forecast should continue the sinusoid (phase t = 96..108).
        for (h, v) in f.iter().enumerate() {
            let expect = 5.0 * (std::f64::consts::TAU * (96 + h) as f64 / 12.0).sin();
            assert!((v - expect).abs() < 2.0, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn hw_falls_back_without_enough_cycles() {
        let xs: Vec<f64> = (0..10).map(|t| t as f64).collect();
        let f = Ets {
            kind: EtsKind::HoltWinters { period: 12 },
        }
        .forecast(&uni(xs, Frequency::Monthly), 3)
        .unwrap();
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn auto_runs_and_is_finite() {
        let xs: Vec<f64> = (0..120)
            .map(|t| 0.5 * t as f64 + 3.0 * (t as f64 / 7.0).sin())
            .collect();
        let f = Ets::auto()
            .forecast(&uni(xs, Frequency::Daily), 14)
            .unwrap();
        assert_eq!(f.len(), 14);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn too_short_errors() {
        assert!(Ets::auto()
            .forecast(&uni(vec![1.0, 2.0], Frequency::Daily), 2)
            .is_err());
    }
}

//! The Theta method (Assimakopoulos & Nikolopoulos 2000), the winner of the
//! M3 competition and a standard statistical baseline.
//!
//! The classical two-line variant: decompose the series into theta-lines
//! with θ = 0 (the linear regression line, pure trend) and θ = 2 (double
//! curvature, extrapolated by simple exponential smoothing), and average
//! the two extrapolations. Seasonal series are first additively
//! seasonally adjusted and re-seasonalized afterwards.

use crate::{ModelError, Result, StatForecaster};
use tfb_data::MultiSeries;
use tfb_math::stats::mean;

/// Theta forecaster; applies per channel to multivariate histories.
#[derive(Debug, Clone, Copy, Default)]
pub struct Theta;

impl StatForecaster for Theta {
    fn name(&self) -> &'static str {
        "Theta"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>> {
        let dim = history.dim();
        let period = history.frequency.default_period();
        let mut per_channel = Vec::with_capacity(dim);
        for c in 0..dim {
            let xs = history.channel(c);
            per_channel.push(theta_forecast(&xs, period, horizon)?);
        }
        Ok(crate::interleave_channels(&per_channel))
    }
}

/// Classical theta forecast of one channel.
pub fn theta_forecast(xs: &[f64], period: usize, horizon: usize) -> Result<Vec<f64>> {
    if xs.len() < 4 {
        return Err(ModelError::InsufficientData("theta needs >= 4 points"));
    }
    // Seasonal adjustment by per-phase means when at least two full cycles
    // of a real period are available.
    let (adjusted, seasonal) = if period >= 2 && xs.len() >= 2 * period {
        let mut idx = vec![0.0; period];
        let mut counts = vec![0usize; period];
        let overall = mean(xs);
        for (t, &x) in xs.iter().enumerate() {
            idx[t % period] += x;
            counts[t % period] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            idx[i] = idx[i] / *c as f64 - overall;
        }
        let adj: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(t, &x)| x - idx[t % period])
            .collect();
        (adj, Some(idx))
    } else {
        (xs.to_vec(), None)
    };
    let n = adjusted.len();
    // Theta-0 line: OLS regression on time.
    let tbar = (n as f64 - 1.0) / 2.0;
    let ybar = mean(&adjusted);
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, &y) in adjusted.iter().enumerate() {
        num += (t as f64 - tbar) * (y - ybar);
        den += (t as f64 - tbar) * (t as f64 - tbar);
    }
    let slope = if den > 1e-300 { num / den } else { 0.0 };
    let intercept = ybar - slope * tbar;
    // Theta-2 line: 2 * X - theta0, extrapolated by SES with optimized alpha.
    let theta2: Vec<f64> = adjusted
        .iter()
        .enumerate()
        .map(|(t, &y)| 2.0 * y - (intercept + slope * t as f64))
        .collect();
    let ses_level = best_ses_level(&theta2);
    // Combine: average of the linear extrapolation and the SES flat line.
    let mut out = Vec::with_capacity(horizon);
    for h in 1..=horizon {
        let line = intercept + slope * (n - 1 + h) as f64;
        let mut v = 0.5 * (line + ses_level);
        if let Some(idx) = &seasonal {
            v += idx[(n + h - 1) % period];
        }
        out.push(v);
    }
    Ok(out)
}

fn best_ses_level(xs: &[f64]) -> f64 {
    let mut best = (f64::INFINITY, xs[0]);
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut level = xs[0];
        let mut sse = 0.0;
        for &x in &xs[1..] {
            let e = x - level;
            sse += e * e;
            level += alpha * e;
        }
        if sse < best.0 {
            best = (sse, level);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};

    fn uni(values: Vec<f64>, freq: Frequency) -> MultiSeries {
        MultiSeries::from_channels("s", freq, Domain::Other, &[values]).unwrap()
    }

    #[test]
    fn theta_tracks_linear_trend() {
        let xs: Vec<f64> = (0..100).map(|t| 1.5 * t as f64 + 3.0).collect();
        let f = Theta.forecast(&uni(xs, Frequency::Yearly), 5).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = 1.5 * (100 + h) as f64 + 3.0;
            // Theta halves the trend contribution of the SES line, so allow
            // a modest bias but require the right direction and magnitude.
            assert!((v - expect).abs() < 10.0, "h={h}: {v} vs {expect}");
        }
        assert!(f[4] > f[0]);
    }

    #[test]
    fn theta_handles_seasonality() {
        let xs: Vec<f64> = (0..96)
            .map(|t| 10.0 + 4.0 * (std::f64::consts::TAU * t as f64 / 12.0).sin())
            .collect();
        let f = theta_forecast(&xs, 12, 12).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = 10.0 + 4.0 * (std::f64::consts::TAU * (96 + h) as f64 / 12.0).sin();
            assert!((v - expect).abs() < 1.5, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let f = theta_forecast(&[5.0; 50], 1, 4).unwrap();
        for v in f {
            assert!((v - 5.0).abs() < 1e-6);
        }
    }

    #[test]
    fn too_short_errors() {
        assert!(theta_forecast(&[1.0, 2.0], 1, 2).is_err());
    }

    #[test]
    fn multichannel_shape() {
        let s = MultiSeries::from_channels(
            "m",
            Frequency::Monthly,
            Domain::Economic,
            &[(0..60).map(|t| t as f64).collect(), vec![2.0; 60]],
        )
        .unwrap();
        let f = Theta.forecast(&s, 6).unwrap();
        assert_eq!(f.len(), 12);
    }
}

//! k-nearest-neighbour forecasting: find the `k` historical look-back
//! windows closest (Euclidean, after per-window centering) to the query
//! window and average their continuations. A classic pattern-matching
//! baseline that is surprisingly strong on strongly periodic data.

use crate::tabular::pooled_lag_samples;
use crate::{ModelError, Result, WindowForecaster};
use tfb_data::MultiSeries;

/// KNN window forecaster.
#[derive(Debug, Clone)]
pub struct Knn {
    lookback: usize,
    horizon: usize,
    /// Number of neighbours.
    pub k: usize,
    /// Center windows before matching (makes matching level-invariant and
    /// adds the query level back to the forecast).
    pub center: bool,
    /// Training sample budget.
    pub max_samples: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<Vec<f64>>,
}

impl Knn {
    /// Creates an untrained KNN model.
    pub fn new(lookback: usize, horizon: usize) -> Knn {
        Knn {
            lookback,
            horizon,
            k: 5,
            center: true,
            max_samples: 10_000,
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

impl WindowForecaster for Knn {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn train(&mut self, train: &MultiSeries) -> Result<()> {
        let (xs, ys) = pooled_lag_samples(train, self.lookback, self.horizon, self.max_samples)?;
        self.xs = xs;
        self.ys = ys;
        Ok(())
    }

    fn predict(&self, window: &[f64], dim: usize) -> Result<Vec<f64>> {
        if self.xs.is_empty() {
            return Err(ModelError::NotTrained);
        }
        let channels = crate::window_channels(window, dim);
        let mut per_channel = Vec::with_capacity(dim);
        for ch in &channels {
            if ch.len() != self.lookback {
                return Err(ModelError::InvalidParameter("window length != lookback"));
            }
            let q_mean = if self.center { mean(ch) } else { 0.0 };
            // Distances to every stored window.
            let mut dists: Vec<(f64, usize)> = self
                .xs
                .iter()
                .enumerate()
                .map(|(i, cand)| {
                    let c_mean = if self.center { mean(cand) } else { 0.0 };
                    let d: f64 = ch
                        .iter()
                        .zip(cand)
                        .map(|(a, b)| {
                            let e = (a - q_mean) - (b - c_mean);
                            e * e
                        })
                        .sum();
                    (d, i)
                })
                .collect();
            let k = self.k.min(dists.len());
            dists.select_nth_unstable_by(k - 1, |a, b| {
                a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut f = vec![0.0; self.horizon];
            for &(_, i) in &dists[..k] {
                let c_mean = if self.center { mean(&self.xs[i]) } else { 0.0 };
                for (h, v) in f.iter_mut().enumerate() {
                    *v += self.ys[i][h] - c_mean;
                }
            }
            for v in f.iter_mut() {
                *v = *v / k as f64 + q_mean;
            }
            per_channel.push(f);
        }
        Ok(crate::interleave_channels(&per_channel))
    }

    fn parameter_count(&self) -> usize {
        self.xs.len() * (self.lookback + self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};

    fn series(values: Vec<f64>) -> MultiSeries {
        MultiSeries::from_channels("s", Frequency::Daily, Domain::Other, &[values]).unwrap()
    }

    #[test]
    fn knn_continues_a_periodic_pattern() {
        let xs: Vec<f64> = (0..300)
            .map(|t| (std::f64::consts::TAU * t as f64 / 10.0).sin())
            .collect();
        let mut m = Knn::new(20, 5);
        m.train(&series(xs.clone())).unwrap();
        let window = xs[300 - 20..].to_vec();
        let f = m.predict(&window, 1).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = (std::f64::consts::TAU * (300 + h) as f64 / 10.0).sin();
            assert!((v - expect).abs() < 0.15, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn centering_transfers_to_new_levels() {
        // Train at level ~0, query at level 100: centered KNN still works.
        let xs: Vec<f64> = (0..300)
            .map(|t| (std::f64::consts::TAU * t as f64 / 10.0).sin())
            .collect();
        let mut m = Knn::new(20, 3);
        m.train(&series(xs.clone())).unwrap();
        let window: Vec<f64> = xs[300 - 20..].iter().map(|v| v + 100.0).collect();
        let f = m.predict(&window, 1).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = 100.0 + (std::f64::consts::TAU * (300 + h) as f64 / 10.0).sin();
            assert!((v - expect).abs() < 0.3, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn k_one_returns_exact_match_continuation() {
        let xs: Vec<f64> = (0..60).map(|t| t as f64).collect();
        let mut m = Knn::new(5, 2);
        m.k = 1;
        m.center = false;
        m.train(&series(xs)).unwrap();
        // Query an exact training window: 10..15 continues with 15, 16.
        let f = m.predict(&[10.0, 11.0, 12.0, 13.0, 14.0], 1).unwrap();
        assert_eq!(f, vec![15.0, 16.0]);
    }

    #[test]
    fn untrained_errors() {
        let m = Knn::new(4, 2);
        assert!(matches!(
            m.predict(&[0.0; 4], 1),
            Err(ModelError::NotTrained)
        ));
    }

    #[test]
    fn wrong_window_length_errors() {
        let xs: Vec<f64> = (0..50).map(|t| t as f64).collect();
        let mut m = Knn::new(5, 2);
        m.train(&series(xs)).unwrap();
        assert!(m.predict(&[1.0; 4], 1).is_err());
    }
}

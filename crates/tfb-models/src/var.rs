//! Vector autoregression, VAR(p) — the classical multivariate statistical
//! baseline the paper shows beating recent deep models on NASDAQ and ILI
//! (Table 1 / Issue 2).
//!
//! Each equation is estimated by OLS on the stacked lag design; forecasting
//! iterates the fitted recursion. The lag order can be fixed or selected by
//! AIC. High-dimensional datasets are handled by ridge-regularizing the
//! shared Gram matrix.

use crate::{ModelError, Result, StatForecaster};
use tfb_data::MultiSeries;
use tfb_math::matrix::Matrix;

/// VAR(p) forecaster.
#[derive(Debug, Clone, Copy)]
pub struct Var {
    /// Lag order; 0 selects automatically by AIC over `1..=4`.
    pub order: usize,
    /// Ridge penalty applied to the lag design (stabilizes wide datasets).
    pub ridge: f64,
}

impl Var {
    /// Fixed lag order with a light ridge.
    pub fn new(order: usize) -> Var {
        Var { order, ridge: 1e-4 }
    }

    /// AIC-selected order.
    pub fn auto() -> Var {
        Var {
            order: 0,
            ridge: 1e-4,
        }
    }
}

impl StatForecaster for Var {
    fn name(&self) -> &'static str {
        "VAR"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>> {
        let fitted = if self.order == 0 {
            fit_auto(history, self.ridge)?
        } else {
            fit(history, self.order, self.ridge)?
        };
        Ok(fitted.forecast(history, horizon))
    }
}

/// Fitted VAR coefficients: `x_t = c + A_1 x_{t-1} + ... + A_p x_{t-p}`.
#[derive(Debug, Clone)]
pub struct FittedVar {
    /// Lag order.
    pub order: usize,
    /// Intercepts, one per channel.
    pub intercept: Vec<f64>,
    /// Coefficient matrices, `coefs[l]` is the dim x dim matrix for lag l+1.
    pub coefs: Vec<Matrix>,
    /// Mean squared one-step residual (for AIC).
    pub sigma2: f64,
}

/// Estimates VAR(p) by ridge-regularized least squares on all equations at
/// once (they share the same design matrix).
pub fn fit(history: &MultiSeries, p: usize, ridge: f64) -> Result<FittedVar> {
    let dim = history.dim();
    let n = history.len();
    if p == 0 {
        return Err(ModelError::InvalidParameter("VAR order must be >= 1"));
    }
    let rows = n.saturating_sub(p);
    let cols = dim * p + 1;
    if rows < cols.min(rows + 1) + 2 || rows <= p {
        return Err(ModelError::InsufficientData("VAR history too short"));
    }
    // Design: [1, x_{t-1}, ..., x_{t-p}] for t = p..n.
    let mut x = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let t = r + p;
        x[(r, 0)] = 1.0;
        for l in 0..p {
            let row = history.row(t - 1 - l);
            for c in 0..dim {
                x[(r, 1 + l * dim + c)] = row[c];
            }
        }
    }
    // Shared normal equations with ridge (intercept unpenalized).
    let xt = x.transpose();
    let mut xtx = xt
        .matmul(&x)
        .map_err(|e| ModelError::Numerical(e.to_string()))?;
    for i in 1..cols {
        xtx[(i, i)] += ridge.max(1e-10) * rows as f64;
    }
    let lu = xtx
        .lu()
        .map_err(|_| ModelError::Numerical("singular VAR design".into()))?;
    let mut intercept = vec![0.0; dim];
    let mut coefs = vec![Matrix::zeros(dim, dim); p];
    let mut total_rss = 0.0;
    for eq in 0..dim {
        let y: Vec<f64> = (0..rows).map(|r| history.at(r + p, eq)).collect();
        let xty = xt
            .matvec(&y)
            .map_err(|e| ModelError::Numerical(e.to_string()))?;
        let beta = lu
            .solve(&xty)
            .map_err(|_| ModelError::Numerical("VAR solve failed".into()))?;
        intercept[eq] = beta[0];
        for l in 0..p {
            for c in 0..dim {
                coefs[l][(eq, c)] = beta[1 + l * dim + c];
            }
        }
        // Residuals for sigma2.
        for r in 0..rows {
            let pred: f64 = x.row(r).iter().zip(&beta).map(|(a, b)| a * b).sum();
            let e = y[r] - pred;
            total_rss += e * e;
        }
    }
    Ok(FittedVar {
        order: p,
        intercept,
        coefs,
        sigma2: total_rss / (rows * dim) as f64,
    })
}

fn fit_auto(history: &MultiSeries, ridge: f64) -> Result<FittedVar> {
    let mut best: Option<(f64, FittedVar)> = None;
    for p in 1..=4usize {
        if let Ok(f) = fit(history, p, ridge) {
            let n = (history.len() - p) as f64;
            let k = (history.dim() * p + 1) as f64;
            let aic = n * f.sigma2.max(1e-300).ln() + 2.0 * k;
            if best.as_ref().is_none_or(|(b, _)| aic < *b) {
                best = Some((aic, f));
            }
        }
    }
    best.map(|(_, f)| f)
        .ok_or(ModelError::InsufficientData("no VAR order fit"))
}

impl FittedVar {
    /// Iterates the recursion `horizon` steps beyond the history.
    pub fn forecast(&self, history: &MultiSeries, horizon: usize) -> Vec<f64> {
        let dim = history.dim();
        let n = history.len();
        // Rolling buffer of the last `order` rows, most recent first.
        let mut recent: Vec<Vec<f64>> = (0..self.order)
            .map(|l| history.row(n - 1 - l).to_vec())
            .collect();
        let mut out = Vec::with_capacity(horizon * dim);
        for _ in 0..horizon {
            let mut next = self.intercept.clone();
            for (l, a) in self.coefs.iter().enumerate() {
                for eq in 0..dim {
                    let row = a.row(eq);
                    let mut acc = 0.0;
                    for c in 0..dim {
                        acc += row[c] * recent[l][c];
                    }
                    next[eq] += acc;
                }
            }
            for v in next.iter_mut() {
                if !v.is_finite() {
                    *v = 0.0;
                }
            }
            out.extend_from_slice(&next);
            recent.rotate_right(1);
            recent[0] = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tfb_data::{Domain, Frequency};

    /// A 2-channel VAR(1) process with known coefficients.
    fn var1_process(n: usize, seed: u64) -> MultiSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = vec![0.0; 2];
        let mut ch0 = Vec::with_capacity(n);
        let mut ch1 = Vec::with_capacity(n);
        for _ in 0..n {
            let e0: f64 = rng.gen_range(-0.2..0.2);
            let e1: f64 = rng.gen_range(-0.2..0.2);
            let next0 = 0.6 * a[0] + 0.2 * a[1] + e0;
            let next1 = 0.1 * a[0] + 0.5 * a[1] + e1;
            a = vec![next0, next1];
            ch0.push(next0);
            ch1.push(next1);
        }
        MultiSeries::from_channels("v", Frequency::Daily, Domain::Stock, &[ch0, ch1]).unwrap()
    }

    #[test]
    fn recovers_var1_coefficients() {
        let s = var1_process(2000, 1);
        let f = fit(&s, 1, 1e-6).unwrap();
        assert!(
            (f.coefs[0][(0, 0)] - 0.6).abs() < 0.08,
            "{}",
            f.coefs[0][(0, 0)]
        );
        assert!((f.coefs[0][(0, 1)] - 0.2).abs() < 0.08);
        assert!((f.coefs[0][(1, 0)] - 0.1).abs() < 0.08);
        assert!((f.coefs[0][(1, 1)] - 0.5).abs() < 0.08);
    }

    #[test]
    fn forecast_shape_and_finiteness() {
        let s = var1_process(300, 2);
        let f = Var::new(2).forecast(&s, 10).unwrap();
        assert_eq!(f.len(), 20);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn auto_picks_an_order() {
        let s = var1_process(400, 3);
        let f = Var::auto().forecast(&s, 5).unwrap();
        assert_eq!(f.len(), 10);
    }

    #[test]
    fn var_beats_naive_on_cross_coupled_process() {
        // On a genuinely cross-coupled process, VAR one-step forecasts
        // should beat repeating the last value.
        let s = var1_process(1200, 4);
        let train = s.slice_rows(0..1000);
        let mut var_err = 0.0;
        let mut naive_err = 0.0;
        for t in 1000..1100 {
            let hist = s.slice_rows(0..t);
            let f = Var::new(1).forecast(&hist, 1).unwrap();
            let truth = s.row(t);
            let last = hist.row(hist.len() - 1);
            for c in 0..2 {
                var_err += (f[c] - truth[c]).powi(2);
                naive_err += (last[c] - truth[c]).powi(2);
            }
        }
        let _ = train;
        assert!(var_err < naive_err, "{var_err} vs {naive_err}");
    }

    #[test]
    fn too_short_history_errors() {
        let s = var1_process(4, 5);
        assert!(Var::new(3).forecast(&s, 2).is_err());
    }

    #[test]
    fn order_zero_is_invalid() {
        let s = var1_process(100, 6);
        assert!(fit(&s, 0, 1e-4).is_err());
    }
}

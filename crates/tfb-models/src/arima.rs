//! ARIMA(p, d, q) via the Hannan–Rissanen two-stage estimator.
//!
//! Stage 1 fits a long autoregression to estimate the innovation sequence;
//! stage 2 regresses the differenced series on its own lags and the lagged
//! innovations. Forecasts iterate the fitted recursion with future
//! innovations set to zero and are integrated back through the `d`
//! differences. Multivariate histories are forecast channel by channel.

use crate::{ModelError, Result, StatForecaster};
use tfb_data::MultiSeries;
use tfb_math::matrix::Matrix;
use tfb_math::regression::ols;

/// ARIMA forecaster. Construct with explicit orders via [`Arima::new`] or
/// let a small AIC grid search pick them with [`Arima::auto`].
#[derive(Debug, Clone, Copy)]
pub struct Arima {
    /// AR order `p` (ignored in auto mode).
    pub p: usize,
    /// Differencing order `d` (ignored in auto mode).
    pub d: usize,
    /// MA order `q` (ignored in auto mode).
    pub q: usize,
    auto: bool,
}

impl Arima {
    /// Fixed orders.
    pub fn new(p: usize, d: usize, q: usize) -> Arima {
        Arima {
            p,
            d,
            q,
            auto: false,
        }
    }

    /// AIC-selected orders over `p, q ∈ {0, 1, 2}`, `d ∈ {0, 1}`.
    pub fn auto() -> Arima {
        Arima {
            p: 2,
            d: 1,
            q: 1,
            auto: true,
        }
    }
}

impl StatForecaster for Arima {
    fn name(&self) -> &'static str {
        "ARIMA"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>> {
        let dim = history.dim();
        let mut per_channel = Vec::with_capacity(dim);
        for c in 0..dim {
            let xs = history.channel(c);
            let f = if self.auto {
                forecast_auto(&xs, horizon)?
            } else {
                forecast_fixed(&xs, self.p, self.d, self.q, horizon)?
            };
            per_channel.push(f);
        }
        Ok(crate::interleave_channels(&per_channel))
    }
}

/// Fitted ARIMA parameters for one channel.
#[derive(Debug, Clone)]
struct FittedArima {
    p: usize,
    d: usize,
    q: usize,
    intercept: f64,
    phi: Vec<f64>,
    theta: Vec<f64>,
    /// Differenced series used for fitting.
    w: Vec<f64>,
    /// Innovation estimates aligned with `w`.
    eps: Vec<f64>,
    /// In-sample residual variance (for AIC).
    sigma2: f64,
}

fn difference_keep_tail(xs: &[f64], d: usize) -> (Vec<f64>, Vec<f64>) {
    // Returns the differenced series plus the `d` values needed to
    // integrate forecasts back (the last value at each differencing level).
    let mut cur = xs.to_vec();
    let mut tails = Vec::with_capacity(d);
    for _ in 0..d {
        tails.push(*cur.last().expect("nonempty"));
        cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
    }
    (cur, tails)
}

fn integrate(mut forecast: Vec<f64>, tails: &[f64]) -> Vec<f64> {
    // Undo the differences, innermost first.
    for &tail in tails.iter().rev() {
        let mut level = tail;
        for f in forecast.iter_mut() {
            level += *f;
            *f = level;
        }
    }
    forecast
}

fn fit(xs: &[f64], p: usize, d: usize, q: usize) -> Result<FittedArima> {
    if xs.len() < p.max(q) * 3 + d + 12 {
        return Err(ModelError::InsufficientData("arima history too short"));
    }
    let (w, _) = difference_keep_tail(xs, d);
    let n = w.len();
    // Stage 1: long AR for innovation estimates.
    let m = (p.max(q) + 4).min(n / 4).max(1);
    let eps = {
        let rows = n - m;
        let mut x = Matrix::zeros(rows, m);
        let mut y = Vec::with_capacity(rows);
        for r in 0..rows {
            let t = r + m;
            y.push(w[t]);
            for i in 0..m {
                x[(r, i)] = w[t - 1 - i];
            }
        }
        let long_ar =
            ols(&x, &y, true).map_err(|e| ModelError::Numerical(format!("stage-1 AR: {e}")))?;
        // Innovations: zero for the first m points, residuals afterwards.
        let mut eps = vec![0.0; m];
        eps.extend_from_slice(&long_ar.residuals);
        eps
    };
    // Stage 2: regress w_t on p lags of w and q lags of eps.
    let start = p.max(q);
    let rows = n - start;
    if rows < p + q + 3 {
        return Err(ModelError::InsufficientData(
            "arima stage-2 underdetermined",
        ));
    }
    let cols = p + q;
    let (intercept, phi, theta, sigma2) = if cols == 0 {
        // ARIMA(0,d,0): white noise around a mean.
        let mean = w.iter().sum::<f64>() / n as f64;
        let var = w.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        (mean, Vec::new(), Vec::new(), var)
    } else {
        let mut x = Matrix::zeros(rows, cols);
        let mut y = Vec::with_capacity(rows);
        for r in 0..rows {
            let t = r + start;
            y.push(w[t]);
            for i in 0..p {
                x[(r, i)] = w[t - 1 - i];
            }
            for j in 0..q {
                x[(r, p + j)] = eps[t - 1 - j];
            }
        }
        let fit2 = ols(&x, &y, true).map_err(|e| ModelError::Numerical(format!("stage-2: {e}")))?;
        let sigma2 = fit2.rss / rows as f64;
        let phi = fit2.coefficients[1..=p].to_vec();
        let theta = fit2.coefficients[p + 1..].to_vec();
        (fit2.coefficients[0], phi, theta, sigma2)
    };
    Ok(FittedArima {
        p,
        d,
        q,
        intercept,
        phi,
        theta,
        w,
        eps,
        sigma2,
    })
}

impl FittedArima {
    fn aic(&self) -> f64 {
        let n = self.w.len() as f64;
        let k = (self.p + self.q + 1) as f64;
        n * self.sigma2.max(1e-300).ln() + 2.0 * k
    }

    fn forecast(&self, tails: &[f64], horizon: usize) -> Vec<f64> {
        // Iterate the recursion with future innovations zero.
        let mut w_ext = self.w.clone();
        let mut eps_ext = self.eps.clone();
        for _ in 0..horizon {
            let t = w_ext.len();
            let mut v = self.intercept;
            for (i, &ph) in self.phi.iter().enumerate() {
                if t > i {
                    v += ph * w_ext[t - 1 - i];
                }
            }
            for (j, &th) in self.theta.iter().enumerate() {
                if t > j {
                    v += th * eps_ext[t - 1 - j];
                }
            }
            // Guard against explosive fits on pathological inputs.
            if !v.is_finite() {
                v = self.intercept;
            }
            w_ext.push(v);
            eps_ext.push(0.0);
        }
        integrate(w_ext[self.w.len()..].to_vec(), tails)
    }
}

fn forecast_fixed(xs: &[f64], p: usize, d: usize, q: usize, horizon: usize) -> Result<Vec<f64>> {
    let fitted = fit(xs, p, d, q)?;
    let (_, tails) = difference_keep_tail(xs, d);
    Ok(fitted.forecast(&tails, horizon))
}

fn forecast_auto(xs: &[f64], horizon: usize) -> Result<Vec<f64>> {
    let mut best: Option<(f64, FittedArima)> = None;
    for d in 0..=1usize {
        for p in 0..=2usize {
            for q in 0..=2usize {
                if p == 0 && q == 0 && d == 0 {
                    continue;
                }
                if let Ok(f) = fit(xs, p, d, q) {
                    let aic = f.aic();
                    if best.as_ref().is_none_or(|(b, _)| aic < *b) {
                        best = Some((aic, f));
                    }
                }
            }
        }
    }
    let (_, fitted) = best.ok_or(ModelError::InsufficientData("no ARIMA candidate fit"))?;
    let (_, tails) = difference_keep_tail(xs, fitted.d);
    Ok(fitted.forecast(&tails, horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tfb_data::{Domain, Frequency};

    fn uni(values: Vec<f64>) -> MultiSeries {
        MultiSeries::from_channels("s", Frequency::Daily, Domain::Other, &[values]).unwrap()
    }

    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = vec![0.0; n];
        for t in 1..n {
            xs[t] = phi * xs[t - 1] + rng.gen_range(-0.5..0.5);
        }
        xs
    }

    #[test]
    fn ar1_forecast_decays_towards_mean() {
        let xs = ar1(400, 0.8, 1);
        let last = *xs.last().unwrap();
        let f = Arima::new(1, 0, 0).forecast(&uni(xs), 20).unwrap();
        // With a positive last value, AR(1) forecasts decay monotonically.
        assert!(f[19].abs() < last.abs().max(0.5) + 0.5);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn integrated_model_tracks_linear_trend() {
        let xs: Vec<f64> = (0..200).map(|t| 2.0 * t as f64).collect();
        let f = Arima::new(0, 1, 0).forecast(&uni(xs), 5).unwrap();
        // After first differencing, w == 2 identically, so forecasts
        // continue the line exactly.
        for (h, v) in f.iter().enumerate() {
            assert!((v - (398.0 + 2.0 * (h + 1) as f64)).abs() < 1e-6, "{v}");
        }
    }

    #[test]
    fn forecast_has_right_shape_multichannel() {
        let s = MultiSeries::from_channels(
            "m",
            Frequency::Daily,
            Domain::Other,
            &[ar1(150, 0.5, 2), ar1(150, 0.3, 3)],
        )
        .unwrap();
        let f = Arima::new(1, 0, 1).forecast(&s, 7).unwrap();
        assert_eq!(f.len(), 14);
    }

    #[test]
    fn auto_selects_and_forecasts() {
        let xs = ar1(300, 0.7, 4);
        let f = Arima::auto().forecast(&uni(xs), 10).unwrap();
        assert_eq!(f.len(), 10);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn too_short_history_errors() {
        let xs = vec![1.0; 10];
        assert!(Arima::new(2, 1, 2).forecast(&uni(xs), 5).is_err());
    }

    #[test]
    fn ma_term_improves_ma_process_fit() {
        // MA(1) process: x_t = e_t + 0.7 e_{t-1}.
        let mut rng = StdRng::seed_from_u64(5);
        let es: Vec<f64> = (0..500).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xs: Vec<f64> = (1..500).map(|t| es[t] + 0.7 * es[t - 1]).collect();
        let with_ma = fit(&xs, 0, 0, 1).unwrap();
        let without = fit(&xs, 0, 0, 0).unwrap();
        assert!(with_ma.sigma2 < without.sigma2);
        assert!((with_ma.theta[0] - 0.7).abs() < 0.2, "{}", with_ma.theta[0]);
    }
}

//! CART regression trees and Random Forests (bagging + feature
//! subsampling), multi-output: each leaf stores the mean target vector, so
//! one forest forecasts all horizon steps directly.

use crate::tabular::pooled_lag_samples;
use crate::{ModelError, Result, WindowForecaster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tfb_data::MultiSeries;

/// One node of a regression tree, stored in an arena.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A multi-output CART regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// Hyper-parameters shared by trees, forests and boosting.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_split: usize,
    /// Number of candidate features per split (0 = all).
    pub feature_sample: usize,
    /// Candidate thresholds per feature.
    pub n_thresholds: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_split: 8,
            feature_sample: 0,
            n_thresholds: 8,
        }
    }
}

impl RegressionTree {
    /// Fits a tree on rows `indices` of the sample set.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[Vec<f64>],
        indices: &[usize],
        params: TreeParams,
        rng: &mut StdRng,
    ) -> RegressionTree {
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.grow(xs, ys, indices, params, 0, rng);
        tree
    }

    fn grow(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[Vec<f64>],
        indices: &[usize],
        params: TreeParams,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let out_dim = ys[0].len();
        let mean = mean_target(ys, indices, out_dim);
        if depth >= params.max_depth || indices.len() < params.min_split {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let n_features = xs[0].len();
        let k = if params.feature_sample == 0 {
            n_features
        } else {
            params.feature_sample.min(n_features)
        };
        // Candidate features (sampled without replacement when k < all).
        let features: Vec<usize> = if k == n_features {
            (0..n_features).collect()
        } else {
            let mut pool: Vec<usize> = (0..n_features).collect();
            for i in 0..k {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            pool.truncate(k);
            pool
        };
        let parent_score = sse(ys, indices, &mean);
        let mut best: Option<(f64, usize, f64)> = None;
        for &f in &features {
            let (lo, hi) = indices
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &i| {
                    (lo.min(xs[i][f]), hi.max(xs[i][f]))
                });
            if hi - lo < 1e-12 {
                continue;
            }
            for t in 0..params.n_thresholds {
                let thr = lo + (hi - lo) * (t as f64 + 0.5) / params.n_thresholds as f64;
                let (ls, rs): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| xs[i][f] <= thr);
                if ls.len() < 2 || rs.len() < 2 {
                    continue;
                }
                let lm = mean_target(ys, &ls, out_dim);
                let rm = mean_target(ys, &rs, out_dim);
                let score = sse(ys, &ls, &lm) + sse(ys, &rs, &rm);
                if best
                    .as_ref()
                    .map_or(score < parent_score, |(b, _, _)| score < *b)
                {
                    best = Some((score, f, thr));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        let (ls, rs): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| xs[i][feature] <= threshold);
        // Reserve this node's slot before recursing.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { value: Vec::new() });
        let left = self.grow(xs, ys, &ls, params, depth + 1, rng);
        let right = self.grow(xs, ys, &rs, params, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Predicts the target vector for one feature row.
    pub fn predict(&self, features: &[f64]) -> &[f64] {
        // Root is always node 0 (grow() pushes it first).
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (reported as the parameter count).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

fn mean_target(ys: &[Vec<f64>], indices: &[usize], out_dim: usize) -> Vec<f64> {
    let mut m = vec![0.0; out_dim];
    for &i in indices {
        for (d, v) in m.iter_mut().enumerate() {
            *v += ys[i][d];
        }
    }
    let n = indices.len().max(1) as f64;
    for v in m.iter_mut() {
        *v /= n;
    }
    m
}

fn sse(ys: &[Vec<f64>], indices: &[usize], mean: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &i in indices {
        for (d, &m) in mean.iter().enumerate() {
            let e = ys[i][d] - m;
            acc += e * e;
        }
    }
    acc
}

/// Random forest of multi-output regression trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    lookback: usize,
    horizon: usize,
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree hyper-parameters.
    pub params: TreeParams,
    /// Training sample budget.
    pub max_samples: usize,
    /// RNG seed.
    pub seed: u64,
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Creates an untrained forest with TFB's default configuration.
    pub fn new(lookback: usize, horizon: usize) -> RandomForest {
        RandomForest {
            lookback,
            horizon,
            n_trees: 30,
            params: TreeParams {
                feature_sample: (lookback / 3).max(2),
                ..TreeParams::default()
            },
            max_samples: 8_000,
            seed: 7,
            trees: Vec::new(),
        }
    }
}

impl WindowForecaster for RandomForest {
    fn name(&self) -> &'static str {
        "RF"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn train(&mut self, train: &MultiSeries) -> Result<()> {
        let (xs, ys) = pooled_lag_samples(train, self.lookback, self.horizon, self.max_samples)?;
        if xs.len() < self.params.min_split {
            return Err(ModelError::InsufficientData("too few samples for a forest"));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees.clear();
        for _ in 0..self.n_trees {
            // Bootstrap sample.
            let indices: Vec<usize> = (0..xs.len()).map(|_| rng.gen_range(0..xs.len())).collect();
            self.trees.push(RegressionTree::fit(
                &xs,
                &ys,
                &indices,
                self.params,
                &mut rng,
            ));
        }
        Ok(())
    }

    fn predict(&self, window: &[f64], dim: usize) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(ModelError::NotTrained);
        }
        let channels = crate::window_channels(window, dim);
        let mut per_channel = Vec::with_capacity(dim);
        for ch in &channels {
            let mut acc = vec![0.0; self.horizon];
            for tree in &self.trees {
                for (a, v) in acc.iter_mut().zip(tree.predict(ch)) {
                    *a += v;
                }
            }
            for a in acc.iter_mut() {
                *a /= self.trees.len() as f64;
            }
            per_channel.push(acc);
        }
        Ok(crate::interleave_channels(&per_channel))
    }

    fn parameter_count(&self) -> usize {
        self.trees.iter().map(|t| t.node_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};

    fn series(values: Vec<f64>) -> MultiSeries {
        MultiSeries::from_channels("s", Frequency::Daily, Domain::Other, &[values]).unwrap()
    }

    #[test]
    fn tree_splits_a_step_function() {
        // Target depends on whether feature 0 is above 0.5.
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![if i % 2 == 0 { 0.0 } else { 1.0 }, i as f64])
            .collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|f| vec![f[0] * 10.0]).collect();
        let indices: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = RegressionTree::fit(&xs, &ys, &indices, TreeParams::default(), &mut rng);
        assert!((tree.predict(&[0.0, 5.0])[0] - 0.0).abs() < 0.5);
        assert!((tree.predict(&[1.0, 5.0])[0] - 10.0).abs() < 0.5);
    }

    #[test]
    fn forest_learns_seasonal_continuation() {
        let xs: Vec<f64> = (0..400)
            .map(|t| (std::f64::consts::TAU * t as f64 / 8.0).sin())
            .collect();
        let mut m = RandomForest::new(16, 4);
        m.train(&series(xs.clone())).unwrap();
        let window = xs[400 - 16..].to_vec();
        let f = m.predict(&window, 1).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = (std::f64::consts::TAU * (400 + h) as f64 / 8.0).sin();
            assert!((v - expect).abs() < 0.4, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn forest_is_deterministic_given_seed() {
        let xs: Vec<f64> = (0..200).map(|t| ((t * 7) % 23) as f64).collect();
        let mut a = RandomForest::new(8, 2);
        let mut b = RandomForest::new(8, 2);
        a.train(&series(xs.clone())).unwrap();
        b.train(&series(xs.clone())).unwrap();
        let w = xs[192..].to_vec();
        assert_eq!(a.predict(&w, 1).unwrap(), b.predict(&w, 1).unwrap());
    }

    #[test]
    fn untrained_forest_errors() {
        let m = RandomForest::new(4, 2);
        assert!(matches!(
            m.predict(&[0.0; 4], 1),
            Err(ModelError::NotTrained)
        ));
    }

    #[test]
    fn parameter_count_grows_with_trees() {
        let xs: Vec<f64> = (0..300).map(|t| (t % 13) as f64).collect();
        let mut m = RandomForest::new(8, 2);
        m.n_trees = 5;
        m.train(&series(xs)).unwrap();
        assert!(m.parameter_count() >= 5);
    }

    #[test]
    fn leaf_only_tree_predicts_global_mean() {
        let xs = vec![vec![1.0], vec![1.0], vec![1.0]];
        let ys = vec![vec![2.0], vec![4.0], vec![6.0]];
        let mut rng = StdRng::seed_from_u64(2);
        let tree = RegressionTree::fit(&xs, &ys, &[0, 1, 2], TreeParams::default(), &mut rng);
        assert!((tree.predict(&[1.0])[0] - 4.0).abs() < 1e-9);
    }
}

//! Kalman-filter forecasting with a local linear trend state-space model.
//!
//! State `[level, slope]` evolves as a damped linear trend; observation is
//! the level plus noise. The standard predict/update recursions filter the
//! history; forecasting propagates the final state. Noise variances are
//! chosen from a small grid by one-step predictive likelihood, which is the
//! pragmatic equivalent of maximum-likelihood fitting for this 2-state
//! model.

use crate::{ModelError, Result, StatForecaster};
use tfb_data::MultiSeries;

/// Kalman-filter forecaster; applies per channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct KalmanForecaster;

impl StatForecaster for KalmanForecaster {
    fn name(&self) -> &'static str {
        "KF"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>> {
        let dim = history.dim();
        let mut per_channel = Vec::with_capacity(dim);
        for c in 0..dim {
            let xs = history.channel(c);
            per_channel.push(forecast_channel(&xs, horizon)?);
        }
        Ok(crate::interleave_channels(&per_channel))
    }
}

/// One filter pass with the given process/observation noise ratio.
/// Returns (final level, final slope, sum of squared one-step errors).
fn filter(xs: &[f64], q_level: f64, q_slope: f64, r: f64) -> (f64, f64, f64) {
    // State x = [level; slope], F = [[1, 1], [0, phi]], H = [1, 0].
    let phi = 0.98; // light damping keeps long forecasts bounded
    let mut level = xs[0];
    let mut slope = 0.0;
    // Covariance P.
    let mut p00 = 1.0;
    let mut p01 = 0.0;
    let mut p11 = 1.0;
    let mut sse = 0.0;
    for &x in &xs[1..] {
        // Predict.
        let pred_level = level + slope;
        let pred_slope = phi * slope;
        let f00 = p00 + p01 + p01 + p11 + q_level;
        let f01 = (p01 + p11) * phi;
        let f11 = phi * phi * p11 + q_slope;
        // Update with observation x.
        let innovation = x - pred_level;
        sse += innovation * innovation;
        let s = f00 + r;
        let k0 = f00 / s;
        let k1 = f01 / s;
        level = pred_level + k0 * innovation;
        slope = pred_slope + k1 * innovation;
        p00 = (1.0 - k0) * f00;
        p01 = (1.0 - k0) * f01;
        p11 = f11 - k1 * f01;
    }
    (level, slope, sse)
}

fn forecast_channel(xs: &[f64], horizon: usize) -> Result<Vec<f64>> {
    if xs.len() < 5 {
        return Err(ModelError::InsufficientData("kalman needs >= 5 points"));
    }
    // Small grid over noise ratios; observation noise fixed at 1 (scale
    // cancels in the gain).
    let mut best = (f64::INFINITY, 0.0, 0.0);
    for &q_level in &[1e-4, 1e-2, 1e-1, 1.0] {
        for &q_slope in &[1e-6, 1e-4, 1e-2] {
            let (level, slope, sse) = filter(xs, q_level, q_slope, 1.0);
            if sse < best.0 {
                best = (sse, level, slope);
            }
        }
    }
    let (_, level, slope) = best;
    let phi: f64 = 0.98;
    let mut out = Vec::with_capacity(horizon);
    let mut l = level;
    let mut s = slope;
    for _ in 0..horizon {
        l += s;
        s *= phi;
        out.push(l);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tfb_data::{Domain, Frequency};

    fn uni(values: Vec<f64>) -> MultiSeries {
        MultiSeries::from_channels("s", Frequency::Daily, Domain::Other, &[values]).unwrap()
    }

    #[test]
    fn tracks_noisy_level() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..200).map(|_| 10.0 + rng.gen_range(-0.5..0.5)).collect();
        let f = KalmanForecaster.forecast(&uni(xs), 5).unwrap();
        for v in f {
            assert!((v - 10.0).abs() < 1.0, "{v}");
        }
    }

    #[test]
    fn follows_linear_trend() {
        let xs: Vec<f64> = (0..150).map(|t| 2.0 * t as f64).collect();
        let f = KalmanForecaster.forecast(&uni(xs), 5).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = 2.0 * (150 + h) as f64;
            assert!((v - expect).abs() < 12.0, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn adapts_to_level_shift() {
        let mut xs = vec![0.0; 100];
        xs.extend(vec![20.0; 100]);
        let f = KalmanForecaster.forecast(&uni(xs), 3).unwrap();
        for v in f {
            assert!((v - 20.0).abs() < 3.0, "{v}");
        }
    }

    #[test]
    fn too_short_errors() {
        assert!(KalmanForecaster.forecast(&uni(vec![1.0, 2.0]), 2).is_err());
    }

    #[test]
    fn multichannel_shape() {
        let s = MultiSeries::from_channels(
            "m",
            Frequency::Daily,
            Domain::Other,
            &[vec![1.0; 50], (0..50).map(|t| t as f64).collect()],
        )
        .unwrap();
        let f = KalmanForecaster.forecast(&s, 4).unwrap();
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}

//! XGBoost-style gradient boosting (XGB): shallow regression trees fitted
//! to residuals with shrinkage and stochastic row subsampling. The booster
//! predicts one step ahead; multi-step forecasts iterate (IMS), matching
//! how tree boosters are typically deployed for forecasting.

use crate::forest::{RegressionTree, TreeParams};
use crate::tabular::{iterate_one_step, pooled_lag_samples};
use crate::{ModelError, Result, WindowForecaster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tfb_data::MultiSeries;

/// Gradient-boosted trees forecaster.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    lookback: usize,
    horizon: usize,
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Learning rate (shrinkage).
    pub learning_rate: f64,
    /// Row subsample fraction per round.
    pub subsample: f64,
    /// Tree shape.
    pub params: TreeParams,
    /// Training sample budget.
    pub max_samples: usize,
    /// RNG seed.
    pub seed: u64,
    base: f64,
    trees: Vec<RegressionTree>,
}

impl GradientBoosting {
    /// Creates an untrained booster with TFB's default configuration.
    pub fn new(lookback: usize, horizon: usize) -> GradientBoosting {
        GradientBoosting {
            lookback,
            horizon,
            n_rounds: 60,
            learning_rate: 0.15,
            subsample: 0.8,
            params: TreeParams {
                max_depth: 4,
                min_split: 10,
                feature_sample: (lookback / 2).max(2),
                n_thresholds: 8,
            },
            max_samples: 8_000,
            seed: 11,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    fn predict_one(&self, features: &[f64]) -> f64 {
        let mut acc = self.base;
        for tree in &self.trees {
            acc += self.learning_rate * tree.predict(features)[0];
        }
        acc
    }
}

impl WindowForecaster for GradientBoosting {
    fn name(&self) -> &'static str {
        "XGB"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn train(&mut self, train: &MultiSeries) -> Result<()> {
        // One-step targets; multi-step is iterated at prediction time.
        let (xs, ys) = pooled_lag_samples(train, self.lookback, 1, self.max_samples)?;
        let n = xs.len();
        if n < self.params.min_split {
            return Err(ModelError::InsufficientData("too few samples to boost"));
        }
        let targets: Vec<f64> = ys.iter().map(|t| t[0]).collect();
        self.base = targets.iter().sum::<f64>() / n as f64;
        let mut residuals: Vec<f64> = targets.iter().map(|t| t - self.base).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees.clear();
        let sample_size = ((n as f64 * self.subsample) as usize).clamp(2, n);
        for _ in 0..self.n_rounds {
            // Stochastic row subsample without replacement.
            let mut pool: Vec<usize> = (0..n).collect();
            for i in 0..sample_size {
                let j = rng.gen_range(i..n);
                pool.swap(i, j);
            }
            let indices = &pool[..sample_size];
            let res_targets: Vec<Vec<f64>> = residuals.iter().map(|&r| vec![r]).collect();
            let tree = RegressionTree::fit(&xs, &res_targets, indices, self.params, &mut rng);
            // Update residuals on all rows.
            for (i, f) in xs.iter().enumerate() {
                residuals[i] -= self.learning_rate * tree.predict(f)[0];
            }
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, window: &[f64], dim: usize) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(ModelError::NotTrained);
        }
        let channels = crate::window_channels(window, dim);
        let mut per_channel = Vec::with_capacity(dim);
        for ch in &channels {
            per_channel.push(iterate_one_step(ch, self.horizon, |w| self.predict_one(w)));
        }
        Ok(crate::interleave_channels(&per_channel))
    }

    fn parameter_count(&self) -> usize {
        self.trees.iter().map(|t| t.node_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};

    fn series(values: Vec<f64>) -> MultiSeries {
        MultiSeries::from_channels("s", Frequency::Daily, Domain::Other, &[values]).unwrap()
    }

    #[test]
    fn boosting_reduces_training_error_over_rounds() {
        let xs: Vec<f64> = (0..300)
            .map(|t| (std::f64::consts::TAU * t as f64 / 12.0).sin() * 5.0)
            .collect();
        let mut few = GradientBoosting::new(12, 1);
        few.n_rounds = 2;
        few.train(&series(xs.clone())).unwrap();
        let mut many = GradientBoosting::new(12, 1);
        many.n_rounds = 60;
        many.train(&series(xs.clone())).unwrap();
        let err = |m: &GradientBoosting| {
            let mut acc = 0.0;
            for s in 100..280 {
                let w = xs[s - 12..s].to_vec();
                let p = m.predict(&w, 1).unwrap()[0];
                acc += (p - xs[s]).powi(2);
            }
            acc
        };
        assert!(
            err(&many) < err(&few) * 0.5,
            "{} vs {}",
            err(&many),
            err(&few)
        );
    }

    #[test]
    fn iterates_multi_step() {
        let xs: Vec<f64> = (0..400)
            .map(|t| (std::f64::consts::TAU * t as f64 / 8.0).sin())
            .collect();
        let mut m = GradientBoosting::new(16, 4);
        m.train(&series(xs.clone())).unwrap();
        let window = xs[400 - 16..].to_vec();
        let f = m.predict(&window, 1).unwrap();
        assert_eq!(f.len(), 4);
        for (h, v) in f.iter().enumerate() {
            let expect = (std::f64::consts::TAU * (400 + h) as f64 / 8.0).sin();
            assert!((v - expect).abs() < 0.5, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<f64> = (0..200).map(|t| ((t * 13) % 31) as f64).collect();
        let mut a = GradientBoosting::new(8, 2);
        let mut b = GradientBoosting::new(8, 2);
        a.train(&series(xs.clone())).unwrap();
        b.train(&series(xs.clone())).unwrap();
        let w = xs[192..].to_vec();
        assert_eq!(a.predict(&w, 1).unwrap(), b.predict(&w, 1).unwrap());
    }

    #[test]
    fn untrained_errors() {
        let m = GradientBoosting::new(4, 2);
        assert!(matches!(
            m.predict(&[0.0; 4], 1),
            Err(ModelError::NotTrained)
        ));
    }

    #[test]
    fn constant_series_predicts_constant() {
        let mut m = GradientBoosting::new(4, 3);
        m.train(&series(vec![7.0; 100])).unwrap();
        let f = m.predict(&[7.0; 4], 1).unwrap();
        for v in f {
            assert!((v - 7.0).abs() < 1e-6);
        }
    }
}

//! LinearRegression (LR): ridge-regularized autoregression on look-back
//! windows with direct multi-output forecasting — the simple machine
//! learning baseline the paper shows beating deep models on Wind (Table 1).
//!
//! One shared coefficient matrix maps a `lookback`-long window to all
//! `horizon` outputs, fitted by solving the regularized normal equations
//! once with `horizon` right-hand sides. Channels are pooled for training
//! and predicted independently.

use crate::tabular::pooled_lag_samples;
use crate::{ModelError, Result, WindowForecaster};
use tfb_data::MultiSeries;
use tfb_math::matrix::Matrix;

/// Ridge autoregression with direct multi-step output.
#[derive(Debug, Clone)]
pub struct LinearRegressionForecaster {
    lookback: usize,
    horizon: usize,
    /// Ridge penalty.
    pub lambda: f64,
    /// Training sample budget (windows pooled across channels).
    pub max_samples: usize,
    /// Fitted coefficients: `(lookback + 1) x horizon`, intercept first.
    coefs: Option<Matrix>,
}

impl LinearRegressionForecaster {
    /// Creates an untrained model.
    pub fn new(lookback: usize, horizon: usize) -> Self {
        LinearRegressionForecaster {
            lookback,
            horizon,
            lambda: 1e-3,
            max_samples: 20_000,
            coefs: None,
        }
    }

    /// The fitted coefficient matrix (`(lookback + 1) x horizon`,
    /// intercept row first), or `None` before training — what a model
    /// artifact persists.
    pub fn coefficients(&self) -> Option<&Matrix> {
        self.coefs.as_ref()
    }

    /// Rebuilds a trained model from parts persisted by a model
    /// artifact. Errors on a shape mismatch between `coefs` and
    /// `(lookback + 1) x horizon` instead of producing a model that
    /// panics at predict time.
    pub fn from_parts(
        lookback: usize,
        horizon: usize,
        lambda: f64,
        max_samples: usize,
        coefs: Matrix,
    ) -> std::result::Result<Self, String> {
        if coefs.rows() != lookback + 1 || coefs.cols() != horizon {
            return Err(format!(
                "coefficient shape mismatch: artifact {}x{}, model expects {}x{}",
                coefs.rows(),
                coefs.cols(),
                lookback + 1,
                horizon
            ));
        }
        Ok(LinearRegressionForecaster {
            lookback,
            horizon,
            lambda,
            max_samples,
            coefs: Some(coefs),
        })
    }
}

impl WindowForecaster for LinearRegressionForecaster {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn train(&mut self, train: &MultiSeries) -> Result<()> {
        let (xs, ys) = pooled_lag_samples(train, self.lookback, self.horizon, self.max_samples)?;
        let rows = xs.len();
        let p = self.lookback + 1;
        // Normal equations with intercept column.
        let mut design = Matrix::zeros(rows, p);
        for (r, f) in xs.iter().enumerate() {
            design[(r, 0)] = 1.0;
            for (j, &v) in f.iter().enumerate() {
                design[(r, j + 1)] = v;
            }
        }
        let xt = design.transpose();
        let mut xtx = xt
            .matmul(&design)
            .map_err(|e| ModelError::Numerical(e.to_string()))?;
        for i in 1..p {
            xtx[(i, i)] += self.lambda.max(1e-10) * rows as f64;
        }
        let mut xty = Matrix::zeros(p, self.horizon);
        for (r, t) in ys.iter().enumerate() {
            for (h, &v) in t.iter().enumerate() {
                for j in 0..p {
                    xty[(j, h)] += design[(r, j)] * v;
                }
            }
        }
        let coefs = xtx
            .solve_matrix(&xty)
            .map_err(|_| ModelError::Numerical("singular LR design".into()))?;
        self.coefs = Some(coefs);
        Ok(())
    }

    fn predict(&self, window: &[f64], dim: usize) -> Result<Vec<f64>> {
        let coefs = self.coefs.as_ref().ok_or(ModelError::NotTrained)?;
        let channels = crate::window_channels(window, dim);
        let mut per_channel = Vec::with_capacity(dim);
        for ch in &channels {
            if ch.len() != self.lookback {
                return Err(ModelError::InvalidParameter("window length != lookback"));
            }
            let mut f = Vec::with_capacity(self.horizon);
            for h in 0..self.horizon {
                let mut acc = coefs[(0, h)];
                for (j, &v) in ch.iter().enumerate() {
                    acc += coefs[(j + 1, h)] * v;
                }
                f.push(acc);
            }
            per_channel.push(f);
        }
        Ok(crate::interleave_channels(&per_channel))
    }

    /// One design-matrix GEMM for all windows and channels at once.
    ///
    /// Channel `c` of window `r` becomes design row `r * dim + c` of
    /// `[1, v_0, …, v_{H-1}]`, so `design · coefs` yields every forecast in
    /// a single multiply. The GEMM accumulates each output over `k` in the
    /// same ascending order as the scalar loop in [`predict`], so the
    /// results agree bit-for-bit.
    fn predict_batch(&self, windows: &Matrix, dim: usize) -> Result<Matrix> {
        let coefs = self.coefs.as_ref().ok_or(ModelError::NotTrained)?;
        if dim == 0 || windows.cols() != self.lookback * dim {
            return Err(ModelError::InvalidParameter("window length != lookback"));
        }
        let n = windows.rows();
        let p = self.lookback + 1;
        let mut design = Matrix::zeros(n * dim, p);
        for r in 0..n {
            let w = windows.row(r);
            for c in 0..dim {
                let row = r * dim + c;
                design[(row, 0)] = 1.0;
                for t in 0..self.lookback {
                    design[(row, t + 1)] = w[t * dim + c];
                }
            }
        }
        let prod = design
            .par_matmul(coefs)
            .map_err(|e| ModelError::Numerical(e.to_string()))?;
        // Re-interleave (window, channel) rows into time-major forecast rows.
        let mut out = Matrix::zeros(n, self.horizon * dim);
        for r in 0..n {
            for c in 0..dim {
                for h in 0..self.horizon {
                    out[(r, h * dim + c)] = prod[(r * dim + c, h)];
                }
            }
        }
        Ok(out)
    }

    fn parameter_count(&self) -> usize {
        (self.lookback + 1) * self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};

    fn series(chans: &[Vec<f64>]) -> MultiSeries {
        MultiSeries::from_channels("s", Frequency::Daily, Domain::Other, chans).unwrap()
    }

    #[test]
    fn learns_linear_recurrence() {
        // x_t = 2 x_{t-1} - x_{t-2} continues any line exactly.
        let xs: Vec<f64> = (0..200).map(|t| 3.0 * t as f64 + 1.0).collect();
        let mut m = LinearRegressionForecaster::new(4, 3);
        m.train(&series(&[xs])).unwrap();
        let window = vec![597.0 - 9.0, 597.0 - 6.0, 597.0 - 3.0, 597.0];
        let f = m.predict(&window, 1).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = 597.0 + 3.0 * (h + 1) as f64;
            assert!((v - expect).abs() < 0.5, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn learns_seasonal_pattern() {
        let xs: Vec<f64> = (0..300)
            .map(|t| (std::f64::consts::TAU * t as f64 / 12.0).sin())
            .collect();
        let mut m = LinearRegressionForecaster::new(24, 6);
        m.train(&series(std::slice::from_ref(&xs))).unwrap();
        let window = xs[300 - 24..].to_vec();
        let f = m.predict(&window, 1).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = (std::f64::consts::TAU * (300 + h) as f64 / 12.0).sin();
            assert!((v - expect).abs() < 0.1, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn predict_before_train_errors() {
        let m = LinearRegressionForecaster::new(4, 2);
        assert!(matches!(
            m.predict(&[1.0; 4], 1),
            Err(ModelError::NotTrained)
        ));
    }

    #[test]
    fn wrong_window_length_errors() {
        let xs: Vec<f64> = (0..100).map(|t| t as f64).collect();
        let mut m = LinearRegressionForecaster::new(4, 2);
        m.train(&series(&[xs])).unwrap();
        assert!(m.predict(&[1.0; 3], 1).is_err());
    }

    #[test]
    fn multichannel_prediction_is_time_major() {
        let xs: Vec<f64> = (0..100).map(|t| t as f64).collect();
        let ys: Vec<f64> = (0..100).map(|t| 2.0 * t as f64).collect();
        let mut m = LinearRegressionForecaster::new(4, 2);
        m.train(&series(&[xs, ys])).unwrap();
        // Interleaved window for both channels.
        let window = vec![
            96.0, 192.0, //
            97.0, 194.0, //
            98.0, 196.0, //
            99.0, 198.0,
        ];
        let f = m.predict(&window, 2).unwrap();
        assert_eq!(f.len(), 4);
        assert!((f[0] - 100.0).abs() < 1.0, "{}", f[0]);
        assert!((f[1] - 200.0).abs() < 2.0, "{}", f[1]);
    }

    #[test]
    fn batch_prediction_is_bit_identical_to_per_window() {
        let xs: Vec<f64> = (0..300)
            .map(|t| (std::f64::consts::TAU * t as f64 / 12.0).sin() + 0.02 * t as f64)
            .collect();
        let ys: Vec<f64> = (0..300).map(|t| 5.0 - 0.01 * t as f64).collect();
        let mut m = LinearRegressionForecaster::new(24, 6);
        m.train(&series(&[xs.clone(), ys.clone()])).unwrap();
        let dim = 2;
        let mut rows = Vec::new();
        for start in (0..60).step_by(7) {
            let mut w = Vec::with_capacity(24 * dim);
            for t in start..start + 24 {
                w.push(xs[t]);
                w.push(ys[t]);
            }
            rows.push(w);
        }
        let windows = Matrix::from_rows(&rows).unwrap();
        let batched = m.predict_batch(&windows, dim).unwrap();
        for (r, w) in rows.iter().enumerate() {
            let single = m.predict(w, dim).unwrap();
            assert_eq!(batched.row(r), single.as_slice(), "window {r}");
        }
    }

    #[test]
    fn batch_prediction_rejects_bad_shapes() {
        let xs: Vec<f64> = (0..100).map(|t| t as f64).collect();
        let mut m = LinearRegressionForecaster::new(4, 2);
        m.train(&series(&[xs])).unwrap();
        let windows = Matrix::zeros(3, 5);
        assert!(m.predict_batch(&windows, 1).is_err());
        let untrained = LinearRegressionForecaster::new(4, 2);
        assert!(matches!(
            untrained.predict_batch(&Matrix::zeros(3, 4), 1),
            Err(ModelError::NotTrained)
        ));
    }

    #[test]
    fn parameter_count_matches_shape() {
        let m = LinearRegressionForecaster::new(10, 5);
        assert_eq!(m.parameter_count(), 55);
    }
}

//! The TFB method layer: statistical-learning and machine-learning
//! forecasters, plus the two forecaster traits the whole benchmark runs on.
//!
//! TFB's pipeline treats methods by their *training economics*
//! (Section 4.3.1 of the paper):
//!
//! * [`StatForecaster`] — statistical methods (ARIMA, ETS, Theta, VAR,
//!   Kalman filter, the naive family). Cheap to fit, so rolling evaluation
//!   *refits them on the full history of every iteration*.
//! * [`WindowForecaster`] — machine-learning and deep-learning methods.
//!   Expensive to fit, so they are trained once on the training split and
//!   only re-*infer* on the trailing look-back window of each rolling
//!   iteration.
//!
//! Both direct multi-step (DMS) and iterative multi-step (IMS) forecasting
//! are supported ([`Strategy`]).

// Dense numeric kernels index by position on purpose: the index
// arithmetic *is* the algorithm (GEMM, filters, recursions), and iterator
// rewrites obscure it.
#![allow(clippy::needless_range_loop)]
pub mod arima;
pub mod ets;
pub mod forest;
pub mod gbdt;
pub mod kalman;
pub mod knn;
pub mod linear;
pub mod naive;
pub mod sarima;
pub mod tabular;
pub mod theta;
pub mod var;

pub use arima::Arima;
pub use ets::{Ets, EtsKind};
pub use forest::RandomForest;
pub use gbdt::GradientBoosting;
pub use kalman::KalmanForecaster;
pub use knn::Knn;
pub use linear::LinearRegressionForecaster;
pub use naive::{Drift, MeanForecaster, Naive, SeasonalNaive};
pub use sarima::Sarima;
pub use tabular::Strategy;
pub use theta::Theta;
pub use var::Var;

use tfb_data::MultiSeries;
use tfb_math::matrix::Matrix;

/// Errors produced by forecasters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The history is too short for the model's requirements.
    InsufficientData(&'static str),
    /// The model was asked to predict before being trained.
    NotTrained,
    /// Invalid hyper-parameter.
    InvalidParameter(&'static str),
    /// Numerical failure during fitting.
    Numerical(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InsufficientData(what) => write!(f, "insufficient data: {what}"),
            ModelError::NotTrained => write!(f, "model has not been trained"),
            ModelError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            ModelError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for the method layer.
pub type Result<T> = std::result::Result<T, ModelError>;

/// A statistical forecaster: refit from scratch on each history.
///
/// `forecast` returns a time-major block of `horizon * history.dim()`
/// values.
pub trait StatForecaster: Send + Sync {
    /// Method name as reported in result tables.
    fn name(&self) -> &'static str;

    /// Fits on `history` and forecasts the next `horizon` time points.
    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>>;
}

/// A window-based forecaster: train once, then map a look-back window to a
/// horizon block.
pub trait WindowForecaster: Send + Sync {
    /// Method name as reported in result tables.
    fn name(&self) -> &'static str;

    /// Look-back window length `H`.
    fn lookback(&self) -> usize;

    /// Forecast horizon `F`.
    fn horizon(&self) -> usize;

    /// Trains on the training split (validation handling is up to the
    /// model; the pipeline passes the raw training segment).
    fn train(&mut self, train: &MultiSeries) -> Result<()>;

    /// Predicts the next `horizon()` steps from a time-major look-back
    /// block of `lookback() * dim` values. Returns `horizon() * dim`
    /// values, time-major.
    fn predict(&self, window: &[f64], dim: usize) -> Result<Vec<f64>>;

    /// Predicts every row of `windows` in one call. Each row is one
    /// time-major look-back block of `lookback() * dim` values; row `r` of
    /// the returned matrix carries the `horizon() * dim` forecast for
    /// window `r` and must equal `predict(windows.row(r), dim)` exactly
    /// (bit-for-bit — the batched evaluation engine relies on this to keep
    /// metrics identical to per-window inference).
    ///
    /// The default loops over rows; models with a closed-form batched
    /// forward (LR, the deep families) override it with a single matrix
    /// pass.
    fn predict_batch(&self, windows: &Matrix, dim: usize) -> Result<Matrix> {
        let width = self.horizon() * dim;
        let mut out = Matrix::zeros(windows.rows(), width);
        for r in 0..windows.rows() {
            let f = self.predict(windows.row(r), dim)?;
            if f.len() != width {
                return Err(ModelError::Numerical(format!(
                    "predict returned {} values, expected {width}",
                    f.len()
                )));
            }
            out.data_mut()[r * width..(r + 1) * width].copy_from_slice(&f);
        }
        Ok(out)
    }

    /// Number of trainable parameters (for the Figure 11 study); tree
    /// ensembles report node counts.
    fn parameter_count(&self) -> usize {
        0
    }
}

/// Splits a time-major window into per-channel vectors.
pub fn window_channels(window: &[f64], dim: usize) -> Vec<Vec<f64>> {
    assert!(
        dim > 0 && window.len().is_multiple_of(dim),
        "bad window shape"
    );
    let steps = window.len() / dim;
    (0..dim)
        .map(|c| (0..steps).map(|t| window[t * dim + c]).collect())
        .collect()
}

/// Interleaves per-channel forecasts back into a time-major block.
pub fn interleave_channels(channels: &[Vec<f64>]) -> Vec<f64> {
    if channels.is_empty() {
        return Vec::new();
    }
    let steps = channels[0].len();
    debug_assert!(channels.iter().all(|c| c.len() == steps));
    let mut out = Vec::with_capacity(steps * channels.len());
    for t in 0..steps {
        for ch in channels {
            out.push(ch[t]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_channel_roundtrip() {
        let window = vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        let chans = window_channels(&window, 2);
        assert_eq!(chans[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(chans[1], vec![10.0, 20.0, 30.0]);
        assert_eq!(interleave_channels(&chans), window);
    }

    #[test]
    #[should_panic(expected = "bad window shape")]
    fn window_channels_rejects_ragged() {
        window_channels(&[1.0, 2.0, 3.0], 2);
    }
}

//! Seasonal ARIMA: SARIMA(p, d, q)(P, D, Q)_s via the same Hannan–Rissanen
//! two-stage estimation as [`crate::arima`], extended with seasonal
//! differencing and seasonal AR/MA lags at multiples of the period `s`.
//!
//! The paper's statistical tier evaluates ARIMA on strongly seasonal
//! univariate groups (Table 6); plain ARIMA cannot carry a 24- or 52-step
//! cycle with `p, q ≤ 2`, so the seasonal extension is what makes the
//! statistical column competitive there.

use crate::{ModelError, Result, StatForecaster};
use tfb_data::MultiSeries;
use tfb_math::acf::seasonal_difference;
use tfb_math::matrix::Matrix;
use tfb_math::regression::ols;

/// SARIMA forecaster. Seasonal period 0 lets the series frequency decide.
#[derive(Debug, Clone, Copy)]
pub struct Sarima {
    /// Non-seasonal AR order.
    pub p: usize,
    /// Non-seasonal differencing.
    pub d: usize,
    /// Non-seasonal MA order.
    pub q: usize,
    /// Seasonal AR order.
    pub sp: usize,
    /// Seasonal differencing.
    pub sd: usize,
    /// Seasonal MA order.
    pub sq: usize,
    /// Seasonal period (0 = frequency default).
    pub period: usize,
}

impl Sarima {
    /// The airline-model configuration (0,1,1)(0,1,1)_s — the classic
    /// default for seasonal data.
    pub fn airline(period: usize) -> Sarima {
        Sarima {
            p: 0,
            d: 1,
            q: 1,
            sp: 0,
            sd: 1,
            sq: 1,
            period,
        }
    }

    /// Explicit orders.
    #[allow(clippy::too_many_arguments)] // mirrors the standard notation
    pub fn new(
        p: usize,
        d: usize,
        q: usize,
        sp: usize,
        sd: usize,
        sq: usize,
        period: usize,
    ) -> Sarima {
        Sarima {
            p,
            d,
            q,
            sp,
            sd,
            sq,
            period,
        }
    }
}

impl StatForecaster for Sarima {
    fn name(&self) -> &'static str {
        "SARIMA"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>> {
        let period = if self.period == 0 {
            history.frequency.default_period()
        } else {
            self.period
        };
        let dim = history.dim();
        let mut per_channel = Vec::with_capacity(dim);
        for c in 0..dim {
            let xs = history.channel(c);
            per_channel.push(forecast_channel(&xs, self, period, horizon)?);
        }
        Ok(crate::interleave_channels(&per_channel))
    }
}

fn forecast_channel(xs: &[f64], spec: &Sarima, period: usize, horizon: usize) -> Result<Vec<f64>> {
    // Fall back to non-seasonal behaviour when the period is degenerate or
    // the history cannot support seasonal differencing.
    let seasonal_ok = period >= 2 && xs.len() > (spec.sd + 2) * period + 16;
    let (sd, sp, sq, s) = if seasonal_ok {
        (spec.sd, spec.sp, spec.sq, period)
    } else {
        (0, 0, 0, 1)
    };
    // 1. Differencing: d regular + sd seasonal, remembering tails to invert.
    let mut w = xs.to_vec();
    let mut regular_tails = Vec::with_capacity(spec.d);
    for _ in 0..spec.d {
        if w.len() < 2 {
            return Err(ModelError::InsufficientData("sarima differencing"));
        }
        regular_tails.push(*w.last().expect("nonempty"));
        w = w.windows(2).map(|v| v[1] - v[0]).collect();
    }
    let mut seasonal_tails: Vec<Vec<f64>> = Vec::with_capacity(sd);
    for _ in 0..sd {
        if w.len() <= s {
            return Err(ModelError::InsufficientData("sarima seasonal differencing"));
        }
        seasonal_tails.push(w[w.len() - s..].to_vec());
        w = seasonal_difference(&w, s);
    }
    let n = w.len();
    let max_lag = spec.p.max(spec.q).max(sp.max(sq) * s);
    if n < max_lag + spec.p + spec.q + sp + sq + 12 {
        return Err(ModelError::InsufficientData("sarima history too short"));
    }
    // 2. Stage 1: long AR for innovations.
    let m = (max_lag + 4).min(n / 3).max(1);
    let rows1 = n - m;
    let mut x1 = Matrix::zeros(rows1, m);
    let mut y1 = Vec::with_capacity(rows1);
    for r in 0..rows1 {
        let t = r + m;
        y1.push(w[t]);
        for i in 0..m {
            x1[(r, i)] = w[t - 1 - i];
        }
    }
    let long_ar = ols(&x1, &y1, true).map_err(|e| ModelError::Numerical(e.to_string()))?;
    let mut eps = vec![0.0; m];
    eps.extend_from_slice(&long_ar.residuals);
    // 3. Stage 2: regress on regular + seasonal AR lags and MA terms.
    let start = max_lag;
    let rows = n - start;
    let cols = spec.p + spec.q + sp + sq;
    if rows < cols + 3 {
        return Err(ModelError::InsufficientData(
            "sarima stage-2 underdetermined",
        ));
    }
    let (intercept, coefs) = if cols == 0 {
        (w.iter().sum::<f64>() / n as f64, Vec::new())
    } else {
        let mut x = Matrix::zeros(rows, cols);
        let mut y = Vec::with_capacity(rows);
        for r in 0..rows {
            let t = r + start;
            y.push(w[t]);
            let mut col = 0;
            for i in 1..=spec.p {
                x[(r, col)] = w[t - i];
                col += 1;
            }
            for i in 1..=sp {
                x[(r, col)] = w[t - i * s];
                col += 1;
            }
            for j in 1..=spec.q {
                x[(r, col)] = eps[t - j];
                col += 1;
            }
            for j in 1..=sq {
                x[(r, col)] = eps[t - j * s];
                col += 1;
            }
        }
        let fit = ols(&x, &y, true).map_err(|e| ModelError::Numerical(e.to_string()))?;
        (fit.coefficients[0], fit.coefficients[1..].to_vec())
    };
    // 4. Iterate the recursion.
    let mut w_ext = w.clone();
    let mut eps_ext = eps;
    for _ in 0..horizon {
        let t = w_ext.len();
        let mut v = intercept;
        let mut col = 0;
        for i in 1..=spec.p {
            v += coefs[col] * w_ext[t - i];
            col += 1;
        }
        for i in 1..=sp {
            v += coefs[col] * w_ext[t - i * s];
            col += 1;
        }
        for j in 1..=spec.q {
            v += coefs[col] * eps_ext[t - j];
            col += 1;
        }
        for j in 1..=sq {
            v += coefs[col] * eps_ext[t - j * s];
            col += 1;
        }
        if !v.is_finite() {
            v = intercept;
        }
        w_ext.push(v);
        eps_ext.push(0.0);
    }
    let mut forecast = w_ext[n..].to_vec();
    // 5. Invert seasonal then regular differencing.
    for tail in seasonal_tails.iter().rev() {
        let mut level = tail.clone();
        for (h, f) in forecast.iter_mut().enumerate() {
            let prev = level[h % s];
            let value = prev + *f;
            *f = value;
            level[h % s] = value;
        }
    }
    for &tail in regular_tails.iter().rev() {
        let mut level = tail;
        for f in forecast.iter_mut() {
            level += *f;
            *f = level;
        }
    }
    Ok(forecast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};

    fn uni(values: Vec<f64>, freq: Frequency) -> MultiSeries {
        MultiSeries::from_channels("s", freq, Domain::Other, &[values]).unwrap()
    }

    fn seasonal_trend(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                0.1 * t as f64
                    + 5.0 * (std::f64::consts::TAU * t as f64 / period as f64).sin()
                    + 0.05 * ((t as f64 * 12.9898).sin() * 43758.5453).fract()
            })
            .collect()
    }

    #[test]
    fn airline_model_continues_seasonal_trend() {
        let xs = seasonal_trend(240, 12);
        let f = Sarima::airline(12)
            .forecast(&uni(xs, Frequency::Monthly), 24)
            .unwrap();
        for (h, v) in f.iter().enumerate() {
            let t = 240 + h;
            let expect = 0.1 * t as f64 + 5.0 * (std::f64::consts::TAU * t as f64 / 12.0).sin();
            assert!((v - expect).abs() < 1.0, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn beats_nonseasonal_arima_on_seasonal_data() {
        let xs = seasonal_trend(300, 24);
        let train = xs[..276].to_vec();
        let truth = &xs[276..];
        let seasonal = Sarima::airline(24)
            .forecast(&uni(train.clone(), Frequency::Hourly), 24)
            .unwrap();
        let plain = crate::Arima::new(2, 1, 1)
            .forecast(&uni(train, Frequency::Hourly), 24)
            .unwrap();
        let mae = |f: &[f64]| f.iter().zip(truth).map(|(a, b)| (a - b).abs()).sum::<f64>() / 24.0;
        assert!(
            mae(&seasonal) < mae(&plain) * 0.5,
            "seasonal {} vs plain {}",
            mae(&seasonal),
            mae(&plain)
        );
    }

    #[test]
    fn falls_back_without_enough_cycles() {
        let xs: Vec<f64> = (0..60).map(|t| t as f64 + (t as f64).sin()).collect();
        // Period 52 with 60 points: seasonal terms disabled, still forecasts.
        let f = Sarima::airline(52)
            .forecast(&uni(xs, Frequency::Weekly), 8)
            .unwrap();
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn period_zero_uses_frequency_default() {
        let xs = seasonal_trend(240, 12);
        let mut spec = Sarima::airline(0);
        spec.period = 0;
        let f = spec.forecast(&uni(xs, Frequency::Monthly), 6).unwrap();
        assert_eq!(f.len(), 6);
    }

    #[test]
    fn multichannel_shape() {
        let s = MultiSeries::from_channels(
            "m",
            Frequency::Monthly,
            Domain::Economic,
            &[seasonal_trend(200, 12), seasonal_trend(200, 12)],
        )
        .unwrap();
        let f = Sarima::airline(12).forecast(&s, 5).unwrap();
        assert_eq!(f.len(), 10);
    }

    #[test]
    fn too_short_history_errors() {
        let xs: Vec<f64> = (0..12).map(|t| t as f64).collect();
        let spec = Sarima::new(2, 1, 2, 1, 1, 1, 2);
        assert!(spec.forecast(&uni(xs, Frequency::Daily), 4).is_err());
    }
}

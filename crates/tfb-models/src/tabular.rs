//! Shared infrastructure for tabular (machine-learning) forecasters:
//! pooled lag-feature construction and the multi-step strategy.
//!
//! The ML models are *channel independent*: training samples are pooled
//! across channels (every channel contributes its lag windows), and
//! prediction runs per channel. This mirrors how the original benchmark
//! feeds Darts-style regressors.

use crate::{ModelError, Result};
use tfb_data::window::lag_matrix;
use tfb_data::MultiSeries;

/// Multi-step forecasting strategy (the paper's method layer supports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Direct multi-step: one multi-output model maps the look-back window
    /// straight to all `F` horizon steps.
    #[default]
    Direct,
    /// Iterative multi-step: a one-step model applied recursively, feeding
    /// its own predictions back as inputs.
    Iterative,
}

/// Pooled training set: features are look-back windows of single channels,
/// targets are the next `horizon` values of the same channel
/// (`horizon = 1` for iterative models).
pub fn pooled_lag_samples(
    train: &MultiSeries,
    lookback: usize,
    horizon: usize,
    max_samples: usize,
) -> Result<tfb_data::window::LagSamples> {
    let dim = train.dim();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for c in 0..dim {
        let channel = train.channel(c);
        let (mut f, mut t) = lag_matrix(&channel, lookback, horizon).map_err(|_| {
            ModelError::InsufficientData("training split shorter than lookback + horizon")
        })?;
        xs.append(&mut f);
        ys.append(&mut t);
    }
    if xs.is_empty() {
        return Err(ModelError::InsufficientData("no training samples"));
    }
    // Uniformly thin to the sample budget so huge datasets stay tractable
    // without biasing towards any region of the series.
    if xs.len() > max_samples {
        let stride = xs.len().div_ceil(max_samples);
        xs = xs.into_iter().step_by(stride).collect();
        ys = ys.into_iter().step_by(stride).collect();
    }
    Ok((xs, ys))
}

/// Runs a one-step predictor iteratively for `horizon` steps starting from
/// `window` (a single channel's look-back values).
pub fn iterate_one_step(
    window: &[f64],
    horizon: usize,
    mut predict_one: impl FnMut(&[f64]) -> f64,
) -> Vec<f64> {
    let mut buf = window.to_vec();
    let mut out = Vec::with_capacity(horizon);
    for _ in 0..horizon {
        let next = predict_one(&buf);
        let next = if next.is_finite() {
            next
        } else {
            *buf.last().expect("nonempty window")
        };
        out.push(next);
        buf.rotate_left(1);
        let last = buf.len() - 1;
        buf[last] = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};

    fn series(chans: &[Vec<f64>]) -> MultiSeries {
        MultiSeries::from_channels("s", Frequency::Daily, Domain::Other, chans).unwrap()
    }

    #[test]
    fn pooled_samples_cover_all_channels() {
        let s = series(&[
            (0..20).map(|t| t as f64).collect(),
            (0..20).map(|t| (100 + t) as f64).collect(),
        ]);
        let (xs, ys) = pooled_lag_samples(&s, 4, 2, usize::MAX).unwrap();
        // Each channel yields 20 - 4 - 2 + 1 = 15 samples.
        assert_eq!(xs.len(), 30);
        assert_eq!(ys.len(), 30);
        assert!(xs.iter().any(|f| f[0] >= 100.0));
        assert!(xs.iter().any(|f| f[0] < 100.0));
    }

    #[test]
    fn sample_budget_thins_uniformly() {
        let s = series(&[(0..200).map(|t| t as f64).collect()]);
        let (xs, _) = pooled_lag_samples(&s, 4, 1, 50).unwrap();
        assert!(xs.len() <= 50);
        assert!(xs.len() >= 40);
    }

    #[test]
    fn too_short_training_errors() {
        let s = series(&[vec![1.0, 2.0, 3.0]]);
        assert!(pooled_lag_samples(&s, 4, 2, 100).is_err());
    }

    #[test]
    fn iterate_one_step_feeds_back_predictions() {
        // Predictor: next = last + 1 (so iterating counts upward).
        let out = iterate_one_step(&[1.0, 2.0, 3.0], 4, |w| w[w.len() - 1] + 1.0);
        assert_eq!(out, vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn iterate_guards_non_finite() {
        let out = iterate_one_step(&[1.0, 2.0], 2, |_| f64::NAN);
        assert_eq!(out, vec![2.0, 2.0]);
    }
}

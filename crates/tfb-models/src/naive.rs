//! The naive forecaster family: last value, seasonal last value, drift and
//! historical mean. These are the floor every serious method must beat and
//! the denominators of scale-free metrics like MASE.

use crate::{ModelError, Result, StatForecaster};
use tfb_data::MultiSeries;

/// Repeats the last observed value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl StatForecaster for Naive {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>> {
        let n = history.len();
        if n == 0 {
            return Err(ModelError::InsufficientData("naive needs >= 1 point"));
        }
        let last = history.row(n - 1).to_vec();
        Ok(std::iter::repeat_n(last, horizon).flatten().collect())
    }
}

/// Repeats the value one season ago (falls back to [`Naive`] when the
/// history is shorter than one season).
#[derive(Debug, Clone, Copy)]
pub struct SeasonalNaive {
    /// Seasonal period; defaults to the series frequency's natural period
    /// when constructed via [`SeasonalNaive::auto`].
    pub period: usize,
}

impl SeasonalNaive {
    /// Uses the frequency's natural period at forecast time.
    pub fn auto() -> SeasonalNaive {
        SeasonalNaive { period: 0 }
    }
}

impl StatForecaster for SeasonalNaive {
    fn name(&self) -> &'static str {
        "SeasonalNaive"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>> {
        let n = history.len();
        if n == 0 {
            return Err(ModelError::InsufficientData("seasonal naive needs data"));
        }
        let period = if self.period == 0 {
            history.frequency.default_period()
        } else {
            self.period
        };
        if period < 2 || n < period {
            return Naive.forecast(history, horizon);
        }
        let dim = history.dim();
        let mut out = Vec::with_capacity(horizon * dim);
        for h in 0..horizon {
            // Index of the same phase in the last full season.
            let t = n - period + (h % period);
            out.extend_from_slice(history.row(t));
        }
        Ok(out)
    }
}

/// Linear extrapolation between the first and last observations.
#[derive(Debug, Clone, Copy, Default)]
pub struct Drift;

impl StatForecaster for Drift {
    fn name(&self) -> &'static str {
        "Drift"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>> {
        let n = history.len();
        if n < 2 {
            return Err(ModelError::InsufficientData("drift needs >= 2 points"));
        }
        let dim = history.dim();
        let first = history.row(0);
        let last = history.row(n - 1);
        let mut out = Vec::with_capacity(horizon * dim);
        for h in 1..=horizon {
            for c in 0..dim {
                let slope = (last[c] - first[c]) / (n - 1) as f64;
                out.push(last[c] + slope * h as f64);
            }
        }
        Ok(out)
    }
}

/// Repeats the historical mean.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanForecaster;

impl StatForecaster for MeanForecaster {
    fn name(&self) -> &'static str {
        "Mean"
    }

    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>> {
        let n = history.len();
        if n == 0 {
            return Err(ModelError::InsufficientData("mean needs data"));
        }
        let dim = history.dim();
        let mut means = vec![0.0; dim];
        for t in 0..n {
            for (c, m) in means.iter_mut().enumerate() {
                *m += history.at(t, c);
            }
        }
        for m in means.iter_mut() {
            *m /= n as f64;
        }
        Ok(std::iter::repeat_n(means, horizon).flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};

    fn series(chans: &[Vec<f64>], freq: Frequency) -> MultiSeries {
        MultiSeries::from_channels("s", freq, Domain::Other, chans).unwrap()
    }

    #[test]
    fn naive_repeats_last_row() {
        let s = series(
            &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            Frequency::Daily,
        );
        let f = Naive.forecast(&s, 2).unwrap();
        assert_eq!(f, vec![3.0, 6.0, 3.0, 6.0]);
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let s = series(&[vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]], Frequency::Daily);
        let f = SeasonalNaive { period: 3 }.forecast(&s, 4).unwrap();
        assert_eq!(f, vec![4.0, 5.0, 6.0, 4.0]);
    }

    #[test]
    fn seasonal_naive_falls_back_when_short() {
        let s = series(&[vec![1.0, 2.0]], Frequency::Daily);
        let f = SeasonalNaive { period: 5 }.forecast(&s, 2).unwrap();
        assert_eq!(f, vec![2.0, 2.0]);
    }

    #[test]
    fn seasonal_naive_auto_uses_frequency_period() {
        let values: Vec<f64> = (0..48).map(|t| (t % 24) as f64).collect();
        let s = series(&[values], Frequency::Hourly);
        let f = SeasonalNaive::auto().forecast(&s, 24).unwrap();
        let expect: Vec<f64> = (0..24).map(|t| t as f64).collect();
        assert_eq!(f, expect);
    }

    #[test]
    fn drift_extends_the_line() {
        let s = series(&[vec![0.0, 1.0, 2.0, 3.0]], Frequency::Daily);
        let f = Drift.forecast(&s, 3).unwrap();
        assert_eq!(f, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn mean_repeats_average() {
        let s = series(&[vec![2.0, 4.0, 6.0]], Frequency::Daily);
        let f = MeanForecaster.forecast(&s, 2).unwrap();
        assert_eq!(f, vec![4.0, 4.0]);
    }

    #[test]
    fn empty_history_errors() {
        // MultiSeries cannot be empty, so test the >= 2 constraint.
        let s = series(&[vec![1.0]], Frequency::Daily);
        assert!(Drift.forecast(&s, 1).is_err());
    }
}

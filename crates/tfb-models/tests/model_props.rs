//! Property-based tests on forecaster invariants: equivariance under
//! affine transforms, shape guarantees, and statistical-model sanity on
//! random inputs.

use proptest::prelude::*;
use tfb_data::{Domain, Frequency, MultiSeries};
use tfb_models::{
    Drift, Knn, LinearRegressionForecaster, MeanForecaster, Naive, SeasonalNaive, StatForecaster,
    Theta, WindowForecaster,
};

fn uni(values: Vec<f64>) -> MultiSeries {
    MultiSeries::from_channels("p", Frequency::Daily, Domain::Other, &[values]).unwrap()
}

fn series_strategy(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0_f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn naive_family_is_shift_equivariant(
        values in series_strategy(10..80),
        shift in -50.0_f64..50.0,
        horizon in 1usize..10,
    ) {
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        for m in [&Naive as &dyn StatForecaster, &Drift, &MeanForecaster] {
            let base = m.forecast(&uni(values.clone()), horizon).unwrap();
            let moved = m.forecast(&uni(shifted.clone()), horizon).unwrap();
            for (a, b) in base.iter().zip(&moved) {
                prop_assert!(
                    (a + shift - b).abs() < 1e-7 * (1.0 + b.abs()),
                    "{}: {a} + {shift} != {b}", m.name()
                );
            }
        }
    }

    #[test]
    fn naive_family_is_scale_equivariant(
        values in series_strategy(10..80),
        scale in 0.1_f64..10.0,
        horizon in 1usize..10,
    ) {
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        for m in [&Naive as &dyn StatForecaster, &Drift, &MeanForecaster, &Theta] {
            let base = m.forecast(&uni(values.clone()), horizon);
            let moved = m.forecast(&uni(scaled.clone()), horizon);
            let (Ok(base), Ok(moved)) = (base, moved) else { continue };
            for (a, b) in base.iter().zip(&moved) {
                prop_assert!(
                    (a * scale - b).abs() < 1e-6 * (1.0 + b.abs()),
                    "{}: {a} * {scale} != {b}", m.name()
                );
            }
        }
    }

    #[test]
    fn seasonal_naive_repeats_with_period(
        values in series_strategy(30..100),
        period in 2usize..10,
        horizon in 1usize..20,
    ) {
        let m = SeasonalNaive { period };
        let f = m.forecast(&uni(values.clone()), horizon).unwrap();
        let n = values.len();
        for (h, v) in f.iter().enumerate() {
            let expected = values[n - period + (h % period)];
            prop_assert_eq!(*v, expected);
        }
    }

    #[test]
    fn forecast_lengths_match_horizon(
        values in series_strategy(40..100),
        horizon in 1usize..24,
    ) {
        for m in [&Naive as &dyn StatForecaster, &Drift, &MeanForecaster, &Theta] {
            let f = m.forecast(&uni(values.clone()), horizon).unwrap();
            prop_assert_eq!(f.len(), horizon, "{}", m.name());
        }
    }

    #[test]
    fn lr_predictions_are_finite_on_arbitrary_training_data(
        values in series_strategy(40..120),
    ) {
        let mut m = LinearRegressionForecaster::new(8, 4);
        if m.train(&uni(values.clone())).is_ok() {
            let window = values[values.len() - 8..].to_vec();
            let f = m.predict(&window, 1).unwrap();
            prop_assert_eq!(f.len(), 4);
            prop_assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn knn_forecast_stays_near_training_envelope(
        values in series_strategy(60..150),
    ) {
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = (hi - lo).max(1.0);
        let mut m = Knn::new(10, 5);
        m.center = false;
        if m.train(&uni(values.clone())).is_ok() {
            let window = values[values.len() - 10..].to_vec();
            let f = m.predict(&window, 1).unwrap();
            // Uncentered KNN averages training continuations: strictly
            // inside the envelope.
            for v in f {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}] (range {range})");
            }
        }
    }

    #[test]
    fn multichannel_forecasts_interleave_consistently(
        a in series_strategy(40..80),
        b in series_strategy(40..80),
        horizon in 1usize..8,
    ) {
        let n = a.len().min(b.len());
        let joint = MultiSeries::from_channels(
            "p", Frequency::Daily, Domain::Other,
            &[a[..n].to_vec(), b[..n].to_vec()],
        ).unwrap();
        // Channel-wise statistical forecasts must equal the forecast of
        // each channel in isolation.
        for m in [&Naive as &dyn StatForecaster, &MeanForecaster, &Theta] {
            let joint_f = m.forecast(&joint, horizon).unwrap();
            let fa = m.forecast(&uni(a[..n].to_vec()), horizon).unwrap();
            let fb = m.forecast(&uni(b[..n].to_vec()), horizon).unwrap();
            for h in 0..horizon {
                prop_assert!((joint_f[2 * h] - fa[h]).abs() < 1e-9, "{}", m.name());
                prop_assert!((joint_f[2 * h + 1] - fb[h]).abs() < 1e-9, "{}", m.name());
            }
        }
    }
}

//! Shared harness for the table/figure reproduction binaries.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md for the index). The
//! binaries print the paper's rows/series to stdout and write CSVs under
//! `target/tfb-results/`.
//!
//! Two environment knobs control scale:
//!
//! * `TFB_FULL=1` — paper-sized horizons/look-backs and full window counts
//!   (hours of CPU; the default is a laptop-scale reduction that preserves
//!   the paper's *relative* comparisons);
//! * `TFB_FAST=1` — an even smaller smoke-test scale used by CI.

pub mod emit;
pub mod engines;
pub mod harness;
pub mod measure;
pub mod suite;
pub mod toml;

use std::path::PathBuf;
use tfb_core::eval::{evaluate, EvalOutcome, EvalSettings};
use tfb_core::method::build_method;
use tfb_core::report::ResultTable;
use tfb_datagen::{DatasetProfile, Scale};
use tfb_nn::TrainConfig;

/// Run scale selected by environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// CI smoke test.
    Fast,
    /// Laptop default.
    Default,
    /// Paper-sized.
    Full,
}

impl RunScale {
    /// Reads `TFB_FULL` / `TFB_FAST`.
    pub fn from_env() -> RunScale {
        if std::env::var_os("TFB_FULL").is_some() {
            RunScale::Full
        } else if std::env::var_os("TFB_FAST").is_some() {
            RunScale::Fast
        } else {
            RunScale::Default
        }
    }

    /// Dataset generation scale.
    pub fn data_scale(self) -> Scale {
        match self {
            RunScale::Fast => Scale {
                max_len: 800,
                max_dim: 4,
            },
            RunScale::Default => Scale {
                max_len: 2_000,
                max_dim: 6,
            },
            RunScale::Full => Scale::FULL,
        }
    }

    /// Horizons evaluated for a profile: the paper's four at full scale,
    /// proportionally reduced otherwise.
    pub fn horizons(self, profile: &DatasetProfile) -> Vec<usize> {
        match self {
            RunScale::Full => profile.horizons.to_vec(),
            RunScale::Default => {
                if profile.horizons == tfb_datagen::profiles::LONG_HORIZONS {
                    vec![24, 48]
                } else {
                    vec![24, 36]
                }
            }
            RunScale::Fast => vec![profile.horizons[0].min(24)],
        }
    }

    /// Look-back search space for a profile.
    pub fn lookbacks(self, profile: &DatasetProfile) -> Vec<usize> {
        match self {
            RunScale::Full => profile.lookbacks.to_vec(),
            RunScale::Default => {
                if profile.horizons == tfb_datagen::profiles::LONG_HORIZONS {
                    vec![96]
                } else {
                    vec![36, 104]
                }
            }
            RunScale::Fast => vec![36],
        }
    }

    /// Rolling-window budget per evaluation.
    pub fn max_windows(self) -> usize {
        match self {
            RunScale::Fast => 5,
            RunScale::Default => 20,
            RunScale::Full => 0,
        }
    }

    /// Deep-learning training budget.
    pub fn train_config(self) -> TrainConfig {
        match self {
            RunScale::Fast => TrainConfig {
                epochs: 4,
                max_samples: 200,
                ..TrainConfig::default()
            },
            RunScale::Default => TrainConfig {
                epochs: 15,
                max_samples: 800,
                ..TrainConfig::default()
            },
            RunScale::Full => TrainConfig {
                epochs: 60,
                max_samples: 8_000,
                ..TrainConfig::default()
            },
        }
    }
}

/// The 14 multivariate methods of Tables 7–8.
pub const MTSF_METHODS: [&str; 14] = [
    "PatchTST",
    "Crossformer",
    "FEDformer",
    "Informer",
    "Triformer",
    "DLinear",
    "NLinear",
    "MICN",
    "TimesNet",
    "TCN",
    "FiLM",
    "RNN",
    "LR",
    "VAR",
];

/// The 21 univariate methods of Table 6.
pub const UTSF_METHODS: [&str; 21] = [
    "PatchTST",
    "Crossformer",
    "FEDformer",
    "Stationary",
    "Informer",
    "Triformer",
    "DLinear",
    "NLinear",
    "TiDE",
    "N-BEATS",
    "N-HiTS",
    "TimesNet",
    "TCN",
    "RNN",
    "FiLM",
    "LR",
    "RF",
    "XGB",
    "ARIMA",
    "ETS",
    "KF",
];

/// Output directory for the generated tables.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/tfb-results");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Runs a reproduction binary under an armed observability run: span
/// events stream to `target/obs/<label>.events.jsonl` and the manifest
/// lands beside them when the closure returns. `TFB_OBS=0` disables the
/// instrumentation for the run.
pub fn with_obs<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let obs_on = std::env::var("TFB_OBS").map(|v| v != "0").unwrap_or(true);
    let dir = PathBuf::from("target/obs");
    let mut armed = false;
    if obs_on {
        let opts = tfb_obs::RunOptions {
            events_path: Some(dir.join(format!("{label}.events.jsonl"))),
        };
        // A sink that cannot open disarms the run entirely — a half-armed
        // run (events without a manifest, or the reverse) would poison
        // cross-run comparisons.
        match tfb_obs::start_run(opts) {
            Ok(()) => armed = true,
            Err(e) => eprintln!(
                "{label}: could not open the observability sink: {e}; \
                 falling back to a fully disarmed run"
            ),
        }
    }
    let out = f();
    if armed {
        let meta = [
            ("bin", label.to_string()),
            ("git_rev", tfb_obs::git_rev().unwrap_or_default()),
            ("scale", format!("{:?}", RunScale::from_env())),
            ("kernel", tfb_math::kernel::active_name().to_string()),
        ];
        if let Some(manifest) = tfb_obs::finish_run(&meta) {
            let path = dir.join(format!("{label}.manifest.json"));
            match manifest.write(&path) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("{label}: could not write the run manifest: {e}"),
            }
        }
    }
    out
}

/// Evaluates one method on one dataset profile with best-of-lookback
/// selection, mirroring the paper's ≤ 8-set hyper-parameter search.
pub fn eval_best_lookback(
    profile: &DatasetProfile,
    series: &tfb_data::MultiSeries,
    method_name: &str,
    horizon: usize,
    scale: RunScale,
) -> Option<EvalOutcome> {
    let mut best: Option<EvalOutcome> = None;
    for lookback in scale.lookbacks(profile) {
        let mut settings = EvalSettings::rolling(lookback, horizon, profile.split);
        settings.max_windows = scale.max_windows();
        let Ok(mut method) = build_method(
            method_name,
            lookback,
            horizon,
            series.dim(),
            Some(scale.train_config()),
        ) else {
            continue;
        };
        if let Ok(out) = evaluate(&mut method, series, &settings) {
            let score = out.metric(tfb_core::Metric::Mae);
            let better = match &best {
                None => true,
                Some(b) => {
                    let cur = b.metric(tfb_core::Metric::Mae);
                    score.is_finite() && (!cur.is_finite() || score < cur)
                }
            };
            if better {
                best = Some(out);
            }
        }
    }
    best
}

/// Writes a table both to stdout (markdown) and the results directory.
pub fn emit(table: &ResultTable, name: &str, metric: tfb_core::Metric) {
    println!("{}", table.to_markdown(metric));
    match table.write_csv(&results_dir(), name) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {name}.csv: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_lists_match_the_papers_study_sizes() {
        // 14 multivariate (Tables 7-8) and 21 univariate (Table 6) methods.
        assert_eq!(MTSF_METHODS.len(), 14);
        assert_eq!(UTSF_METHODS.len(), 21);
        // Every name resolves in the factory.
        for name in MTSF_METHODS.iter().chain(&UTSF_METHODS) {
            assert!(
                tfb_core::method::build_method(name, 24, 6, 2, None).is_ok(),
                "unknown method {name}"
            );
        }
    }

    #[test]
    fn scales_order_budgets_sensibly() {
        let fast = RunScale::Fast;
        let def = RunScale::Default;
        let full = RunScale::Full;
        assert!(fast.data_scale().max_len < def.data_scale().max_len);
        assert!(def.data_scale().max_len < full.data_scale().max_len);
        assert!(fast.train_config().epochs < def.train_config().epochs);
        assert_eq!(full.max_windows(), 0, "full scale keeps every window");
    }

    #[test]
    fn full_scale_uses_paper_horizons_and_lookbacks() {
        let ili = tfb_datagen::profile_by_name("ILI").unwrap();
        assert_eq!(RunScale::Full.horizons(&ili), vec![24, 36, 48, 60]);
        assert_eq!(RunScale::Full.lookbacks(&ili), vec![36, 104]);
        let etth1 = tfb_datagen::profile_by_name("ETTh1").unwrap();
        assert_eq!(RunScale::Full.horizons(&etth1), vec![96, 192, 336, 720]);
        assert_eq!(RunScale::Full.lookbacks(&etth1), vec![96, 336, 512]);
    }

    #[test]
    fn reduced_horizons_fit_reduced_test_regions() {
        // Every default-scale (horizon, lookback) must fit the default-scale
        // test split of every profile, or table7_8 would silently skip rows.
        for profile in tfb_datagen::all_profiles() {
            let scale = RunScale::Default;
            let len = profile.len(scale.data_scale());
            let test_len = (len as f64 * profile.split.test).floor() as usize;
            for h in scale.horizons(&profile) {
                assert!(
                    test_len > h,
                    "{}: test region {test_len} cannot hold horizon {h}",
                    profile.name
                );
            }
            for lb in scale.lookbacks(&profile) {
                assert!(
                    len > lb + scale.horizons(&profile)[0],
                    "{}: lookback {lb} too long",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn eval_best_lookback_produces_an_outcome() {
        let profile = tfb_datagen::profile_by_name("ILI").unwrap();
        let series = profile.generate(tfb_datagen::Scale::TINY);
        let out = eval_best_lookback(&profile, &series, "Naive", 12, RunScale::Fast)
            .expect("naive always evaluates");
        assert_eq!(out.method, "Naive");
        assert!(out.metric(tfb_core::Metric::Mae).is_finite());
    }
}

//! The one rebar-style `BENCH_*.json` emitter.
//!
//! `bench_engine`, `bench_math` and `bench_serve` used to each carry a
//! private copy of the same `{name, value, unit}` entry struct and the
//! same document-building loop; this module is the single shared copy.
//! The schema is unchanged — a top-level `benchmarks` array of
//! `{name, value, unit}` objects — so downstream consumers of the
//! `BENCH_*.json` files see byte-compatible output.

use std::path::{Path, PathBuf};
use tfb_json::JsonValue;

/// One benchmark entry: a named scalar with a unit.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Slash-separated entry name, e.g. `engine/LR/batched_infer`.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit label (`ns`, `us/window`, `req/s`, `x`, `count`, …).
    pub unit: String,
}

/// Appends one entry (the push-style API the bench binaries grew up with).
pub fn push(
    entries: &mut Vec<BenchEntry>,
    name: impl Into<String>,
    value: f64,
    unit: impl Into<String>,
) {
    entries.push(BenchEntry {
        name: name.into(),
        value,
        unit: unit.into(),
    });
}

/// Builds the rebar-style document: `{"benchmarks": [{name, value, unit}…]}`.
pub fn bench_doc(entries: &[BenchEntry]) -> JsonValue {
    JsonValue::Object(vec![(
        "benchmarks".into(),
        JsonValue::Array(
            entries
                .iter()
                .map(|e| {
                    JsonValue::Object(vec![
                        ("name".into(), JsonValue::from(e.name.as_str())),
                        ("value".into(), JsonValue::Number(e.value)),
                        ("unit".into(), JsonValue::from(e.unit.as_str())),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Writes the entries to `path` (pretty JSON + trailing newline, exactly
/// the bytes the hand-rolled writers produced).
pub fn write_bench_json(path: &Path, entries: &[BenchEntry]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, bench_doc(entries).pretty() + "\n")
}

/// The workspace root (where the `BENCH_*.json` files live).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_matches_the_legacy_schema() {
        let mut entries = Vec::new();
        push(&mut entries, "engine/cores", 4.0, "count");
        push(&mut entries, "math/dot_n64_scalar", 21.5, "ns");
        let json = bench_doc(&entries).pretty();
        let parsed = JsonValue::parse(&json).expect("valid JSON");
        let benchmarks = parsed.get("benchmarks").unwrap().as_array().unwrap();
        assert_eq!(benchmarks.len(), 2);
        assert_eq!(
            benchmarks[0].get("name").unwrap().as_str(),
            Some("engine/cores")
        );
        assert_eq!(benchmarks[1].get("unit").unwrap().as_str(), Some("ns"));
        assert_eq!(benchmarks[1].get("value").unwrap().as_f64(), Some(21.5));
    }

    #[test]
    fn write_round_trips() {
        let path = std::env::temp_dir().join(format!("tfb_emit_{}.json", std::process::id()));
        let mut entries = Vec::new();
        push(&mut entries, "a/b", 1.0, "x");
        write_bench_json(&path, &entries).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.ends_with('\n'));
        assert!(JsonValue::parse(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}

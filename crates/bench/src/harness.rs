//! The suite runner behind `tfb bench ls|run|cmp|rank`.
//!
//! One measurement pipeline for every suite: discover the declarative
//! files, select cells by glob, execute each cell under the `tfb-obs`
//! span machinery, reduce samples to [`MeasurementRow`]s, and emit a
//! `tfb-obs/v1` manifest per suite — written next to the run and
//! auto-appended to the `.tfb-history/` store, so `tfb obs diff|trend|
//! gate` cover every suite uniformly.
//!
//! `rank` is the paper-claim surface: it regenerates a Table 6/7-style
//! per-characteristic (or per-dataset) method ranking purely from the
//! newest recorded measurement of every cell in history — no re-run
//! needed.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::engines::run_cell;
use crate::suite::{discover, glob_match, Suite};
use tfb_obs::history::RunHistory;
use tfb_obs::{Manifest, MeasurementRow};

/// Everything a `tfb bench run` invocation needs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Directory holding the suite files.
    pub suites_dir: PathBuf,
    /// Glob patterns against cell ids (`eval/etth1/*`); empty = all.
    pub patterns: Vec<String>,
    /// Restrict to one suite (by name or file stem) before globbing.
    pub suite: Option<String>,
    /// Where per-suite manifests (and BENCH renderings) are written.
    pub out_dir: PathBuf,
    /// History store to auto-record into; `None` disables recording.
    pub history: Option<PathBuf>,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            suites_dir: PathBuf::from("benches/suites"),
            patterns: Vec::new(),
            suite: None,
            out_dir: PathBuf::from("target/obs"),
            history: Some(PathBuf::from(".tfb-history")),
        }
    }
}

/// What one `run` did, per suite.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// The suite's name.
    pub suite: String,
    /// Cells executed (after filtering).
    pub cells_run: usize,
    /// Measurement rows captured.
    pub rows: usize,
    /// Where the manifest landed.
    pub manifest_path: PathBuf,
    /// History id, when recording was on.
    pub history_id: Option<String>,
}

/// Whether a suite matches the `--suite` filter (by name or file stem).
fn suite_selected(suite: &Suite, filter: &Option<String>) -> bool {
    match filter {
        None => true,
        Some(f) => {
            suite.name == *f
                || suite
                    .path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .is_some_and(|stem| stem == f)
        }
    }
}

/// Whether a cell id matches any pattern (no patterns = match all).
/// A pattern with no wildcard also selects whole suites by prefix, so
/// `tfb bench run eval/etth1` runs that suite without needing quotes.
fn cell_selected(id: &str, suite_name: &str, patterns: &[String]) -> bool {
    if patterns.is_empty() {
        return true;
    }
    patterns
        .iter()
        .any(|p| glob_match(p, id) || p == suite_name || id.starts_with(&format!("{p}/")))
}

/// Renders `tfb bench ls`: one line per suite, with engine, cell count,
/// provenance file, and description.
pub fn render_ls(suites: &[Suite]) -> String {
    let mut out = String::new();
    let name_w = suites
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let _ = writeln!(
        out,
        "{:<name_w$}  {:<6} {:>5}  file",
        "suite", "engine", "cells"
    );
    for s in suites {
        let _ = writeln!(
            out,
            "{:<name_w$}  {:<6} {:>5}  {}{}",
            s.name,
            s.engine.name(),
            s.cells.len(),
            s.path.display(),
            if s.description.is_empty() {
                String::new()
            } else {
                format!("  — {}", s.description)
            }
        );
    }
    out
}

/// File-system-safe label for a suite name (`eval/etth1` → `eval_etth1`).
fn safe_label(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Runs every selected suite and records each one's manifest.
///
/// Cells execute under a `bench.cell` span (dataset/method tagged), so
/// phase attribution in the manifest matches the serving and eval paths.
/// With the `obs` feature off (or `TFB_OBS=0`) the harness still
/// captures measurements — it assembles a minimal manifest itself — so
/// history coverage does not depend on the recorder being compiled in.
pub fn run(cfg: &RunConfig) -> Result<Vec<SuiteRun>, String> {
    let suites = discover(&cfg.suites_dir)?;
    let mut runs = Vec::new();
    for suite in &suites {
        if !suite_selected(suite, &cfg.suite) {
            continue;
        }
        let selected: Vec<_> = suite
            .cells
            .iter()
            .filter(|c| cell_selected(&c.id, &suite.name, &cfg.patterns))
            .collect();
        if selected.is_empty() {
            continue;
        }
        let label = safe_label(&suite.name);
        let obs_on = std::env::var("TFB_OBS").map(|v| v != "0").unwrap_or(true);
        let mut armed = false;
        if obs_on {
            let _ = std::fs::create_dir_all(&cfg.out_dir);
            let opts = tfb_obs::RunOptions {
                events_path: Some(cfg.out_dir.join(format!("{label}.events.jsonl"))),
            };
            armed = tfb_obs::start_run(opts).is_ok();
        }
        let started = std::time::Instant::now();
        let mut rows: Vec<MeasurementRow> = Vec::new();
        let mut first_err = None;
        for cell in &selected {
            let _span = tfb_obs::span!("bench.cell", dataset = cell.dataset, method = cell.method);
            println!("running {} …", cell.id);
            match run_cell(suite, cell) {
                Ok(cell_rows) => rows.extend(cell_rows),
                Err(e) => {
                    eprintln!("  FAILED: {e}");
                    first_err.get_or_insert(e);
                }
            }
        }
        rows.sort_by(|a, b| (&a.name, &a.quantity).cmp(&(&b.name, &b.quantity)));
        let meta = [
            ("bin", "tfb-bench".to_string()),
            ("suite", suite.name.clone()),
            ("git_rev", tfb_obs::git_rev().unwrap_or_default()),
            ("scale", format!("{:?}", crate::RunScale::from_env())),
            ("kernel", tfb_math::kernel::active_name().to_string()),
        ];
        // The recorder hands back the span/counter manifest when armed;
        // otherwise build a minimal one so measurements always record.
        let mut manifest = if armed {
            tfb_obs::finish_run(&meta).unwrap_or_default()
        } else {
            Manifest::default()
        };
        if manifest.meta.is_empty() {
            manifest.meta = meta
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect();
            manifest.cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            manifest.wall_ns = started.elapsed().as_nanos() as u64;
            manifest.peak_rss_bytes = tfb_obs::peak_rss_bytes();
        }
        manifest.measurements = rows;
        let manifest_path = cfg.out_dir.join(format!("{label}.manifest.json"));
        let _ = std::fs::create_dir_all(&cfg.out_dir);
        manifest
            .write(&manifest_path)
            .map_err(|e| format!("cannot write {}: {e}", manifest_path.display()))?;
        // The BENCH-style rendering of the same captured measurements.
        let entries = crate::measure::to_bench_entries(&manifest.measurements);
        let bench_path = cfg.out_dir.join(format!("{label}.bench.json"));
        crate::emit::write_bench_json(&bench_path, &entries)
            .map_err(|e| format!("cannot write {}: {e}", bench_path.display()))?;
        let history_id = match &cfg.history {
            None => None,
            Some(root) => {
                let mut h = RunHistory::open(root)?;
                Some(h.append(&manifest)?.id)
            }
        };
        println!(
            "{}: {} cell(s), {} measurement(s) -> {}{}",
            suite.name,
            selected.len(),
            manifest.measurements.len(),
            manifest_path.display(),
            history_id
                .as_deref()
                .map(|id| format!(" (history {})", &id[..8.min(id.len())]))
                .unwrap_or_default()
        );
        if let Some(e) = first_err {
            return Err(e);
        }
        runs.push(SuiteRun {
            suite: suite.name.clone(),
            cells_run: selected.len(),
            rows: manifest.measurements.len(),
            manifest_path,
            history_id,
        });
    }
    if runs.is_empty() {
        return Err(match (&cfg.suite, cfg.patterns.is_empty()) {
            (Some(s), _) => format!("no suite matches --suite {s:?}"),
            (None, false) => format!("no cells match {:?}", cfg.patterns),
            (None, true) => format!("no suites under {}", cfg.suites_dir.display()),
        });
    }
    Ok(runs)
}

/// Renders `tfb bench cmp`: the measurement rows of two manifests side
/// by side (medians), worst regression first.
pub fn render_cmp(base: &Manifest, new: &Manifest) -> String {
    let rows = tfb_obs::history::diff_manifests(base, new);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<52} {:>14} {:>14} {:>9}",
        "measurement", "base", "new", "delta"
    );
    let mut any = false;
    for r in rows
        .iter()
        .filter(|r| r.kind == tfb_obs::history::DiffKind::Measurement)
    {
        any = true;
        let fmt = |v: Option<f64>| match v {
            Some(v) if v.is_finite() => format!("{v:.3}"),
            _ => "n/a".to_string(),
        };
        let delta = match r.delta_pct() {
            Some(d) => format!("{d:+.1}%"),
            None => "n/a".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<52} {:>14} {:>14} {:>9}",
            r.name,
            fmt(r.base),
            fmt(r.new),
            delta
        );
    }
    if !any {
        out.push_str("(no measurement records on either side — run `tfb bench run` first)\n");
    }
    out
}

/// One method's aggregate within a ranking group.
#[derive(Debug, Clone, PartialEq)]
pub struct RankLine {
    /// Method name.
    pub method: String,
    /// Mean score over the group's cells.
    pub mean: f64,
    /// Cells aggregated.
    pub cells: usize,
    /// Wins: (dataset, horizon) units where this method scored best.
    pub wins: usize,
}

/// A ranking table: group label (characteristic or dataset) → lines
/// sorted best (lowest mean) first.
pub type Ranking = Vec<(String, Vec<RankLine>)>;

/// Regenerates a per-`by` method ranking from recorded measurements:
/// for every (cell, quantity==`metric`) the *newest* history record
/// wins; groups are the distinct values of `by` (`characteristic` or
/// `dataset`); wins count (dataset, horizon) units where the method has
/// the group's best score — the paper's Table 6 "Ranks" column.
pub fn rank_from_history(root: &Path, by: &str, metric: &str) -> Result<Ranking, String> {
    if !matches!(by, "characteristic" | "dataset") {
        return Err(format!("--by takes characteristic|dataset, got {by:?}"));
    }
    let history = RunHistory::open(root)?;
    if history.entries().is_empty() {
        return Err(format!(
            "history {} is empty — run `tfb bench run` first",
            root.display()
        ));
    }
    // Newest record per (cell, quantity) wins.
    let mut latest: BTreeMap<String, MeasurementRow> = BTreeMap::new();
    for entry in history.entries().iter().rev() {
        let parsed = history.load(entry)?;
        for row in parsed.manifest.measurements {
            if row.quantity != metric {
                continue;
            }
            latest.entry(row.name.clone()).or_insert(row);
        }
    }
    if latest.is_empty() {
        return Err(format!(
            "no {metric:?} measurements in {} — run an eval suite first",
            root.display()
        ));
    }
    // Group rows, then aggregate per method.
    let mut groups: BTreeMap<String, Vec<&MeasurementRow>> = BTreeMap::new();
    for row in latest.values() {
        let key = match by {
            "characteristic" => {
                if row.characteristic.is_empty() {
                    continue; // untagged cells can't join a characteristic group
                }
                row.characteristic.clone()
            }
            _ => row.dataset.clone(),
        };
        groups.entry(key).or_default().push(row);
    }
    let mut ranking = Vec::new();
    for (label, rows) in groups {
        let mut sums: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
        // Best score per (dataset, horizon) unit → a win for its method.
        let mut best: BTreeMap<(String, u64), (&str, f64)> = BTreeMap::new();
        for row in &rows {
            if !row.median.is_finite() {
                continue;
            }
            let e = sums.entry(row.method.as_str()).or_insert((0.0, 0));
            e.0 += row.median;
            e.1 += 1;
            let unit = (row.dataset.clone(), row.horizon);
            match best.get(&unit) {
                Some(&(_, score)) if score <= row.median => {}
                _ => {
                    best.insert(unit, (row.method.as_str(), row.median));
                }
            }
        }
        let mut wins: BTreeMap<&str, usize> = BTreeMap::new();
        for (m, _) in best.values() {
            *wins.entry(m).or_insert(0) += 1;
        }
        let mut lines: Vec<RankLine> = sums
            .into_iter()
            .map(|(m, (sum, n))| RankLine {
                method: m.to_string(),
                mean: sum / n.max(1) as f64,
                cells: n,
                wins: wins.get(m).copied().unwrap_or(0),
            })
            .collect();
        lines.sort_by(|a, b| {
            a.mean
                .partial_cmp(&b.mean)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ranking.push((label, lines));
    }
    Ok(ranking)
}

/// Renders a ranking as Table 6-style markdown.
pub fn render_rank(ranking: &Ranking, by: &str, metric: &str) -> String {
    let mut out = String::new();
    for (label, lines) in ranking {
        let _ = writeln!(out, "\n## {by} = {label} ({} method(s))", lines.len());
        let _ = writeln!(out, "| method | {metric} | cells | ranks |");
        let _ = writeln!(out, "|---|---|---|---|");
        for l in lines {
            let _ = writeln!(
                out,
                "| {} | {:.3} | {} | {} |",
                l.method, l.mean, l.cells, l.wins
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::parse_suite;

    #[test]
    fn selection_filters() {
        let doc = crate::toml::parse(
            "name = \"eval/x\"\nengine = \"eval\"\n[[entry]]\nname = \"a\"\n[[entry]]\nname = \"b\"",
        )
        .unwrap();
        let suite = parse_suite(&doc, Path::new("suites/x.toml")).unwrap();
        assert!(suite_selected(&suite, &None));
        assert!(suite_selected(&suite, &Some("eval/x".into())));
        assert!(suite_selected(&suite, &Some("x".into())), "file stem");
        assert!(!suite_selected(&suite, &Some("eval/y".into())));
        assert!(cell_selected("eval/x/a", "eval/x", &[]));
        assert!(cell_selected("eval/x/a", "eval/x", &["eval/*".into()]));
        assert!(
            cell_selected("eval/x/a", "eval/x", &["eval/x".into()]),
            "bare suite name"
        );
        assert!(!cell_selected("eval/x/a", "eval/x", &["math/*".into()]));
    }

    #[test]
    fn ls_lists_every_suite() {
        let doc = crate::toml::parse(
            "name = \"eval/x\"\nengine = \"eval\"\ndescription = \"demo\"\n[[entry]]\nname = \"a\"",
        )
        .unwrap();
        let suite = parse_suite(&doc, Path::new("suites/x.toml")).unwrap();
        let text = render_ls(&[suite]);
        assert!(text.contains("eval/x"), "{text}");
        assert!(text.contains("demo"), "{text}");
        assert!(text.contains("suites/x.toml"), "{text}");
    }

    #[test]
    fn rank_groups_and_wins_from_history() {
        let root = std::env::temp_dir().join(format!("tfb_rank_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let row = |cell: &str, method: &str, dataset: &str, ch: &str, v: f64| MeasurementRow {
            name: cell.into(),
            quantity: "msmape".into(),
            unit: String::new(),
            iters: 1,
            min: v,
            median: v,
            mean: v,
            stddev: 0.0,
            suite: "eval/t".into(),
            engine: "eval".into(),
            dataset: dataset.into(),
            method: method.into(),
            characteristic: ch.into(),
            horizon: 24,
        };
        let mut h = RunHistory::open(&root).unwrap();
        let m1 = Manifest {
            measurements: vec![
                row("eval/t/LR-ili", "LR", "ILI", "seasonality", 10.0),
                row("eval/t/NL-ili", "NLinear", "ILI", "seasonality", 12.0),
                row("eval/t/LR-etth1", "LR", "ETTh1", "trend", 30.0),
            ],
            ..Manifest::default()
        };
        h.append(&m1).unwrap();
        // A newer run improves NLinear: the newest record must win.
        let m2 = Manifest {
            measurements: vec![row("eval/t/NL-ili", "NLinear", "ILI", "seasonality", 8.0)],
            ..Manifest::default()
        };
        h.append(&m2).unwrap();

        let ranking = rank_from_history(&root, "characteristic", "msmape").unwrap();
        assert_eq!(ranking.len(), 2);
        let (label, lines) = &ranking[0];
        assert_eq!(label, "seasonality");
        assert_eq!(lines[0].method, "NLinear", "newest record (8.0) wins");
        assert_eq!(lines[0].wins, 1);
        assert_eq!(lines[1].method, "LR");
        assert_eq!(lines[1].wins, 0, "LR lost the ILI/24 unit");
        let text = render_rank(&ranking, "characteristic", "msmape");
        assert!(text.contains("## characteristic = seasonality"), "{text}");
        assert!(text.contains("| NLinear | 8.000 | 1 | 1 |"), "{text}");
        // Grouping by dataset uses the same records.
        let by_ds = rank_from_history(&root, "dataset", "msmape").unwrap();
        assert!(by_ds.iter().any(|(l, _)| l == "ILI"));
        assert!(rank_from_history(&root, "by-vibes", "msmape").is_err());
        let _ = std::fs::remove_dir_all(&root);
    }
}

//! Declarative benchmark suites: the rebar-style definition layer.
//!
//! A suite is a TOML (or JSON) file under `benches/suites/` describing a
//! grid of benchmark *cells* — dataset profile × characteristic ×
//! horizon × method × workload — plus an `engine` field selecting which
//! workload family executes them:
//!
//! ```toml
//! name = "eval/etth1"
//! engine = "eval"
//! description = "Rolling evaluation on the ETTh1 profile"
//!
//! [defaults]
//! dataset = "ETTh1"
//! characteristic = "trend"
//! iters = 3
//!
//! [[entry]]
//! name = "LR-h24"
//! method = "LR"
//! horizon = 24
//! ```
//!
//! Every `[[entry]]` is merged over `[defaults]`; a cell's id is
//! `<suite name>/<entry name>` (e.g. `eval/etth1/LR-h24`), which is what
//! `tfb bench run` glob patterns select on and what measurement records
//! carry as their `name`.

use std::path::{Path, PathBuf};
use tfb_json::JsonValue;

/// Which workload family executes a suite's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Dataset × method rolling/fixed evaluation (the paper's protocol).
    Eval,
    /// tfb-math kernel microbenchmarks (scalar vs dispatched path).
    Math,
    /// Closed-loop load against the forecast server.
    Serve,
}

impl Engine {
    /// Parses the suite file's `engine` field.
    pub fn parse(s: &str) -> Result<Engine, String> {
        match s {
            "eval" => Ok(Engine::Eval),
            "math" => Ok(Engine::Math),
            "serve" => Ok(Engine::Serve),
            other => Err(format!("unknown engine {other:?} (eval|math|serve)")),
        }
    }

    /// Display name (matches the `engine` field's spelling).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Eval => "eval",
            Engine::Math => "math",
            Engine::Serve => "serve",
        }
    }
}

/// One benchmark cell, fully resolved (entry merged over defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Full id: `<suite name>/<entry name>`.
    pub id: String,
    /// Entry name within the suite.
    pub name: String,
    /// Dataset profile name (eval) / data label (serve).
    pub dataset: String,
    /// Method under test.
    pub method: String,
    /// Forecast horizon.
    pub horizon: usize,
    /// Characteristic tag the cell's dataset exercises (Table 6 axis).
    pub characteristic: String,
    /// Look-back window; 0 derives `H = 1.25 F` (the paper's default).
    pub lookback: usize,
    /// Rolling-window cap (0 = every window).
    pub max_windows: usize,
    /// Generated series length cap.
    pub max_len: usize,
    /// Generated series dimension cap.
    pub max_dim: usize,
    /// Timing repetitions per cell (min/median/mean/stddev are over these).
    pub iters: usize,
    /// Deep-method training epochs.
    pub epochs: usize,
    /// Eval engine: rolling stride (history grows this many steps per
    /// window; 1 is the paper's reference).
    pub stride: usize,
    /// Eval engine: normalization scheme (`ZScore`, `MinMax`, `None`).
    pub normalization: String,
    /// Eval engine: multi-step strategy — `dms` (direct, the default) or
    /// `ims` (iterated one-step; LR only).
    pub multistep: String,
    /// Eval engine: inference mode — `batched` (one `predict_batch`
    /// over all windows, the default) or `sequential` (one `predict`
    /// per window; the pre-batching reference path).
    pub inference: String,
    /// Math engine: which kernel (`dot`, `dot_skip`, `axpy`, `gemm`).
    pub workload: String,
    /// Math engine: vector length / GEMM output width.
    pub n: usize,
    /// Math engine: GEMM reduction depth.
    pub depth: usize,
    /// Serve engine: closed-loop client count.
    pub clients: usize,
    /// Serve engine: leg duration in milliseconds.
    pub duration_ms: u64,
    /// Serve engine: shard count.
    pub shards: usize,
    /// Serve engine: fleet size — 1 (default) load-tests a single model
    /// over `POST /forecast`; >1 publishes this many models into a
    /// throwaway registry and drives zipfian multi-model traffic over
    /// `POST /v1/forecast/{model}`.
    pub models: usize,
    /// Serve engine: fleet LRU capacity (0 = hold every model
    /// resident). A cap below `models` forces cold loads and evictions
    /// — the fleet-churn regime the `serve/fleet` rows measure.
    pub resident_cap: usize,
}

/// A parsed suite file.
#[derive(Debug, Clone)]
pub struct Suite {
    /// Suite name, conventionally `<engine>/<topic>` (e.g. `eval/etth1`).
    pub name: String,
    /// Executing engine.
    pub engine: Engine,
    /// One-line description shown by `tfb bench ls`.
    pub description: String,
    /// The file this suite came from.
    pub path: PathBuf,
    /// Resolved cells, in file order.
    pub cells: Vec<Cell>,
}

fn get_str(v: &JsonValue, key: &str, default: &str) -> String {
    v.get(key)
        .and_then(|s| s.as_str())
        .unwrap_or(default)
        .to_string()
}

fn get_usize(entry: &JsonValue, defaults: &JsonValue, key: &str, fallback: usize) -> usize {
    entry
        .get(key)
        .or_else(|| defaults.get(key))
        .and_then(|v| v.as_usize())
        .unwrap_or(fallback)
}

fn get_merged_str(entry: &JsonValue, defaults: &JsonValue, key: &str, fallback: &str) -> String {
    entry
        .get(key)
        .or_else(|| defaults.get(key))
        .and_then(|s| s.as_str())
        .unwrap_or(fallback)
        .to_string()
}

/// Parses a suite document (the JSON tree shared by `.toml` and `.json`
/// files) into a [`Suite`].
pub fn parse_suite(doc: &JsonValue, path: &Path) -> Result<Suite, String> {
    let name = doc
        .get("name")
        .and_then(|s| s.as_str())
        .ok_or("suite has no \"name\"")?
        .to_string();
    let engine = Engine::parse(
        doc.get("engine")
            .and_then(|s| s.as_str())
            .ok_or("suite has no \"engine\"")?,
    )?;
    let description = get_str(doc, "description", "");
    let empty = JsonValue::Object(vec![]);
    let defaults = doc.get("defaults").unwrap_or(&empty);
    let entries = doc
        .get("entry")
        .and_then(|v| v.as_array())
        .ok_or("suite has no [[entry]] tables")?;
    if entries.is_empty() {
        return Err("suite has no [[entry]] tables".into());
    }
    let mut cells = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let cell_name = entry
            .get("name")
            .and_then(|s| s.as_str())
            .ok_or(format!("entry #{} has no \"name\"", i + 1))?
            .to_string();
        if cells.iter().any(|c: &Cell| c.name == cell_name) {
            return Err(format!("duplicate entry name {cell_name:?}"));
        }
        cells.push(Cell {
            id: format!("{name}/{cell_name}"),
            name: cell_name,
            dataset: get_merged_str(entry, defaults, "dataset", ""),
            method: get_merged_str(entry, defaults, "method", ""),
            horizon: get_usize(entry, defaults, "horizon", 24),
            characteristic: get_merged_str(entry, defaults, "characteristic", ""),
            lookback: get_usize(entry, defaults, "lookback", 0),
            max_windows: get_usize(entry, defaults, "max_windows", 8),
            max_len: get_usize(entry, defaults, "max_len", 800),
            max_dim: get_usize(entry, defaults, "max_dim", 4),
            iters: get_usize(entry, defaults, "iters", 3).max(1),
            epochs: get_usize(entry, defaults, "epochs", 2),
            stride: get_usize(entry, defaults, "stride", 1).max(1),
            normalization: get_merged_str(entry, defaults, "normalization", "ZScore"),
            multistep: get_merged_str(entry, defaults, "multistep", "dms"),
            inference: get_merged_str(entry, defaults, "inference", "batched"),
            workload: get_merged_str(entry, defaults, "workload", "dot"),
            n: get_usize(entry, defaults, "n", 256),
            depth: get_usize(entry, defaults, "depth", 24),
            clients: get_usize(entry, defaults, "clients", 4),
            duration_ms: get_usize(entry, defaults, "duration_ms", 400) as u64,
            shards: get_usize(entry, defaults, "shards", 1),
            models: get_usize(entry, defaults, "models", 1).max(1),
            resident_cap: get_usize(entry, defaults, "resident_cap", 0),
        });
    }
    Ok(Suite {
        name,
        engine,
        description,
        path: path.to_path_buf(),
        cells,
    })
}

/// Loads one suite file, dispatching on extension (`.toml` or `.json`).
pub fn load_suite(path: &Path) -> Result<Suite, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = match path.extension().and_then(|e| e.to_str()) {
        Some("toml") => crate::toml::parse(&text),
        Some("json") => JsonValue::parse(&text).map_err(|e| e.to_string()),
        other => Err(format!("unsupported suite extension {other:?}")),
    }
    .map_err(|e| format!("{}: {e}", path.display()))?;
    parse_suite(&doc, path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Discovers every suite under `dir` (files named `*.toml` / `*.json`,
/// sorted by file name so listings are stable). A malformed suite file is
/// an error, not a skip — a typo'd suite silently vanishing from `tfb
/// bench ls` would be worse than failing loudly.
pub fn discover(dir: &Path) -> Result<Vec<Suite>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read suite dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("toml") | Some("json")
            )
        })
        .collect();
    paths.sort();
    let mut suites = Vec::new();
    for path in paths {
        suites.push(load_suite(&path)?);
    }
    Ok(suites)
}

/// Glob match where `*` matches any run of characters (including `/`,
/// so `eval/*` selects every cell of every `eval/…` suite) and `?`
/// matches exactly one.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Iterative backtracking matcher: only the most recent `*` needs
    // revisiting, so this is O(p·t) worst case with no recursion.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_ti) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> JsonValue {
        crate::toml::parse(
            r#"
name = "eval/etth1"
engine = "eval"
description = "ETTh1 rolling grid"

[defaults]
dataset = "ETTh1"
characteristic = "trend"
horizon = 24
iters = 2

[[entry]]
name = "LR-h24"
method = "LR"

[[entry]]
name = "NLinear-h48"
method = "NLinear"
horizon = 48
"#,
        )
        .expect("toml parses")
    }

    #[test]
    fn entries_merge_over_defaults() {
        let suite = parse_suite(&sample_doc(), Path::new("x.toml")).expect("suite");
        assert_eq!(suite.name, "eval/etth1");
        assert_eq!(suite.engine, Engine::Eval);
        assert_eq!(suite.cells.len(), 2);
        let lr = &suite.cells[0];
        assert_eq!(lr.id, "eval/etth1/LR-h24");
        assert_eq!(lr.dataset, "ETTh1");
        assert_eq!(lr.horizon, 24);
        assert_eq!(lr.iters, 2);
        let nl = &suite.cells[1];
        assert_eq!(nl.horizon, 48, "entry overrides the default");
        assert_eq!(nl.characteristic, "trend", "default carries through");
        assert_eq!(lr.stride, 1, "ablation knobs default to the paper's");
        assert_eq!(lr.normalization, "ZScore");
        assert_eq!(lr.multistep, "dms");
        assert_eq!(lr.inference, "batched");
        assert_eq!(lr.models, 1, "single-model serving is the default");
        assert_eq!(lr.resident_cap, 0);
    }

    #[test]
    fn missing_required_fields_error() {
        let doc = crate::toml::parse("engine = \"eval\"\n[[entry]]\nname = \"x\"").unwrap();
        assert!(parse_suite(&doc, Path::new("x.toml")).is_err(), "no name");
        let doc = crate::toml::parse("name = \"a\"\nengine = \"quantum\"").unwrap();
        assert!(
            parse_suite(&doc, Path::new("x.toml")).is_err(),
            "bad engine"
        );
        let doc = crate::toml::parse("name = \"a\"\nengine = \"eval\"").unwrap();
        assert!(
            parse_suite(&doc, Path::new("x.toml")).is_err(),
            "no entries"
        );
    }

    #[test]
    fn json_suites_parse_identically() {
        let json = r#"{
  "name": "eval/etth1",
  "engine": "eval",
  "defaults": {"dataset": "ETTh1", "horizon": 24},
  "entry": [{"name": "LR-h24", "method": "LR"}]
}"#;
        let doc = JsonValue::parse(json).expect("json");
        let suite = parse_suite(&doc, Path::new("x.json")).expect("suite");
        assert_eq!(suite.cells[0].id, "eval/etth1/LR-h24");
        assert_eq!(suite.cells[0].dataset, "ETTh1");
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("eval/*", "eval/etth1/LR-h24"), "* crosses /");
        assert!(glob_match("*", "anything"));
        assert!(glob_match("eval/*/LR-*", "eval/etth1/LR-h24"));
        assert!(!glob_match("eval/*", "math/kernels/dot-64"));
        assert!(glob_match("eval/etth1/LR-h24", "eval/etth1/LR-h24"));
        assert!(!glob_match("eval/etth1/LR-h24", "eval/etth1/LR-h2"));
        assert!(glob_match("e?al/*", "eval/x"));
        assert!(!glob_match("e?al/*", "eeval/x"));
        assert!(glob_match("*h48", "eval/etth1/NLinear-h48"));
        assert!(!glob_match("", "x"));
        assert!(glob_match("**", "x/y"));
    }

    #[test]
    fn discover_sorts_and_errors_loudly() {
        let dir = std::env::temp_dir().join(format!("tfb_suites_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("b.toml"),
            "name = \"eval/b\"\nengine = \"eval\"\n[[entry]]\nname = \"x\"\nmethod = \"LR\"\ndataset = \"ILI\"",
        )
        .unwrap();
        std::fs::write(
            dir.join("a.json"),
            r#"{"name": "math/a", "engine": "math", "entry": [{"name": "d"}]}"#,
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let suites = discover(&dir).expect("discover");
        assert_eq!(suites.len(), 2);
        assert_eq!(suites[0].name, "math/a", "sorted by file name");
        assert_eq!(suites[1].name, "eval/b");
        // A malformed suite is an error, not a silent skip.
        std::fs::write(dir.join("c.toml"), "name = oops").unwrap();
        assert!(discover(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Table 6: univariate forecasting results — MASE, MSMAPE and Ranks for 21
//! methods, grouped by the presence/absence of each characteristic.
//!
//! Protocol (Section 5.1.2): fixed forecasting, horizon `F` per frequency
//! group (Table 4), look-back `H = 1.25 F`, one model per series. The shape
//! to reproduce: simple ML methods (LR, RF) collect the most Ranks even
//! when deep methods have the better average error, and every method is
//! noticeably better on series *without* shifting than with it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tfb_bench::{results_dir, RunScale, UTSF_METHODS};
use tfb_characteristics::CharacteristicVector;
use tfb_core::eval::{evaluate, EvalSettings};
use tfb_core::method::build_method;
use tfb_core::Metric;
use tfb_data::MultiSeries;
use tfb_datagen::univariate::UnivariateArchive;

struct SeriesResult {
    tags: [bool; 5], // seasonality, trend, stationarity, transition, shifting
    /// method -> (mase, msmape)
    scores: BTreeMap<&'static str, (f64, f64)>,
}

const CHARACTERISTICS: [&str; 5] = [
    "Seasonality",
    "Trend",
    "Stationarity",
    "Transition",
    "Shifting",
];

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let divisor = match scale {
        RunScale::Full => 1,
        RunScale::Default => 80,
        RunScale::Fast => 400,
    };
    let archive = UnivariateArchive::generate(divisor, 7);
    println!(
        "Table 6 — univariate study over {} series x {} methods (fixed forecasting, H = 1.25F)",
        archive.len(),
        UTSF_METHODS.len()
    );
    let results: Mutex<Vec<SeriesResult>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= archive.len() {
                    break;
                }
                let s = &archive.series[i];
                let horizon = UnivariateArchive::horizon_for(s.frequency);
                let v = CharacteristicVector::of_series(s);
                let t = v.tag(Default::default());
                let tags = [
                    t.seasonality,
                    t.trend,
                    t.stationary,
                    t.transition,
                    t.shifting,
                ];
                let multi = MultiSeries::from_uni(s);
                let mut scores = BTreeMap::new();
                for method_name in UTSF_METHODS {
                    let settings = EvalSettings::fixed(horizon);
                    let Ok(mut method) = build_method(
                        method_name,
                        settings.lookback,
                        horizon,
                        1,
                        Some(scale.train_config()),
                    ) else {
                        continue;
                    };
                    if let Ok(out) = evaluate(&mut method, &multi, &settings) {
                        scores.insert(
                            method_name,
                            (out.metric(Metric::Mase), out.metric(Metric::Msmape)),
                        );
                    }
                }
                results.lock().unwrap().push(SeriesResult { tags, scores });
            });
        }
    });
    let results = results.into_inner().unwrap();

    // Aggregate per characteristic presence/absence.
    let mut csv = String::from("characteristic,present,method,mase,msmape,ranks\n");
    for (ci, cname) in CHARACTERISTICS.iter().enumerate() {
        for present in [true, false] {
            let group: Vec<&SeriesResult> =
                results.iter().filter(|r| r.tags[ci] == present).collect();
            if group.is_empty() {
                continue;
            }
            // Mean MASE/MSMAPE per method over finite scores, plus Ranks
            // (count of series where the method has the best MSMAPE).
            let mut sums: BTreeMap<&str, (f64, f64, usize)> = BTreeMap::new();
            let mut wins: BTreeMap<&str, usize> = BTreeMap::new();
            for r in &group {
                let mut best: Option<(&str, f64)> = None;
                for (&m, &(mase, msmape)) in &r.scores {
                    if mase.is_finite() && msmape.is_finite() {
                        let e = sums.entry(m).or_insert((0.0, 0.0, 0));
                        e.0 += mase;
                        e.1 += msmape;
                        e.2 += 1;
                    }
                    if msmape.is_finite() && best.is_none_or(|(_, b)| msmape < b) {
                        best = Some((m, msmape));
                    }
                }
                if let Some((m, _)) = best {
                    *wins.entry(m).or_insert(0) += 1;
                }
            }
            println!(
                "\n## {cname} = {} ({} series)",
                if present { "yes" } else { "no" },
                group.len()
            );
            println!("| method | mase | msmape | ranks |");
            println!("|---|---|---|---|");
            // Order by msmape ascending for readability.
            let mut rows: Vec<(&str, f64, f64, usize)> = sums
                .iter()
                .map(|(&m, &(mase, msm, n))| {
                    let n = n.max(1) as f64;
                    (m, mase / n, msm / n, wins.get(m).copied().unwrap_or(0))
                })
                .collect();
            rows.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
            for (m, mase, msmape, ranks) in rows {
                println!("| {m} | {mase:.3} | {msmape:.3} | {ranks} |");
                csv.push_str(&format!("{cname},{present},{m},{mase},{msmape},{ranks}\n"));
            }
        }
    }
    let path = results_dir().join("table6.csv");
    std::fs::write(&path, csv).expect("write table6.csv");
    println!("\nwrote {}", path.display());
}

//! Figure 3: box plots of the normalized characteristic values across the
//! TFB multivariate collection versus the TSlib subset. The shape to
//! reproduce: the TFB boxes are wider (more diverse characteristic
//! coverage) on every characteristic.
//!
//! Emits the five-number summary (min, Q1, median, Q3, max) per
//! characteristic for both collections.

use tfb_bench::RunScale;
use tfb_core::data::DatasetCharacteristics;
use tfb_math::stats::{min_max_normalize, quantile};

/// The datasets TSlib ships (the paper's most-used competitor).
const TSLIB: [&str; 9] = [
    "ETTh1",
    "ETTh2",
    "ETTm1",
    "ETTm2",
    "Electricity",
    "Traffic",
    "Weather",
    "Exchange",
    "ILI",
];

fn five_number(xs: &[f64]) -> [f64; 5] {
    [
        quantile(xs, 0.0).unwrap_or(f64::NAN),
        quantile(xs, 0.25).unwrap_or(f64::NAN),
        quantile(xs, 0.5).unwrap_or(f64::NAN),
        quantile(xs, 0.75).unwrap_or(f64::NAN),
        quantile(xs, 1.0).unwrap_or(f64::NAN),
    ]
}

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env().data_scale();
    let profiles = tfb_datagen::all_profiles();
    let mut rows: Vec<(&str, [f64; 6])> = Vec::new();
    for p in &profiles {
        let series = p.generate(scale);
        let c = DatasetCharacteristics::compute(&series, 4);
        rows.push((p.name, c.as_vec()));
    }
    let names = [
        "trend",
        "seasonality",
        "stationarity",
        "shifting",
        "transition",
        "correlation",
    ];
    println!("Figure 3 — characteristic spread, TFB (25 datasets) vs TSlib subset (9):\n");
    println!("| characteristic | collection | min | Q1 | median | Q3 | max | IQR |");
    println!("|---|---|---|---|---|---|---|---|");
    for (ci, cname) in names.iter().enumerate() {
        // Normalize jointly so both collections share the scale.
        let all: Vec<f64> = rows.iter().map(|(_, v)| v[ci]).collect();
        let normed = min_max_normalize(&all);
        let tfb_vals: Vec<f64> = normed.clone();
        let tslib_vals: Vec<f64> = rows
            .iter()
            .zip(&normed)
            .filter(|((name, _), _)| TSLIB.contains(name))
            .map(|(_, &v)| v)
            .collect();
        for (label, vals) in [("TFB", &tfb_vals), ("TSlib", &tslib_vals)] {
            let f = five_number(vals);
            println!(
                "| {cname} | {label} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
                f[0],
                f[1],
                f[2],
                f[3],
                f[4],
                f[3] - f[1]
            );
        }
    }
    // Paper claim: TFB spans a wider range on every characteristic.
    let mut wider = 0;
    for ci in 0..6 {
        let all: Vec<f64> = rows.iter().map(|(_, v)| v[ci]).collect();
        let tslib: Vec<f64> = rows
            .iter()
            .filter(|(name, _)| TSLIB.contains(name))
            .map(|(_, v)| v[ci])
            .collect();
        let range = |xs: &[f64]| {
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - xs.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        if range(&all) >= range(&tslib) {
            wider += 1;
        }
    }
    println!("\nTFB spans at least the TSlib range on {wider}/6 characteristics");
}

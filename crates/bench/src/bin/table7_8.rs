//! Tables 7 and 8: multivariate forecasting results — MAE and MSE on
//! normalized data for 14 methods across all 25 datasets and four horizons
//! per dataset (rolling forecasting).
//!
//! As in the paper, datasets are ordered by increasing trend strength and
//! split into two tables at the midpoint. The shape to reproduce: no single
//! winner; transformers ahead on the weak-trend (seasonal) half,
//! linear-based methods ahead on the strong-trend half; VAR/LR competitive
//! on several datasets; occasional `nan`/unusable cells for VAR on the
//! widest datasets.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tfb_bench::{emit, eval_best_lookback, RunScale, MTSF_METHODS};
use tfb_core::data::DatasetCharacteristics;
use tfb_core::report::ResultTable;
use tfb_core::Metric;

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let profiles = tfb_datagen::all_profiles();
    // Score trend strength to order datasets as the paper does.
    let mut scored: Vec<(f64, tfb_datagen::DatasetProfile)> = profiles
        .into_iter()
        .map(|p| {
            let series = p.generate(tfb_datagen::Scale {
                max_len: 1_000,
                max_dim: 3,
            });
            let c = DatasetCharacteristics::compute(&series, 2);
            (c.trend, p)
        })
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    // Job grid: dataset x method x horizon.
    struct Job {
        profile: tfb_datagen::DatasetProfile,
        method: &'static str,
        horizon: usize,
    }
    let mut jobs = Vec::new();
    for (_, p) in &scored {
        for &h in &scale.horizons(p) {
            for m in MTSF_METHODS {
                jobs.push(Job {
                    profile: p.clone(),
                    method: m,
                    horizon: h,
                });
            }
        }
    }
    println!(
        "Tables 7-8 — {} datasets x {} methods, rolling forecasting ({} jobs)",
        scored.len(),
        MTSF_METHODS.len(),
        jobs.len()
    );
    let table = Mutex::new(ResultTable::default());
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    // Generate each dataset once up front (cheap relative to evaluation).
    let datasets: std::collections::BTreeMap<&str, tfb_data::MultiSeries> = scored
        .iter()
        .map(|(_, p)| (p.name, p.generate(scale.data_scale())))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let series = &datasets[job.profile.name];
                if let Some(out) =
                    eval_best_lookback(&job.profile, series, job.method, job.horizon, scale)
                {
                    table.lock().unwrap().push(&out);
                }
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if d.is_multiple_of(50) {
                    eprintln!("  {d}/{} jobs done", jobs.len());
                }
            });
        }
    });
    let table = table.into_inner().unwrap();
    println!("\n### MAE (datasets ordered by increasing trend strength)\n");
    emit(&table, "table7_8_mae", Metric::Mae);
    println!("\n### MSE\n");
    emit(&table, "table7_8_mse", Metric::Mse);
}

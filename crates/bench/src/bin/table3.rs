//! Table 3: property comparison of time-series forecasting benchmarks.
//!
//! Static metadata — reproduced verbatim from the paper so the comparison
//! travels with the code. The TFB row is what this repository implements.

const BENCHMARKS: [(&str, [&str; 7]); 9] = [
    ("M3", ["yes", "no", "yes", "yes", "no", "no", "no"]),
    ("M4", ["yes", "no", "yes", "yes", "yes", "no", "no"]),
    (
        "LTSF-Linear",
        ["no", "yes", "no", "no", "yes", "no", "partial"],
    ),
    ("TSlib", ["yes", "yes", "no", "no", "yes", "no", "partial"]),
    (
        "BasicTS",
        ["no", "yes", "no", "yes", "yes", "no", "partial"],
    ),
    (
        "BasicTS+",
        ["no", "yes", "no", "no", "yes", "partial", "partial"],
    ),
    ("Monash", ["yes", "no", "yes", "yes", "no", "no", "partial"]),
    ("Libra", ["yes", "no", "yes", "yes", "no", "no", "partial"]),
    (
        "TFB (ours)",
        ["yes", "yes", "yes", "yes", "yes", "yes", "yes"],
    ),
];

const PROPERTIES: [&str; 7] = [
    "univariate",
    "multivariate",
    "statistical",
    "machine learning",
    "deep learning",
    "data taxonomy",
    "flexible pipeline",
];

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    println!("Table 3 — benchmark property comparison:\n");
    print!("| benchmark |");
    for p in PROPERTIES {
        print!(" {p} |");
    }
    println!();
    print!("|---|");
    for _ in PROPERTIES {
        print!("---|");
    }
    println!();
    for (name, props) in BENCHMARKS {
        print!("| {name} |");
        for p in props {
            print!(" {p} |");
        }
        println!();
    }
    println!("\nThis repository implements the full TFB row:");
    println!(
        "  univariate + multivariate evaluation, {} statistical, {} ML and {} DL methods,",
        tfb_core::method::STAT_METHODS.len(),
        tfb_core::method::ML_METHODS.len(),
        tfb_core::method::DL_METHODS.len(),
    );
    println!("  a six-characteristic data taxonomy, and the config-driven pipeline of tfb-core.");
}

//! Figure 2: domain coverage of existing multivariate benchmarks versus
//! TFB. The competitor rosters are static metadata from the paper; the TFB
//! row is computed from this repository's dataset registry.

use std::collections::BTreeMap;
use tfb_datagen::all_profiles;

/// Datasets (by domain) included in each existing benchmark, per Figure 2.
const COMPETITORS: [(&str, &[(&str, usize)]); 4] = [
    (
        "TSlib",
        &[
            ("Traffic", 1),
            ("Electricity", 5),
            ("Environment", 1),
            ("Economic", 1),
            ("Health", 1),
        ],
    ),
    (
        "LTSF-Linear",
        &[
            ("Traffic", 1),
            ("Electricity", 5),
            ("Environment", 1),
            ("Economic", 1),
            ("Health", 1),
        ],
    ),
    (
        "BasicTS",
        &[
            ("Traffic", 6),
            ("Electricity", 5),
            ("Environment", 1),
            ("Economic", 1),
        ],
    ),
    (
        "BasicTS+",
        &[
            ("Traffic", 8),
            ("Electricity", 6),
            ("Environment", 1),
            ("Economic", 1),
        ],
    ),
];

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    println!("Figure 2 — multivariate domain coverage per benchmark:\n");
    for (name, domains) in COMPETITORS {
        let total: usize = domains.iter().map(|(_, n)| n).sum();
        println!(
            "{name:<12} {total:>2} datasets over {} domains: {domains:?}",
            domains.len()
        );
    }
    let mut ours: BTreeMap<&str, usize> = BTreeMap::new();
    for p in all_profiles() {
        *ours.entry(p.domain.label()).or_insert(0) += 1;
    }
    let total: usize = ours.values().sum();
    println!(
        "{:<12} {total:>2} datasets over {} domains: {:?}",
        "TFB (ours)",
        ours.len(),
        ours.iter().collect::<Vec<_>>()
    );
    assert_eq!(total, 25);
    assert_eq!(ours.len(), 10);
}

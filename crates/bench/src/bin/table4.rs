//! Table 4: statistics of the univariate archive — per-frequency series
//! counts and how many series carry each characteristic tag.
//!
//! The full archive holds 8,068 series; `TFB_FULL=1` generates and scores
//! all of them, the default uses a 1/20 sample (the per-characteristic
//! *proportions* are what the table is about).

use tfb_bench::RunScale;
use tfb_characteristics::CharacteristicVector;
use tfb_datagen::univariate::{UnivariateArchive, SPECS};

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let divisor = match scale {
        RunScale::Full => 1,
        RunScale::Default => 20,
        RunScale::Fast => 100,
    };
    let archive = UnivariateArchive::generate(divisor, 7);
    println!(
        "Table 4 — univariate archive statistics (divisor {divisor}, {} series; paper: 8,068):\n",
        archive.len()
    );
    println!("| frequency | #series | seasonality | trend | shifting | transition | stationarity | |TS|<300 | F |");
    println!("|---|---|---|---|---|---|---|---|---|");
    let mut totals = [0usize; 7];
    for spec in &SPECS {
        let series: Vec<_> = archive
            .series
            .iter()
            .filter(|s| s.frequency == spec.frequency)
            .collect();
        let mut counts = [0usize; 6];
        for s in &series {
            let v = CharacteristicVector::of_series(s);
            let t = v.tag(Default::default());
            for (i, flag) in [
                t.seasonality,
                t.trend,
                t.shifting,
                t.transition,
                t.stationary,
                s.len() < 300,
            ]
            .into_iter()
            .enumerate()
            {
                if flag {
                    counts[i] += 1;
                }
            }
        }
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            spec.frequency.label(),
            series.len(),
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            counts[5],
            spec.horizon,
        );
        totals[0] += series.len();
        for (t, c) in totals[1..].iter_mut().zip(counts) {
            *t += c;
        }
    }
    println!(
        "| Total | {} | {} | {} | {} | {} | {} | {} | |",
        totals[0], totals[1], totals[2], totals[3], totals[4], totals[5], totals[6]
    );
}

//! `bench_serve`: closed-loop load test of the forecast server.
//!
//! Trains a small LR artifact in-process and drives it over real TCP
//! with N keep-alive clients that each send the next `POST /forecast`
//! the moment the previous reply lands. Three kinds of legs run, all
//! against freshly started servers on ephemeral ports:
//!
//! 1. **primary** — the deadline-driven sharded configuration (shard
//!    count = the largest of the sweep; `--shards` overrides). Reported
//!    under the historical `serve/*` names so `tfb obs gate` keeps
//!    comparing one continuous series, plus `serve/shards`, per-shard
//!    batch fill and steal counts, and (with the default
//!    `alloc-track` feature) allocator calls/bytes per request.
//! 2. **legacy** — one shard with `coalesce_hint == budget == 2 ms`,
//!    which reproduces the old fixed-timer coalescer byte for byte.
//!    Reported as `serve/legacy/*`; the `serve/speedup_vs_legacy`
//!    entry is the before/after ratio measured live on this machine,
//!    not read from history.
//! 3. **sweep** — one leg per requested shard count (`--shards 1,2,4`
//!    or a power-of-two ladder up to the core count by default),
//!    reported as `serve/sweep/s{N}/*` for scaling curves.
//! 4. **fleet** — a multi-model leg: 8 LR artifacts published into a
//!    throwaway registry, served as one fleet with a 3-model resident
//!    cap, under zipfian (α = 1.0) routed traffic. Reported as
//!    `serve/fleet/*`: steady-state req/s, resident-cache hit rate,
//!    cold-load p99, and eviction count — the numbers that size the
//!    LRU for multi-tenant serving.
//!
//! The primary leg runs first so its phase attribution and batch-size
//! histogram come from an uncontaminated registry; later legs report
//! only per-leg counter deltas and client-side latencies.
//!
//! Interpreting the numbers: the model (LR on a TINY profile) is cheap
//! by design — the benchmark measures the serving stack (HTTP parsing,
//! coalescing, deadline close, stealing, backpressure), not the
//! forecaster. Batch sizes above 1 under concurrent load demonstrate
//! the coalescer is actually amortizing `predict_batch` calls; a shed
//! rate of zero just means the bounded queue never filled at this
//! client count. Results are printed and written to `BENCH_serve.json`
//! at the workspace root in the same rebar-style `{name, value, unit}`
//! schema as `BENCH_engine.json`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use tfb_artifact::{fit, ServableModel};
use tfb_bench::emit::{push, workspace_root, write_bench_json, BenchEntry};
use tfb_bench::RunScale;
use tfb_data::{ChronoSplit, Normalization, Normalizer};
use tfb_json::JsonValue;
use tfb_serve::{serve, CoalescerConfig, ServerConfig};

#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: tfb_obs::alloc::CountingAllocator = tfb_obs::alloc::CountingAllocator;

const LOOKBACK: usize = 24;
const HORIZON: usize = 8;

/// Fleet leg shape: models in the registry, LRU capacity (deliberately
/// below the model count so the leg exercises eviction and cold loads),
/// and the zipf exponent of the per-request model choice.
const FLEET_MODELS: usize = 8;
const FLEET_RESIDENT_CAP: usize = 3;
const FLEET_ALPHA: f64 = 1.0;

/// Trains one LR artifact at the given horizon. All artifacts share
/// `LOOKBACK`, so one request body fits every fleet member.
fn train_artifact(horizon: usize) -> tfb_artifact::ModelArtifact {
    let profile = tfb_datagen::profile_by_name("ILI").expect("ILI profile");
    let series = profile.generate(tfb_datagen::Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).expect("normalize");
    let train = normed.slice_rows(0..split.val_start);
    fit(
        "LR",
        &train,
        LOOKBACK,
        horizon,
        norm,
        "bench_serve".to_string(),
        None,
    )
    .expect("fit")
}

fn train_model() -> ServableModel {
    ServableModel::from_artifact(train_artifact(HORIZON)).expect("servable")
}

/// One closed-loop client: a single keep-alive connection sending the
/// next request as soon as the previous reply arrives. Returns the
/// per-request latencies in microseconds and the shed (429) count.
fn client_loop(addr: std::net::SocketAddr, body: &str, stop: &AtomicBool) -> (Vec<f64>, u64) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let head = format!(
        "POST /forecast HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let request = format!("{head}{body}");
    let mut latencies = Vec::new();
    let mut shed = 0u64;
    // Reused reply buffers: the bench runs with the counting allocator
    // installed, so the client loop must stay allocation-free per
    // request for `serve/allocs_per_request` to be attributable to the
    // serving stack.
    let mut line = String::new();
    let mut reply_body = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        writer.write_all(request.as_bytes()).expect("write");
        let status = read_reply(&mut reader, &mut line, &mut reply_body);
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
        match status {
            200 => {}
            429 => shed += 1,
            other => panic!("unexpected status {other} under closed-loop load"),
        }
    }
    (latencies, shed)
}

/// One closed-loop *fleet* client: picks the next model zipfian-style
/// with a seeded xorshift (reproducible traffic) and posts to that
/// model's `/v1/forecast/{name}` route. Returns latencies (µs) and the
/// shed count.
fn fleet_client_loop(
    addr: std::net::SocketAddr,
    requests: &[String],
    cdf: &[f64],
    seed: u64,
    stop: &AtomicBool,
) -> (Vec<f64>, u64) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::new();
    let mut shed = 0u64;
    let mut line = String::new();
    let mut reply_body = Vec::new();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    while !stop.load(Ordering::Relaxed) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let idx = cdf.partition_point(|&c| c < u).min(requests.len() - 1);
        let t0 = Instant::now();
        writer.write_all(requests[idx].as_bytes()).expect("write");
        let status = read_reply(&mut reader, &mut line, &mut reply_body);
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
        match status {
            200 => {}
            429 => shed += 1,
            other => panic!("unexpected status {other} under fleet load"),
        }
    }
    (latencies, shed)
}

/// Cumulative zipfian distribution over `n` ranks: `P(i) ∝ 1/(i+1)^α`.
fn zipf_cdf(n: usize, alpha: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Reads one HTTP reply off the connection, discarding the body. Returns
/// the status code. `line` and `body` are reused scratch buffers.
fn read_reply(reader: &mut BufReader<TcpStream>, line: &mut String, body: &mut Vec<u8>) -> u16 {
    line.clear();
    reader.read_line(line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(line).expect("header line");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().expect("content-length");
            }
        }
    }
    body.clear();
    body.resize(content_length, 0);
    reader.read_exact(body).expect("body");
    status
}

/// Nearest-rank percentile of an already-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Client-side stats from one leg, plus the counter deltas that
/// attribute server behaviour to the leg (the metric registry is
/// cumulative across a process).
struct LegStats {
    latencies_us: Vec<f64>,
    shed: u64,
    elapsed_s: f64,
    shards: usize,
    steals: u64,
    batches: f64,
    batched_requests: f64,
    per_shard_batches: Vec<f64>,
    per_shard_steals: Vec<f64>,
}

impl LegStats {
    fn total(&self) -> f64 {
        self.latencies_us.len() as f64
    }

    fn throughput(&self) -> f64 {
        self.total() / self.elapsed_s
    }

    fn p(&self, q: f64) -> f64 {
        percentile(&self.latencies_us, q)
    }
}

fn counter_value(snapshot: &tfb_obs::MetricsSnapshot, name: &str) -> f64 {
    snapshot
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v as f64)
        .unwrap_or(0.0)
}

/// Starts a fresh server with `cfg`, drives it with `clients`
/// closed-loop clients for `duration`, and returns the leg's stats.
fn run_leg(
    model: ServableModel,
    cfg: CoalescerConfig,
    clients: usize,
    duration: Duration,
    body: &str,
) -> LegStats {
    let before = tfb_obs::metrics_snapshot();
    let handle = serve(
        model,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            coalescer: cfg,
        },
    )
    .expect("serve");
    let addr = handle.addr();
    let shards = handle.shards();
    let stop = AtomicBool::new(false);
    let (mut latencies, mut shed) = (Vec::new(), 0u64);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| scope.spawn(|| client_loop(addr, body, &stop)))
            .collect();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            let (lat, s) = w.join().expect("client thread");
            latencies.extend(lat);
            shed += s;
        }
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    let steals = handle.steal_count();
    handle.shutdown();
    let after = tfb_obs::metrics_snapshot();
    let delta = |name: &str| counter_value(&after, name) - counter_value(&before, name);
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    LegStats {
        latencies_us: latencies,
        shed,
        elapsed_s,
        shards,
        steals,
        batches: delta("serve/batches"),
        batched_requests: delta("serve/batched_requests"),
        per_shard_batches: (0..shards)
            .map(|i| delta(&format!("serve/shard{i}/batches")))
            .collect(),
        per_shard_steals: (0..shards)
            .map(|i| delta(&format!("serve/shard{i}/steals")))
            .collect(),
    }
}

/// `--flag value` lookup over the raw args.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let args: Vec<String> = std::env::args().collect();
    let scale = RunScale::from_env();
    let clients: usize = flag_value(&args, "--clients")
        .map(|v| v.parse().expect("--clients takes a number"))
        .unwrap_or(8);
    let duration = flag_value(&args, "--duration-secs")
        .map(|v| Duration::from_secs_f64(v.parse().expect("--duration-secs takes seconds")))
        .unwrap_or(match scale {
            RunScale::Fast => Duration::from_secs(1),
            RunScale::Default => Duration::from_secs(3),
            RunScale::Full => Duration::from_secs(10),
        });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Shard counts to sweep (`--cores` is an accepted alias — on a
    // thread-per-core server they are the same axis): a power-of-two
    // ladder up to the core count by default; the largest is the
    // primary configuration.
    let sweep: Vec<usize> = flag_value(&args, "--shards")
        .or_else(|| flag_value(&args, "--cores"))
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--shards takes e.g. 1,2,4"))
                .collect()
        })
        .unwrap_or_else(|| {
            let mut ladder = vec![1usize];
            while ladder.last().copied().unwrap_or(1) * 2 <= cores {
                ladder.push(ladder.last().unwrap() * 2);
            }
            ladder
        });
    let primary_shards = sweep.iter().copied().max().unwrap_or(1);

    let mut entries: Vec<BenchEntry> = Vec::new();
    println!(
        "machine: {cores} core(s), {clients} closed-loop client(s), {duration:?}/leg, \
         shard sweep {sweep:?}"
    );
    push(&mut entries, "serve/cores", cores as f64, "count");
    push(&mut entries, "serve/clients", clients as f64, "count");

    let model = train_model();
    let dim = model.dim();
    println!("serving LR (lookback {LOOKBACK}, horizon {HORIZON}, {dim}d)");
    let window: Vec<f64> = (0..LOOKBACK * dim)
        .map(|i| (i as f64) * 0.13 - 2.0)
        .collect();
    let body = JsonValue::Object(vec![(
        "window".to_string(),
        JsonValue::Array(window.iter().map(|&v| JsonValue::Number(v)).collect()),
    )])
    .compact();

    // -- Primary leg: first, so the registry's histograms and traces
    // belong to it alone.
    #[cfg(feature = "alloc-track")]
    let alloc_before = tfb_obs::alloc::stats();
    let primary = run_leg(
        model,
        CoalescerConfig {
            shards: primary_shards,
            ..CoalescerConfig::default()
        },
        clients,
        duration,
        &body,
    );
    #[cfg(feature = "alloc-track")]
    let alloc_after = tfb_obs::alloc::stats();
    let total = primary.total();
    let throughput = primary.throughput();
    let mean = primary.latencies_us.iter().sum::<f64>() / total.max(1.0);
    let (p50, p95, p99) = (primary.p(50.0), primary.p(95.0), primary.p(99.0));
    println!(
        "primary ({} shard(s)): {throughput:9.0} req/s ({total:.0} requests in {:.1} s)",
        primary.shards, primary.elapsed_s
    );
    println!(
        "latency:    {mean:7.0} us mean | {p50:7.0} us p50 | {p95:7.0} us p95 | {p99:7.0} us p99"
    );
    push(&mut entries, "serve/shards", primary.shards as f64, "count");
    push(&mut entries, "serve/requests", total, "count");
    push(&mut entries, "serve/throughput", throughput, "req/s");
    push(&mut entries, "serve/latency_mean", mean, "us");
    push(&mut entries, "serve/latency_p50", p50, "us");
    push(&mut entries, "serve/latency_p95", p95, "us");
    push(&mut entries, "serve/latency_p99", p99, "us");
    push(&mut entries, "serve/steals", primary.steals as f64, "count");
    for (i, (b, s)) in primary
        .per_shard_batches
        .iter()
        .zip(&primary.per_shard_steals)
        .enumerate()
    {
        push(&mut entries, format!("serve/shard{i}/batches"), *b, "count");
        push(&mut entries, format!("serve/shard{i}/steals"), *s, "count");
    }

    // Coalescer behaviour straight from the live metric registry — the
    // same numbers `GET /metrics` serves. With obs recording off
    // (`--no-default-features`) the snapshot is empty and the batch
    // entries are simply absent from the JSON.
    let snapshot = tfb_obs::metrics_snapshot();
    if let Some(h) = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "serve/batch_size")
    {
        println!(
            "batching:   {:.0} batches | {:5.2} rows mean | {:.0} p50 | {:.0} p90 | {:.0} p99 | {:.0} max",
            primary.batches, h.mean, h.p50, h.p90, h.p99, h.max
        );
        push(&mut entries, "serve/batches", primary.batches, "count");
        push(&mut entries, "serve/batch_mean", h.mean, "rows");
        push(&mut entries, "serve/batch_p50", h.p50, "rows");
        push(&mut entries, "serve/batch_p90", h.p90, "rows");
        push(&mut entries, "serve/batch_p99", h.p99, "rows");
        push(&mut entries, "serve/batch_max", h.max, "rows");
        if primary.batches > 0.0 {
            push(
                &mut entries,
                "serve/requests_per_batch",
                primary.batched_requests / primary.batches,
                "rows",
            );
        }
    }
    // Per-phase tail-latency attribution from the request traces: where
    // a request's wall time went (parse / queue / collect / infer /
    // dispatch / write, plus the end-to-end total). The p99 is a bucket
    // upper bound — coarse, but stable across runs, which is what the
    // JSON consumers compare.
    let trace = tfb_obs::trace::snapshot();
    let phases: Vec<_> = trace.phases.iter().filter(|p| p.count > 0).collect();
    if !phases.is_empty() {
        println!("phase breakdown (server-side attribution):");
        for p in &phases {
            let mean_us = p.sum_s / p.count as f64 * 1e6;
            let p99_us = p.quantile(0.99) * 1e6;
            println!(
                "  {:<9} {mean_us:8.1} us mean | {p99_us:9.0} us p99 | {} sample(s)",
                p.phase, p.count
            );
            push(
                &mut entries,
                format!("serve/phase_{}_mean", p.phase),
                mean_us,
                "us",
            );
            push(
                &mut entries,
                format!("serve/phase_{}_p99", p.phase),
                p99_us,
                "us",
            );
        }
    }
    let shed_rate = if total > 0.0 {
        100.0 * primary.shed as f64 / total
    } else {
        0.0
    };
    println!(
        "shedding:   {:.0} request(s) shed ({shed_rate:.2}%) | {} steal(s)",
        primary.shed, primary.steals
    );
    push(&mut entries, "serve/shed", primary.shed as f64, "count");
    push(&mut entries, "serve/shed_rate", shed_rate, "%");
    // Allocation pressure on the hot path: allocator calls during the
    // primary leg divided by requests served. The client loops reuse
    // their buffers, so this is dominated by the serving stack (HTTP
    // parse, JSON, coalescer routing).
    #[cfg(feature = "alloc-track")]
    if total > 0.0 {
        let d = tfb_obs::alloc::delta(alloc_before, alloc_after);
        let per_req = d.calls as f64 / total;
        let bytes_per_req = d.bytes as f64 / total;
        println!("allocs:     {per_req:7.1} calls/req | {bytes_per_req:9.0} bytes/req");
        push(&mut entries, "serve/allocs_per_request", per_req, "calls");
        push(
            &mut entries,
            "serve/alloc_bytes_per_request",
            bytes_per_req,
            "bytes",
        );
    }
    if let Some(rss) = tfb_obs::peak_rss_bytes() {
        let mib = rss as f64 / (1024.0 * 1024.0);
        println!("peak RSS:   {mib:.1} MiB");
        push(&mut entries, "serve/peak_rss", mib, "MiB");
    }

    // -- Legacy leg: the pre-deadline coalescer, reproduced exactly
    // (one shard, a fixed 2 ms window regardless of queue age), for a
    // live on-this-machine before/after.
    let legacy = run_leg(
        train_model(),
        CoalescerConfig {
            shards: 1,
            coalesce_hint: Duration::from_millis(2),
            budget: Duration::from_millis(2),
            ..CoalescerConfig::default()
        },
        clients,
        duration,
        &body,
    );
    println!(
        "legacy (1 shard, fixed 2 ms window): {:9.0} req/s | {:7.0} us p50 | {:7.0} us p99",
        legacy.throughput(),
        legacy.p(50.0),
        legacy.p(99.0)
    );
    push(
        &mut entries,
        "serve/legacy/throughput",
        legacy.throughput(),
        "req/s",
    );
    push(
        &mut entries,
        "serve/legacy/latency_p50",
        legacy.p(50.0),
        "us",
    );
    push(
        &mut entries,
        "serve/legacy/latency_p99",
        legacy.p(99.0),
        "us",
    );
    if legacy.throughput() > 0.0 {
        push(
            &mut entries,
            "serve/speedup_vs_legacy",
            throughput / legacy.throughput(),
            "x",
        );
    }

    // -- Sweep legs: scaling curve over shard counts (the primary
    // already measured the largest count; reuse its numbers there).
    for &s in &sweep {
        let fresh;
        let leg = if s == primary.shards {
            &primary
        } else {
            fresh = run_leg(
                train_model(),
                CoalescerConfig {
                    shards: s,
                    ..CoalescerConfig::default()
                },
                clients,
                duration,
                &body,
            );
            &fresh
        };
        let fill = if leg.batches > 0.0 {
            leg.batched_requests / leg.batches
        } else {
            0.0
        };
        println!(
            "sweep s{s}: {:9.0} req/s | {:7.0} us p50 | {fill:5.2} rows/batch | {} steal(s)",
            leg.throughput(),
            leg.p(50.0),
            leg.steals
        );
        push(
            &mut entries,
            format!("serve/sweep/s{s}/throughput"),
            leg.throughput(),
            "req/s",
        );
        push(
            &mut entries,
            format!("serve/sweep/s{s}/latency_p50"),
            leg.p(50.0),
            "us",
        );
        push(
            &mut entries,
            format!("serve/sweep/s{s}/requests_per_batch"),
            fill,
            "rows",
        );
        push(
            &mut entries,
            format!("serve/sweep/s{s}/steals"),
            leg.steals as f64,
            "count",
        );
    }

    // -- Fleet leg: the registry-backed multi-model regime. A capacity
    // below the model count forces the LRU to churn, so the hit rate /
    // cold-load / eviction numbers are of the interesting regime, not
    // of an everything-resident cache.
    {
        use tfb_registry::fleet::{Fleet, FleetConfig};
        use tfb_registry::Registry;
        let dir = workspace_root().join("target").join("bench-fleet-registry");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = Registry::open(&dir).expect("fleet registry");
        for i in 0..FLEET_MODELS {
            let artifact = train_artifact(4 + (i % 12));
            registry
                .publish_bytes(&format!("m{i:02}"), "prod", &artifact.to_bytes())
                .expect("publish fleet model");
        }
        let registry = Registry::open(&dir).expect("fleet registry");
        let fleet = std::sync::Arc::new(
            Fleet::open(
                registry,
                FleetConfig {
                    resident_cap: FLEET_RESIDENT_CAP,
                },
            )
            .expect("fleet"),
        );
        let handle = tfb_serve::serve_fleet(
            std::sync::Arc::clone(&fleet),
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                coalescer: CoalescerConfig::default(),
            },
        )
        .expect("serve fleet");
        let addr = handle.addr();
        let cdf = zipf_cdf(FLEET_MODELS, FLEET_ALPHA);
        let requests: Vec<String> = (0..FLEET_MODELS)
            .map(|i| {
                format!(
                    "POST /v1/forecast/m{i:02} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                )
            })
            .collect();
        let stop = AtomicBool::new(false);
        let (mut latencies, mut shed) = (Vec::new(), 0u64);
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let (requests, cdf, stop) = (&requests, &cdf, &stop);
                    scope.spawn(move || fleet_client_loop(addr, requests, cdf, c as u64 + 1, stop))
                })
                .collect();
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
            for w in workers {
                let (lat, s) = w.join().expect("fleet client thread");
                latencies.extend(lat);
                shed += s;
            }
        });
        let elapsed_s = t0.elapsed().as_secs_f64();
        let _ = handle.shutdown();
        let stats = fleet.stats();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let total = latencies.len() as f64;
        let fleet_throughput = total / elapsed_s.max(1e-9);
        let mut cold = stats.cold_load_us.clone();
        cold.sort_by(|a, b| a.partial_cmp(b).expect("finite cold load"));
        let cold_p99 = if cold.is_empty() {
            0.0
        } else {
            percentile(&cold, 99.0)
        };
        println!(
            "fleet ({FLEET_MODELS} models, cap {FLEET_RESIDENT_CAP}, zipf α={FLEET_ALPHA}): \
             {fleet_throughput:9.0} req/s | {:7.0} us p50 | {:7.0} us p99",
            percentile(&latencies, 50.0),
            percentile(&latencies, 99.0),
        );
        println!(
            "fleet cache: {:.1}% hit rate | {} cold load(s) ({cold_p99:.0} us p99) | {} eviction(s)",
            100.0 * stats.hit_rate(),
            stats.cold_load_us.len(),
            stats.evictions,
        );
        push(
            &mut entries,
            "serve/fleet/models",
            FLEET_MODELS as f64,
            "count",
        );
        push(
            &mut entries,
            "serve/fleet/resident_cap",
            FLEET_RESIDENT_CAP as f64,
            "count",
        );
        push(&mut entries, "serve/fleet/requests", total, "count");
        push(
            &mut entries,
            "serve/fleet/throughput",
            fleet_throughput,
            "req/s",
        );
        push(
            &mut entries,
            "serve/fleet/latency_p50",
            percentile(&latencies, 50.0),
            "us",
        );
        push(
            &mut entries,
            "serve/fleet/latency_p99",
            percentile(&latencies, 99.0),
            "us",
        );
        push(
            &mut entries,
            "serve/fleet/hit_rate",
            stats.hit_rate(),
            "ratio",
        );
        push(&mut entries, "serve/fleet/cold_load_p99", cold_p99, "us");
        push(
            &mut entries,
            "serve/fleet/evictions",
            stats.evictions as f64,
            "count",
        );
        push(&mut entries, "serve/fleet/shed", shed as f64, "count");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- Observability-overhead legs: one shard, same client load, three
    // recorder states — flight recorder disarmed (every probe is a
    // relaxed load), armed (event lines are copied into the per-thread
    // rings), and armed with the sampling profiler walking span stacks.
    // The armed-vs-disarmed delta is the flight recorder's tax on the
    // serving hot path; the budget is < 2%.
    let overhead_cfg = || CoalescerConfig {
        shards: 1,
        ..CoalescerConfig::default()
    };
    tfb_obs::flight::set_armed(false);
    let disarmed = run_leg(train_model(), overhead_cfg(), clients, duration, &body);
    tfb_obs::flight::configure(tfb_obs::flight::FlightConfig {
        history_root: Some(workspace_root().join("target").join("obs-overhead-history")),
        context: vec![("command".to_string(), "bench_serve".to_string())],
        ..Default::default()
    });
    tfb_obs::flight::set_armed(true);
    let armed = run_leg(train_model(), overhead_cfg(), clients, duration, &body);
    tfb_obs::flight::profiler::start(97);
    let profiled = run_leg(train_model(), overhead_cfg(), clients, duration, &body);
    tfb_obs::flight::profiler::stop();
    tfb_obs::flight::set_armed(false);
    // Overhead as "how much slower than disarmed", in percent; negative
    // values are run-to-run noise.
    let overhead_pct =
        |leg: &LegStats| 100.0 * (disarmed.throughput() / leg.throughput().max(1e-9) - 1.0);
    println!(
        "obs overhead (1 shard): {:9.0} req/s disarmed | {:9.0} req/s armed ({:+.2}%) | \
         {:9.0} req/s profiled ({:+.2}%)",
        disarmed.throughput(),
        armed.throughput(),
        overhead_pct(&armed),
        profiled.throughput(),
        overhead_pct(&profiled),
    );
    push(
        &mut entries,
        "serve/obs_overhead/disarmed_throughput",
        disarmed.throughput(),
        "req/s",
    );
    push(
        &mut entries,
        "serve/obs_overhead/armed_throughput",
        armed.throughput(),
        "req/s",
    );
    push(
        &mut entries,
        "serve/obs_overhead/armed_pct",
        overhead_pct(&armed),
        "%",
    );
    push(
        &mut entries,
        "serve/obs_overhead/profiled_throughput",
        profiled.throughput(),
        "req/s",
    );
    push(
        &mut entries,
        "serve/obs_overhead/profiled_pct",
        overhead_pct(&profiled),
        "%",
    );

    let path = workspace_root().join("BENCH_serve.json");
    write_bench_json(&path, &entries).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}

//! `bench_serve`: closed-loop load test of the forecast server.
//!
//! Trains a small LR artifact in-process, serves it on an ephemeral port
//! through the real TCP + coalescer stack, and drives it with N
//! keep-alive clients that each send the next `POST /forecast` the
//! moment the previous reply lands. Reported: sustained throughput,
//! client-observed latency quantiles, the coalescer's batch-size
//! distribution (from the live `serve/batch_size` histogram), the
//! server-side per-phase latency breakdown (parse / queue / collect /
//! infer / dispatch / write, from the request traces), and the shed
//! rate. Results are printed and written to `BENCH_serve.json` at
//! the workspace root in the same rebar-style `{name, value, unit}`
//! schema as `BENCH_engine.json`, so `tfb obs gate` and CI can guard
//! serving throughput like any other benchmark.
//!
//! Interpreting the numbers: the model (LR on a TINY profile) is cheap
//! by design — the benchmark measures the serving stack (HTTP parsing,
//! coalescing, routing, backpressure), not the forecaster. Batch sizes
//! above 1 under concurrent load demonstrate the coalescer is actually
//! amortizing `predict_batch` calls; a shed rate of zero just means the
//! bounded queue never filled at this client count.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use tfb_artifact::{fit, ServableModel};
use tfb_bench::RunScale;
use tfb_data::{ChronoSplit, Normalization, Normalizer};
use tfb_json::JsonValue;
use tfb_serve::{serve, CoalescerConfig, ServerConfig};

#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: tfb_obs::alloc::CountingAllocator = tfb_obs::alloc::CountingAllocator;

const LOOKBACK: usize = 24;
const HORIZON: usize = 8;

struct Entry {
    name: String,
    value: f64,
    unit: &'static str,
}

fn push(entries: &mut Vec<Entry>, name: impl Into<String>, value: f64, unit: &'static str) {
    entries.push(Entry {
        name: name.into(),
        value,
        unit,
    });
}

fn train_model() -> ServableModel {
    let profile = tfb_datagen::profile_by_name("ILI").expect("ILI profile");
    let series = profile.generate(tfb_datagen::Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).expect("normalize");
    let train = normed.slice_rows(0..split.val_start);
    let artifact = fit(
        "LR",
        &train,
        LOOKBACK,
        HORIZON,
        norm,
        "bench_serve".to_string(),
        None,
    )
    .expect("fit");
    ServableModel::from_artifact(artifact).expect("servable")
}

/// One closed-loop client: a single keep-alive connection sending the
/// next request as soon as the previous reply arrives. Returns the
/// per-request latencies in microseconds and the shed (429) count.
fn client_loop(addr: std::net::SocketAddr, body: &str, stop: &AtomicBool) -> (Vec<f64>, u64) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let head = format!(
        "POST /forecast HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let request = format!("{head}{body}");
    let mut latencies = Vec::new();
    let mut shed = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        writer.write_all(request.as_bytes()).expect("write");
        let status = read_reply(&mut reader);
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
        match status {
            200 => {}
            429 => shed += 1,
            other => panic!("unexpected status {other} under closed-loop load"),
        }
    }
    (latencies, shed)
}

/// Reads one HTTP reply off the connection, discarding the body. Returns
/// the status code.
fn read_reply(reader: &mut BufReader<TcpStream>) -> u16 {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    status
}

/// Nearest-rank percentile of an already-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let clients = 8usize;
    let duration = match scale {
        RunScale::Fast => Duration::from_secs(1),
        RunScale::Default => Duration::from_secs(3),
        RunScale::Full => Duration::from_secs(10),
    };
    let mut entries: Vec<Entry> = Vec::new();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("machine: {cores} core(s), {clients} closed-loop client(s), {duration:?} run");
    push(&mut entries, "serve/cores", cores as f64, "count");
    push(&mut entries, "serve/clients", clients as f64, "count");

    let model = train_model();
    let dim = model.dim();
    let handle = serve(
        model,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            coalescer: CoalescerConfig::default(),
        },
    )
    .expect("serve");
    let addr = handle.addr();
    println!("serving LR (lookback {LOOKBACK}, horizon {HORIZON}, {dim}d) on {addr}");

    let window: Vec<f64> = (0..LOOKBACK * dim)
        .map(|i| (i as f64) * 0.13 - 2.0)
        .collect();
    let body = JsonValue::Object(vec![(
        "window".to_string(),
        JsonValue::Array(window.iter().map(|&v| JsonValue::Number(v)).collect()),
    )])
    .compact();

    let stop = AtomicBool::new(false);
    let (mut latencies, mut shed) = (Vec::new(), 0u64);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| scope.spawn(|| client_loop(addr, &body, &stop)))
            .collect();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            let (lat, s) = w.join().expect("client thread");
            latencies.extend(lat);
            shed += s;
        }
    });
    let elapsed = duration.as_secs_f64();
    let total = latencies.len() as f64;
    let throughput = total / elapsed;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let mean = latencies.iter().sum::<f64>() / total.max(1.0);
    let (p50, p95, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );
    println!("throughput: {throughput:9.0} req/s ({total:.0} requests in {elapsed:.1} s)");
    println!(
        "latency:    {mean:7.0} us mean | {p50:7.0} us p50 | {p95:7.0} us p95 | {p99:7.0} us p99"
    );
    push(&mut entries, "serve/requests", total, "count");
    push(&mut entries, "serve/throughput", throughput, "req/s");
    push(&mut entries, "serve/latency_mean", mean, "us");
    push(&mut entries, "serve/latency_p50", p50, "us");
    push(&mut entries, "serve/latency_p95", p95, "us");
    push(&mut entries, "serve/latency_p99", p99, "us");

    // Coalescer behaviour straight from the live metric registry — the
    // same numbers `GET /metrics` serves. With obs recording off
    // (`--no-default-features`) the snapshot is empty and the batch
    // entries are simply absent from the JSON.
    let snapshot = tfb_obs::metrics_snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v as f64)
    };
    let batches = counter("serve/batches").unwrap_or(0.0);
    let batched = counter("serve/batched_requests").unwrap_or(0.0);
    if let Some(h) = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "serve/batch_size")
    {
        println!(
            "batching:   {batches:.0} batches | {:5.2} rows mean | {:.0} p50 | {:.0} p90 | {:.0} p99 | {:.0} max",
            h.mean, h.p50, h.p90, h.p99, h.max
        );
        push(&mut entries, "serve/batches", batches, "count");
        push(&mut entries, "serve/batch_mean", h.mean, "rows");
        push(&mut entries, "serve/batch_p50", h.p50, "rows");
        push(&mut entries, "serve/batch_p90", h.p90, "rows");
        push(&mut entries, "serve/batch_p99", h.p99, "rows");
        push(&mut entries, "serve/batch_max", h.max, "rows");
        if batches > 0.0 {
            push(
                &mut entries,
                "serve/requests_per_batch",
                batched / batches,
                "rows",
            );
        }
    }
    // Per-phase tail-latency attribution from the request traces: where
    // a request's wall time went (parse / queue / collect / infer /
    // dispatch / write, plus the end-to-end total). The p99 is a bucket
    // upper bound — coarse, but stable across runs, which is what the
    // JSON consumers compare.
    let trace = tfb_obs::trace::snapshot();
    let phases: Vec<_> = trace.phases.iter().filter(|p| p.count > 0).collect();
    if !phases.is_empty() {
        println!("phase breakdown (server-side attribution):");
        for p in &phases {
            let mean_us = p.sum_s / p.count as f64 * 1e6;
            let p99_us = p.quantile(0.99) * 1e6;
            println!(
                "  {:<9} {mean_us:8.1} us mean | {p99_us:9.0} us p99 | {} sample(s)",
                p.phase, p.count
            );
            push(
                &mut entries,
                format!("serve/phase_{}_mean", p.phase),
                mean_us,
                "us",
            );
            push(
                &mut entries,
                format!("serve/phase_{}_p99", p.phase),
                p99_us,
                "us",
            );
        }
    }
    let shed_rate = if total > 0.0 {
        100.0 * shed as f64 / total
    } else {
        0.0
    };
    println!("shedding:   {shed:.0} request(s) shed ({shed_rate:.2}%)");
    push(&mut entries, "serve/shed", shed as f64, "count");
    push(&mut entries, "serve/shed_rate", shed_rate, "%");
    if let Some(rss) = tfb_obs::peak_rss_bytes() {
        let mib = rss as f64 / (1024.0 * 1024.0);
        println!("peak RSS:   {mib:.1} MiB");
        push(&mut entries, "serve/peak_rss", mib, "MiB");
    }

    handle.shutdown();

    let doc = JsonValue::Object(vec![(
        "benchmarks".into(),
        JsonValue::Array(
            entries
                .iter()
                .map(|e| {
                    JsonValue::Object(vec![
                        ("name".into(), JsonValue::from(e.name.as_str())),
                        ("value".into(), JsonValue::Number(e.value)),
                        ("unit".into(), JsonValue::from(e.unit)),
                    ])
                })
                .collect(),
        ),
    )]);
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_serve.json");
    std::fs::write(&path, doc.pretty() + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}

//! Table 2 / Figure 4: the "drop last" trick distorts reported scores as a
//! function of batch size.
//!
//! On ETTh2 the paper predicts 336 steps from a look-back of 512 over a
//! test region of 2,880 points (2,033 windows) and shows the reported MSE
//! *improving* monotonically as the batch size grows — purely because
//! larger batches silently discard more of the hardest trailing windows.
//! This binary reproduces the effect for PatchTST, DLinear and FEDformer:
//! the absolute values differ on synthetic data, but the *dependence of the
//! reported score on batch size* — which should not exist at all — is the
//! point.

use tfb_bench::RunScale;
use tfb_core::eval::{evaluate, EvalSettings};
use tfb_core::method::build_method;
use tfb_core::Metric;

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let profile = tfb_datagen::profile_by_name("ETTh2").expect("profile exists");
    let series = profile.generate(scale.data_scale());
    // Paper geometry (H=512, F=336) at full scale; proportionally reduced
    // otherwise so the test region keeps a comparable window count.
    let (lookback, horizon) = match scale {
        RunScale::Full => (512, 336),
        RunScale::Default => (96, 48),
        RunScale::Fast => (48, 24),
    };
    let batch_sizes = [1usize, 32, 64, 128, 256, 512];
    let methods = ["PatchTST", "DLinear", "FEDformer"];
    println!("Table 2 — MSE on ETTh2 with \"drop last\" enabled (H={lookback}, F={horizon}):\n");
    println!("| batch | {} | windows kept |", methods.join(" | "));
    println!("|---|---|---|---|---|");
    // Train each method once; only the evaluation batching changes.
    let mut trained: Vec<_> = methods
        .iter()
        .map(|m| {
            build_method(
                m,
                lookback,
                horizon,
                series.dim(),
                Some(scale.train_config()),
            )
            .expect("known method")
        })
        .collect();
    for &bs in &batch_sizes {
        let mut row = format!("| {bs} |");
        let mut kept = 0usize;
        for method in trained.iter_mut() {
            let mut settings = EvalSettings::rolling(lookback, horizon, profile.split);
            settings.metrics = vec![Metric::Mse];
            settings.drop_last = Some((bs, true));
            match evaluate(method, &series, &settings) {
                Ok(out) => {
                    row.push_str(&format!(" {:.4} |", out.metric(Metric::Mse)));
                    kept = out.n_windows;
                }
                Err(e) => row.push_str(&format!(" err({e}) |")),
            }
        }
        println!("{row} {kept} |");
    }
    // Reference row: the fair pipeline (no drop-last) is batch-invariant.
    let mut settings = EvalSettings::rolling(lookback, horizon, profile.split);
    settings.metrics = vec![Metric::Mse];
    let mut row = String::from("| keep-all |");
    let mut kept = 0;
    for method in trained.iter_mut() {
        match evaluate(method, &series, &settings) {
            Ok(out) => {
                row.push_str(&format!(" {:.4} |", out.metric(Metric::Mse)));
                kept = out.n_windows;
            }
            Err(e) => row.push_str(&format!(" err({e}) |")),
        }
    }
    println!("{row} {kept} |");
    println!("\nTFB never drops windows: the keep-all row is the only fair one.");
}

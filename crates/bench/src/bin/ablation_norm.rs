//! Ablation: normalization choice (z-score vs. min-max vs. none).
//!
//! Issue 3 of the paper: the normalization scheme changes reported results,
//! so the pipeline must fix one scheme for every method. This ablation
//! quantifies the distortion — the same method, same data, three schemes.

use tfb_bench::RunScale;
use tfb_core::eval::{evaluate, EvalSettings};
use tfb_core::method::build_method;
use tfb_core::Metric;
use tfb_data::Normalization;

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let profile = tfb_datagen::profile_by_name("ETTh1").expect("profile exists");
    let series = profile.generate(scale.data_scale());
    let (lookback, horizon) = (48, 24);
    println!("Normalization ablation on ETTh1 (H={lookback}, F={horizon}), MAE is on the");
    println!("chosen scale — the point is that cross-scheme numbers are incomparable:\n");
    println!("| method | z-score | min-max | none |");
    println!("|---|---|---|---|");
    for method_name in ["Naive", "LR", "NLinear"] {
        let mut row = format!("| {method_name} |");
        for norm in [
            Normalization::ZScore,
            Normalization::MinMax,
            Normalization::None,
        ] {
            let mut settings = EvalSettings::rolling(lookback, horizon, profile.split);
            settings.normalization = norm;
            settings.max_windows = scale.max_windows().max(10);
            let mut method = build_method(
                method_name,
                lookback,
                horizon,
                series.dim(),
                Some(scale.train_config()),
            )
            .expect("known method");
            match evaluate(&mut method, &series, &settings) {
                Ok(out) => row.push_str(&format!(" {:.4} |", out.metric(Metric::Mae))),
                Err(e) => row.push_str(&format!(" err({e}) |")),
            }
        }
        println!("{row}");
    }
    println!("\nTFB fixes z-score (fitted on the training region) for all methods.");
}

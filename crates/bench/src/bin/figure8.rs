//! Figure 8: radar chart of the best MAE of six deep methods on the six
//! characteristic-extreme datasets — FRED-MD (trend), Electricity
//! (seasonality), PEMS08 (transition), NYSE (shifting), PEMS-BAY
//! (correlation) and Solar (stationarity).
//!
//! The shape to reproduce: no method excels everywhere; NLinear strongest
//! on the trend/shift extremes (FRED-MD, NYSE), attention-based methods on
//! the seasonal/correlated extremes; Crossformer best where correlation or
//! transition is extreme but weak elsewhere.

use tfb_bench::{emit, eval_best_lookback, RunScale};
use tfb_core::report::ResultTable;
use tfb_core::Metric;

/// (dataset, characteristic it maximizes, horizon at paper scale).
const EXTREMES: [(&str, &str, usize); 6] = [
    ("FRED-MD", "trend", 24),
    ("Electricity", "seasonality", 96),
    ("PEMS08", "transition", 96),
    ("NYSE", "shifting", 24),
    ("PEMS-BAY", "correlation", 96),
    ("Solar", "stationarity", 96),
];

const METHODS: [&str; 6] = [
    "PatchTST",
    "Crossformer",
    "FEDformer",
    "DLinear",
    "NLinear",
    "MICN",
];

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let mut table = ResultTable::default();
    for (dataset, characteristic, paper_h) in EXTREMES {
        let profile = tfb_datagen::profile_by_name(dataset).expect("profile exists");
        let horizon = match scale {
            RunScale::Full => paper_h,
            _ => 24,
        };
        let series = profile.generate(scale.data_scale());
        eprintln!("scoring {dataset} (extreme {characteristic})...");
        for method in METHODS {
            if let Some(out) = eval_best_lookback(&profile, &series, method, horizon, scale) {
                table.push(&out);
            }
        }
    }
    println!("Figure 8 — best MAE per method on characteristic-extreme datasets:\n");
    emit(&table, "figure8", Metric::Mae);
    // Winner per dataset (the radar's inner vertex).
    for (dataset, characteristic, _) in EXTREMES {
        let mut best: Option<(String, f64)> = None;
        for m in table.methods() {
            for (d, h) in table.cases() {
                if d == dataset {
                    if let Some(v) = table.cell(&d, h, &m, Metric::Mae) {
                        if v.is_finite() && best.as_ref().is_none_or(|(_, b)| v < *b) {
                            best = Some((m.clone(), v));
                        }
                    }
                }
            }
        }
        if let Some((m, v)) = best {
            println!("{dataset:<12} (extreme {characteristic:<12}) best: {m} ({v:.3})");
        }
    }
}

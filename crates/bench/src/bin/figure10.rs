//! Figure 10: channel independence (PatchTST) versus channel dependence
//! (Crossformer) as a function of dataset correlation.
//!
//! Ten datasets are ordered by their correlation characteristic; the shape
//! to reproduce: as correlation grows, Crossformer's MAE catches up with
//! and overtakes PatchTST's.

use tfb_bench::{eval_best_lookback, results_dir, RunScale};
use tfb_core::data::DatasetCharacteristics;
use tfb_core::Metric;

const DATASETS: [&str; 10] = [
    "Exchange",
    "Wind",
    "NN5",
    "ZafNoo",
    "AQShunyi",
    "ETTh1",
    "Weather",
    "Electricity",
    "Solar",
    "PEMS-BAY",
];

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let horizon = match scale {
        RunScale::Full => 96,
        _ => 24,
    };
    // Score correlation to order the x-axis.
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for dataset in DATASETS {
        let profile = tfb_datagen::profile_by_name(dataset).expect("profile exists");
        let series = profile.generate(scale.data_scale());
        let corr = DatasetCharacteristics::compute(&series, 4).correlation;
        let patch = eval_best_lookback(&profile, &series, "PatchTST", horizon, scale)
            .map(|o| o.metric(Metric::Mae))
            .unwrap_or(f64::NAN);
        let cross = eval_best_lookback(&profile, &series, "Crossformer", horizon, scale)
            .map(|o| o.metric(Metric::Mae))
            .unwrap_or(f64::NAN);
        rows.push((dataset.to_string(), corr, patch, cross));
        eprintln!("{dataset}: corr={corr:.3} patchtst={patch:.3} crossformer={cross:.3}");
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    println!("\nFigure 10 — MAE vs dataset correlation (F={horizon}):\n");
    println!("| dataset | correlation | PatchTST | Crossformer | dependence wins |");
    println!("|---|---|---|---|---|");
    let mut csv = String::from("dataset,correlation,patchtst_mae,crossformer_mae\n");
    for (name, corr, patch, cross) in &rows {
        println!(
            "| {name} | {corr:.3} | {patch:.3} | {cross:.3} | {} |",
            if cross < patch { "yes" } else { "no" }
        );
        csv.push_str(&format!("{name},{corr},{patch},{cross}\n"));
    }
    let path = results_dir().join("figure10.csv");
    std::fs::write(&path, csv).expect("write figure10.csv");
    // Trend statistic: does Crossformer's advantage correlate with the
    // dataset correlation?
    let xs: Vec<f64> = rows.iter().map(|r| r.1).collect();
    // Relative gap (PatchTST / Crossformer - 1) compares across datasets
    // whose absolute error scales differ by an order of magnitude.
    let ys: Vec<f64> = rows.iter().map(|r| r.2 / r.3 - 1.0).collect();
    if let Ok(r) = tfb_math::stats::pearson(&xs, &ys) {
        println!("\ncorr(dataset correlation, relative PatchTST-vs-Crossformer gap) = {r:.3}");
        println!("(positive = channel dependence pays off more as correlation grows)");
    }
    let wins_high: usize = rows[5..].iter().filter(|r| r.3 < r.2).count();
    let wins_low: usize = rows[..5].iter().filter(|r| r.3 < r.2).count();
    println!(
        "Crossformer wins {wins_high}/5 of the most correlated vs {wins_low}/5 of the least correlated datasets"
    );
    println!("wrote {}", path.display());
}

//! `bench_engine`: micro-benchmark of the batched-inference evaluation
//! engine against the sequential baseline.
//!
//! Runs a fixed mini-grid on the ETTh1 profile:
//!
//! * window methods — per-window `predict` loop vs one `predict_batch`
//!   call over every rolling window (`EvalSettings::batch_inference`);
//! * statistical methods — sequential vs multi-threaded boundary
//!   evaluation (`EvalSettings::window_parallelism`);
//! * the underlying kernels — single-threaded vs `par_matmul` GEMM and
//!   direct vs FFT full-lag ACF.
//!
//! Every comparison asserts that the fast path reproduces the slow path's
//! metrics exactly before timing is reported. Results are printed and
//! written to `BENCH_engine.json` at the workspace root as rebar-style
//! `{name, value, unit}` entries.
//!
//! Interpreting the numbers: batching amortizes per-window fixed costs
//! (tape construction, parameter copies, per-call allocations) while the
//! floating-point work itself is identical in both paths, so methods
//! whose per-window path is a scalar loop (LR) gain the most, and the
//! thread-parallel entries (stat boundaries, `par_matmul` row blocks)
//! scale with the `engine/cores` entry — on a single-core box they are
//! expected to sit near 1.0x.

use std::time::Instant;
use tfb_bench::emit::{push, workspace_root, write_bench_json, BenchEntry};
use tfb_core::eval::{evaluate, EvalSettings};
use tfb_core::method::build_method;
use tfb_math::acf::{acf, acf_fft};
use tfb_math::matrix::Matrix;
use tfb_nn::TrainConfig;

/// Count every allocation the benchmark makes (feature `alloc-track`,
/// on by default) so the emitted JSON carries memory cost next to time.
#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: tfb_obs::alloc::CountingAllocator = tfb_obs::alloc::CountingAllocator;

/// Pseudo-random matrix from a fixed xorshift stream (no zeros, so the
/// GEMM zero-skip cannot bias the comparison).
fn pseudo_random_matrix(rows: usize, cols: usize, mut seed: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.data_mut() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        *v = (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    m
}

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let mut entries: Vec<BenchEntry> = Vec::new();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("machine: {cores} core(s) — parallel entries scale with this");
    push(&mut entries, "engine/cores", cores as f64, "count");
    let profile = tfb_datagen::profile_by_name("ETTh1").expect("ETTh1 profile");
    let series = profile.generate(tfb_datagen::Scale {
        max_len: 2_000,
        max_dim: 6,
    });
    let quick = TrainConfig {
        epochs: 2,
        max_samples: 512,
        ..TrainConfig::default()
    };
    let (lookback, horizon) = (96, 24);

    // --- Window methods: per-window loop vs one batched call. ---------
    println!("== window methods: sequential vs batched inference ==");
    let mut speedups: Vec<f64> = Vec::new();
    for name in ["LR", "NLinear", "DLinear", "MLP", "N-BEATS"] {
        let mut seq_settings = EvalSettings::rolling(lookback, horizon, profile.split);
        seq_settings.batch_inference = false;
        let mut batch_settings = seq_settings.clone();
        batch_settings.batch_inference = true;
        let mut m1 =
            build_method(name, lookback, horizon, series.dim(), Some(quick)).expect("method");
        let mut m2 =
            build_method(name, lookback, horizon, series.dim(), Some(quick)).expect("method");
        #[cfg(feature = "alloc-track")]
        let alloc_before = tfb_obs::alloc::stats();
        let seq = evaluate(&mut m1, &series, &seq_settings).expect("sequential eval");
        let bat = evaluate(&mut m2, &series, &batch_settings).expect("batched eval");
        #[cfg(feature = "alloc-track")]
        {
            let d = tfb_obs::alloc::delta(alloc_before, tfb_obs::alloc::stats());
            push(
                &mut entries,
                format!("engine/{name}/alloc_calls"),
                d.calls as f64,
                "count",
            );
            push(
                &mut entries,
                format!("engine/{name}/alloc_bytes"),
                d.bytes as f64 / (1024.0 * 1024.0),
                "MiB",
            );
        }
        assert_eq!(
            seq.metrics, bat.metrics,
            "{name}: batched metrics diverged from sequential"
        );
        let s_us = seq.infer_time.as_secs_f64() * 1e6;
        let b_us = bat.infer_time.as_secs_f64() * 1e6;
        let speedup = s_us / b_us;
        speedups.push(speedup);
        println!(
            "{name:>8}: {s_us:9.2} us/window sequential | {b_us:9.2} us/window batched | {speedup:6.1}x ({} windows)",
            seq.n_windows
        );
        push(
            &mut entries,
            format!("engine/{name}/sequential_infer"),
            s_us,
            "us/window",
        );
        push(
            &mut entries,
            format!("engine/{name}/batched_infer"),
            b_us,
            "us/window",
        );
        push(&mut entries, format!("engine/{name}/speedup"), speedup, "x");
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("window-method geometric-mean speedup: {geomean:.1}x");
    push(
        &mut entries,
        "engine/window_methods/geomean_speedup",
        geomean,
        "x",
    );

    // --- Statistical methods: sequential vs parallel boundaries. ------
    println!("\n== statistical methods: sequential vs parallel boundaries ==");
    for name in ["Theta", "ETS"] {
        let mut seq_settings = EvalSettings::rolling(lookback, horizon, profile.split);
        seq_settings.max_windows = 120;
        seq_settings.window_parallelism = 1;
        let mut par_settings = seq_settings.clone();
        par_settings.window_parallelism = 0;
        let mut m = build_method(name, lookback, horizon, series.dim(), None).expect("method");
        let t0 = Instant::now();
        let seq = evaluate(&mut m, &series, &seq_settings).expect("sequential eval");
        let s_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let par = evaluate(&mut m, &series, &par_settings).expect("parallel eval");
        let p_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            seq.metrics, par.metrics,
            "{name}: parallel metrics diverged from sequential"
        );
        let speedup = s_ms / p_ms;
        println!(
            "{name:>8}: {s_ms:9.1} ms sequential | {p_ms:9.1} ms parallel | {speedup:5.1}x ({} windows)",
            seq.n_windows
        );
        push(
            &mut entries,
            format!("engine/{name}/sequential_wall"),
            s_ms,
            "ms",
        );
        push(
            &mut entries,
            format!("engine/{name}/parallel_wall"),
            p_ms,
            "ms",
        );
        push(&mut entries, format!("engine/{name}/speedup"), speedup, "x");
    }

    // --- GEMM kernel: single-threaded vs par_matmul. ------------------
    println!("\n== kernels ==");
    let a = pseudo_random_matrix(512, 512, 0x1234_5678);
    let b = pseudo_random_matrix(512, 512, 0x9abc_def0);
    let mut single_ms = f64::INFINITY;
    let mut parallel_ms = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r1 = a.matmul(&b).expect("matmul");
        single_ms = single_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        let r2 = a.par_matmul(&b).expect("par_matmul");
        parallel_ms = parallel_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        assert_eq!(r1.data(), r2.data(), "par_matmul diverged from matmul");
    }
    println!(
        "matmul 512x512: {single_ms:7.2} ms single | {parallel_ms:7.2} ms parallel | {:5.1}x",
        single_ms / parallel_ms
    );
    push(&mut entries, "kernel/matmul_512/single", single_ms, "ms");
    push(
        &mut entries,
        "kernel/matmul_512/parallel",
        parallel_ms,
        "ms",
    );
    push(
        &mut entries,
        "kernel/matmul_512/speedup",
        single_ms / parallel_ms,
        "x",
    );

    // --- Full-lag ACF: direct O(n^2) vs FFT O(n log n). ---------------
    let n = 16_384usize;
    let xs: Vec<f64> = (0..n)
        .map(|t| (t as f64 / 37.0).sin() + 0.0005 * t as f64)
        .collect();
    let t0 = Instant::now();
    let direct = acf(&xs, n - 1);
    let direct_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let fft = acf_fft(&xs, n - 1);
    let fft_ms = t1.elapsed().as_secs_f64() * 1e3;
    for (k, (d, f)) in direct.iter().zip(&fft).enumerate() {
        assert!((d - f).abs() < 1e-9, "acf lag {k}: {d} vs {f}");
    }
    println!(
        "acf n={n}:   {direct_ms:7.1} ms direct | {fft_ms:7.2} ms fft      | {:5.0}x",
        direct_ms / fft_ms
    );
    push(&mut entries, "kernel/acf_16384/direct", direct_ms, "ms");
    push(&mut entries, "kernel/acf_16384/fft", fft_ms, "ms");
    push(
        &mut entries,
        "kernel/acf_16384/speedup",
        direct_ms / fft_ms,
        "x",
    );

    // --- Memory: peak RSS and whole-run allocator totals. -------------
    if let Some(rss) = tfb_obs::peak_rss_bytes() {
        let mib = rss as f64 / (1024.0 * 1024.0);
        println!("\npeak RSS: {mib:.1} MiB");
        push(&mut entries, "engine/peak_rss", mib, "MiB");
    }
    #[cfg(feature = "alloc-track")]
    {
        let a = tfb_obs::alloc::stats();
        println!(
            "allocator: {} calls | {:.1} MiB requested | {:.1} MiB peak live",
            a.calls,
            a.bytes as f64 / (1024.0 * 1024.0),
            a.peak_live_bytes as f64 / (1024.0 * 1024.0)
        );
        push(&mut entries, "engine/alloc/calls", a.calls as f64, "count");
        push(
            &mut entries,
            "engine/alloc/bytes",
            a.bytes as f64 / (1024.0 * 1024.0),
            "MiB",
        );
        push(
            &mut entries,
            "engine/alloc/peak_live",
            a.peak_live_bytes as f64 / (1024.0 * 1024.0),
            "MiB",
        );
    }

    // --- Emit rebar-style JSON at the workspace root. -----------------
    let path = workspace_root().join("BENCH_engine.json");
    write_bench_json(&path, &entries).expect("write BENCH_engine.json");
    println!("\nwrote {}", path.display());
}

//! Figure 1: visualization of series with distinct vs. indistinct
//! characteristics, with the computed characteristic value in each corner.
//!
//! We emit, for each of the five univariate characteristics, one exemplar
//! series with the characteristic pronounced and one without, plus both
//! computed values — the paper's panel as data (series CSVs land in
//! `target/tfb-results/` for plotting).

use tfb_bench::results_dir;
use tfb_characteristics::{
    adf_pvalue, seasonality_strength, shifting_value, transition_value, trend_strength,
};
use tfb_datagen::{SeriesBuilder, TrendKind};

fn emit(name: &str, series: &[f64]) {
    let path = results_dir().join(format!("figure1_{name}.csv"));
    let mut text = String::from("t,value\n");
    for (t, v) in series.iter().enumerate() {
        text.push_str(&format!("{t},{v}\n"));
    }
    std::fs::write(path, text).expect("write series csv");
}

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    println!("Figure 1 — characteristic exemplars (value with / without):\n");
    let n = 480;

    let seasonal = SeriesBuilder::new(n, 1)
        .seasonal(24, 4.0)
        .noise(0.4)
        .build();
    let flat = SeriesBuilder::new(n, 2).noise(1.0).build();
    println!(
        "seasonality (AQShunyi-style): {:.3} vs {:.3}",
        seasonality_strength(&seasonal, Some(24)),
        seasonality_strength(&flat, Some(24)),
    );
    emit("seasonal_yes", &seasonal);
    emit("seasonal_no", &flat);

    let trending = SeriesBuilder::new(n, 3)
        .trend(TrendKind::Linear { slope: 0.05 })
        .noise(0.5)
        .build();
    println!(
        "trend (FRED-MD-style):        {:.3} vs {:.3}",
        trend_strength(&trending, None),
        trend_strength(&flat, None),
    );
    emit("trend_yes", &trending);

    let shifted = SeriesBuilder::new(n, 4)
        .level_shift(0.55, 8.0)
        .ar(0.6)
        .noise(0.7)
        .build();
    println!(
        "shifting (Electricity-style): {:.3} vs {:.3}",
        shifting_value(&shifted),
        shifting_value(&flat),
    );
    emit("shifting_yes", &shifted);

    let structured = SeriesBuilder::new(n, 5)
        .trend(TrendKind::Linear { slope: 0.03 })
        .seasonal(48, 2.0)
        .noise(0.3)
        .build();
    println!(
        "transition:                   {:.4} vs {:.4}",
        transition_value(&structured),
        transition_value(&flat),
    );
    emit("transition_yes", &structured);

    let walk = SeriesBuilder::new(n, 6).ar(1.0).noise(1.0).build();
    println!(
        "stationarity (ADF p):         {:.3} (noise) vs {:.3} (random walk)",
        adf_pvalue(&flat),
        adf_pvalue(&walk),
    );
    emit("stationary_yes", &flat);
    emit("stationary_no", &walk);
    println!("\nseries CSVs written to {}", results_dir().display());
}

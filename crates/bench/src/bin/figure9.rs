//! Figure 9: Transformer-based vs. CNN-based vs. Linear-based methods —
//! the best MAE of each family per dataset, with the winning family marked.
//!
//! The shape to reproduce (Section 5.3.1): linear-based methods win on
//! datasets with increasing trend or significant shifts (FRED-MD, NYSE,
//! Covid-19-style); transformer-based methods win where seasonality,
//! stationarity or strong internal similarity dominates (Electricity,
//! Solar, Traffic-style).

use tfb_bench::{eval_best_lookback, results_dir, RunScale};
use tfb_core::Metric;
use tfb_nn::DeepModelKind;

const DATASETS: [&str; 8] = [
    "FRED-MD",
    "NYSE",
    "Covid-19",
    "NN5",
    "Electricity",
    "Solar",
    "Traffic",
    "ILI",
];

fn family_members(family: &str) -> Vec<&'static str> {
    DeepModelKind::PAPER_BASELINES
        .iter()
        .filter(|k| k.family() == family)
        .map(|k| k.label())
        .collect()
}

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let families = ["Transformer", "CNN", "Linear/MLP"];
    println!("Figure 9 — best family MAE per dataset:\n");
    println!("| dataset | Transformer | CNN | Linear | winner |");
    println!("|---|---|---|---|---|");
    let mut csv = String::from("dataset,family,best_mae\n");
    for dataset in DATASETS {
        let profile = tfb_datagen::profile_by_name(dataset).expect("profile exists");
        let series = profile.generate(scale.data_scale());
        let horizon = 24;
        let mut best_per_family = Vec::new();
        for family in families {
            // To keep the default run tractable we score two representatives
            // per family (the full set under TFB_FULL=1).
            let mut members = family_members(family);
            if scale != RunScale::Full {
                members.truncate(2);
            }
            let mut best = f64::INFINITY;
            for m in members {
                if let Some(out) = eval_best_lookback(&profile, &series, m, horizon, scale) {
                    let v = out.metric(Metric::Mae);
                    if v.is_finite() {
                        best = best.min(v);
                    }
                }
            }
            csv.push_str(&format!("{dataset},{family},{best}\n"));
            best_per_family.push(best);
        }
        let winner = families[best_per_family
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)];
        println!(
            "| {dataset} | {:.3} | {:.3} | {:.3} | {winner} |",
            best_per_family[0], best_per_family[1], best_per_family[2]
        );
    }
    let path = results_dir().join("figure9.csv");
    std::fs::write(&path, csv).expect("write figure9.csv");
    println!("\nwrote {}", path.display());
}

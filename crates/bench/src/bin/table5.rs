//! Table 5: statistics of the 25 multivariate datasets — name, domain,
//! frequency, length, dimension and chronological split. Printed from the
//! profile registry; the paper-published shapes are recorded verbatim in
//! each profile and the generated stand-ins match them at `TFB_FULL=1`.

use tfb_bench::RunScale;
use tfb_datagen::all_profiles;

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env().data_scale();
    println!("Table 5 — multivariate dataset statistics:\n");
    println!("| dataset | domain | frequency | paper length | paper dim | generated length | generated dim | split |");
    println!("|---|---|---|---|---|---|---|---|");
    for p in all_profiles() {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            p.name,
            p.domain.label(),
            p.frequency.label(),
            p.paper_len,
            p.paper_dim,
            p.len(scale),
            p.dim(scale),
            p.split.label(),
        );
    }
    let profiles = all_profiles();
    let domains: std::collections::BTreeSet<&str> =
        profiles.iter().map(|p| p.domain.label()).collect();
    println!(
        "\n{} datasets across {} domains: {:?}",
        profiles.len(),
        domains.len(),
        domains
    );
}

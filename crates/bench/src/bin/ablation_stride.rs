//! Ablation: rolling-forecast stride sensitivity.
//!
//! The rolling strategy (Figure 6b) grows the history by `stride` steps per
//! iteration. TFB evaluates with stride 1; this ablation shows how far a
//! cheaper (larger) stride can drift from the stride-1 reference, which is
//! what a window-budget subsample must be compared against.

use tfb_bench::RunScale;
use tfb_core::eval::{evaluate, EvalSettings, Strategy};
use tfb_core::method::build_method;
use tfb_core::Metric;

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let profile = tfb_datagen::profile_by_name("ETTh1").expect("profile exists");
    let series = profile.generate(scale.data_scale());
    let (lookback, horizon) = (48, 24);
    println!("Stride ablation on ETTh1 (H={lookback}, F={horizon}, method = LR):\n");
    println!("| stride | windows | mae | drift vs stride-1 |");
    println!("|---|---|---|---|");
    let mut reference = f64::NAN;
    for stride in [1usize, 2, 4, 8, 16, 32] {
        let mut settings = EvalSettings::rolling(lookback, horizon, profile.split);
        settings.strategy = Strategy::Rolling { stride };
        settings.max_windows = 0; // every window at this stride
        let mut method =
            build_method("LR", lookback, horizon, series.dim(), None).expect("known method");
        match evaluate(&mut method, &series, &settings) {
            Ok(out) => {
                let mae = out.metric(Metric::Mae);
                if stride == 1 {
                    reference = mae;
                }
                println!(
                    "| {stride} | {} | {mae:.4} | {:+.2}% |",
                    out.n_windows,
                    (mae / reference - 1.0) * 100.0
                );
            }
            Err(e) => println!("| {stride} | - | err({e}) | - |"),
        }
    }
}

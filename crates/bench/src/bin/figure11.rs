//! Figure 11: parameter counts versus inference time per sample for the
//! deep methods, on three dataset scales (Traffic = large, Weather =
//! medium, ILI = small).
//!
//! The shape to reproduce: inference time grows with parameter count;
//! linear-based methods sit in the cheap corner; among transformers,
//! PatchTST is markedly faster than Triformer and Crossformer.

use tfb_bench::{eval_best_lookback, results_dir, RunScale};
use tfb_core::Metric;

const METHODS: [&str; 10] = [
    "NLinear",
    "DLinear",
    "TiDE",
    "PatchTST",
    "Crossformer",
    "Triformer",
    "FEDformer",
    "TimesNet",
    "MICN",
    "RNN",
];

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let cases = [("Traffic", 96usize), ("Weather", 96), ("ILI", 24)];
    let mut csv = String::from("dataset,method,parameters,infer_us_per_window,mae\n");
    for (dataset, paper_h) in cases {
        let profile = tfb_datagen::profile_by_name(dataset).expect("profile exists");
        let series = profile.generate(scale.data_scale());
        let horizon = match scale {
            RunScale::Full => paper_h,
            _ => 24,
        };
        println!("\n## {dataset} (F={horizon})\n");
        println!("| method | parameters | inference (µs/window) | mae |");
        println!("|---|---|---|---|");
        for method in METHODS {
            match eval_best_lookback(&profile, &series, method, horizon, scale) {
                Some(out) => {
                    let us = out.infer_time.as_secs_f64() * 1e6;
                    println!(
                        "| {method} | {} | {us:.1} | {:.3} |",
                        out.parameters,
                        out.metric(Metric::Mae)
                    );
                    csv.push_str(&format!(
                        "{dataset},{method},{},{us},{}\n",
                        out.parameters,
                        out.metric(Metric::Mae)
                    ));
                }
                None => println!("| {method} | - | - | - |"),
            }
        }
    }
    let path = results_dir().join("figure11.csv");
    std::fs::write(&path, csv).expect("write figure11.csv");
    println!("\nwrote {}", path.display());
}

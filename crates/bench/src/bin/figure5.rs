//! Figure 5: coverage of the univariate characteristic space. Each series
//! becomes a 5-feature vector (trend, seasonality, stationarity, shifting,
//! transition), PCA reduces to 2-D, and coverage is measured as the number
//! of occupied cells on a fixed grid (the text form of the paper's hexbin
//! panels).
//!
//! The competitor archives are emulated as restrictions of the generated
//! archive to the frequency profile each benchmark actually has (M4: all
//! frequencies; M3: yearly/quarterly/monthly/other; NN5: daily only;
//! Tourism: yearly/quarterly/monthly; M1: yearly/quarterly/monthly;
//! Wike2000-style web: daily). The shape to reproduce: the TFB selection
//! covers at least as many cells as every restricted archive.

use tfb_bench::{results_dir, RunScale};
use tfb_characteristics::CharacteristicVector;
use tfb_data::Frequency;
use tfb_datagen::univariate::UnivariateArchive;
use tfb_math::matrix::Matrix;
use tfb_math::pca::Pca;

const GRID: usize = 12;

fn occupied_cells(points: &[(f64, f64)], lo: (f64, f64), hi: (f64, f64)) -> usize {
    let mut cells = std::collections::HashSet::new();
    for &(x, y) in points {
        let gx = (((x - lo.0) / (hi.0 - lo.0).max(1e-9)) * GRID as f64)
            .clamp(0.0, GRID as f64 - 1.0) as usize;
        let gy = (((y - lo.1) / (hi.1 - lo.1).max(1e-9)) * GRID as f64)
            .clamp(0.0, GRID as f64 - 1.0) as usize;
        cells.insert((gx, gy));
    }
    cells.len()
}

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let divisor = match scale {
        RunScale::Full => 4,
        RunScale::Default => 30,
        RunScale::Fast => 120,
    };
    let archive = UnivariateArchive::generate(divisor, 7);
    println!(
        "Figure 5 — PCA coverage of the characteristic space ({} series, {GRID}x{GRID} grid)",
        archive.len()
    );
    // Feature matrix.
    let rows: Vec<Vec<f64>> = archive
        .series
        .iter()
        .map(|s| CharacteristicVector::of_series(s).as_features().to_vec())
        .collect();
    let data = Matrix::from_rows(&rows).expect("nonempty archive");
    let pca = Pca::fit(&data).expect("pca fits");
    let proj = pca.transform(&data, 2).expect("2 components");
    let points: Vec<(f64, f64)> = (0..proj.rows())
        .map(|i| (proj[(i, 0)], proj[(i, 1)]))
        .collect();
    let lo = points.iter().fold((f64::INFINITY, f64::INFINITY), |a, p| {
        (a.0.min(p.0), a.1.min(p.1))
    });
    let hi = points
        .iter()
        .fold((f64::NEG_INFINITY, f64::NEG_INFINITY), |a, p| {
            (a.0.max(p.0), a.1.max(p.1))
        });

    let benchmarks: [(&str, Option<&[Frequency]>); 6] = [
        ("TFB", None),
        ("M4", None), // M4 also spans all frequencies; it differs in size, not profile
        (
            "M3",
            Some(&[
                Frequency::Yearly,
                Frequency::Quarterly,
                Frequency::Monthly,
                Frequency::Other,
            ]),
        ),
        (
            "M1/Tourism",
            Some(&[Frequency::Yearly, Frequency::Quarterly, Frequency::Monthly]),
        ),
        ("NN5", Some(&[Frequency::Daily])),
        ("Web/Wike", Some(&[Frequency::Daily, Frequency::Weekly])),
    ];
    println!("\n| archive | series | occupied cells |");
    println!("|---|---|---|");
    let mut tfb_cells = 0;
    for (name, freqs) in benchmarks {
        let pts: Vec<(f64, f64)> = archive
            .series
            .iter()
            .zip(&points)
            .filter(|(s, _)| freqs.is_none_or(|fs| fs.contains(&s.frequency)))
            .map(|(_, &p)| p)
            .collect();
        let cells = occupied_cells(&pts, lo, hi);
        if name == "TFB" {
            tfb_cells = cells;
        }
        println!("| {name} | {} | {cells} |", pts.len());
    }
    println!(
        "\nexplained variance of the first two components: {:.1}%",
        pca.explained_variance_ratio(2) * 100.0
    );
    // Emit the 2-D embedding for plotting.
    let mut csv = String::from("pc1,pc2,frequency\n");
    for (s, (x, y)) in archive.series.iter().zip(&points) {
        csv.push_str(&format!("{x},{y},{}\n", s.frequency.label()));
    }
    let path = results_dir().join("figure5_embedding.csv");
    std::fs::write(&path, csv).expect("write embedding");
    println!("wrote {}", path.display());
    assert!(tfb_cells > 0);
}

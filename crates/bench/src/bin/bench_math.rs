//! `bench_math`: ns-level microbenchmarks of the tfb-math dispatch
//! kernels (dot / axpy / GEMM k-tile), scalar reference vs the
//! unrolled (and, where the CPU has it, AVX2) path, across shapes that
//! straddle the 4-wide unroll and the serve-sized GEMM.
//!
//! Methodology: each (kernel, shape, path) cell is timed as
//! `min over R repetitions of (wall time of K back-to-back calls / K)`
//! — the minimum estimates the true cost with the least scheduler and
//! frequency noise, which is what a speedup ratio needs. Inputs carry
//! exact zeros at the same density the GEMM zero-skip sees in real
//! designs. Results print as a table and land in `BENCH_math.json` at
//! the workspace root in the same rebar-style `{name, value, unit}`
//! schema as `BENCH_serve.json`.
//!
//! The speedup entries compare the *same semantics on the same data* —
//! every path is bit-identical by construction (see
//! `tfb-math/tests/kernel_props.rs`), so any ratio above 1.0 is free
//! throughput, not a precision trade.

use std::hint::black_box;
use std::time::Instant;

use tfb_bench::emit::{push, workspace_root, write_bench_json, BenchEntry};
use tfb_bench::RunScale;
use tfb_math::kernel::{self, KernelPath};

/// One timed closure per kernel variant.
type TimedRun<'a> = (&'a str, Box<dyn Fn() -> f64 + 'a>);

#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: tfb_obs::alloc::CountingAllocator = tfb_obs::alloc::CountingAllocator;

/// Deterministic pseudo-random data. `zeros` mixes exact zeros in
/// (about one in seven) — used for the zero-skip kernels, whose branch
/// behaviour is the thing being measured; the dense variant matches
/// fitted model weights, where exact zeros are rare.
fn data(n: usize, seed: u64, zeros: bool) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if zeros && state.is_multiple_of(7) {
                0.0
            } else {
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            }
        })
        .collect()
}

/// `min over reps of (elapsed(K calls) / K)`, in nanoseconds.
fn time_ns(reps: usize, calls: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..calls {
            f();
        }
        let per_call = t0.elapsed().as_nanos() as f64 / calls as f64;
        if per_call < best {
            best = per_call;
        }
    }
    best
}

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let (reps, budget_ns) = match scale {
        RunScale::Fast => (5, 200_000.0),
        RunScale::Default => (15, 1_000_000.0),
        RunScale::Full => (40, 5_000_000.0),
    };
    let mut entries: Vec<BenchEntry> = Vec::new();

    let best = kernel::best_unrolled();
    println!(
        "kernel paths: scalar vs {} ({} reps, min-of-reps)",
        best.name(),
        reps
    );

    // How many back-to-back calls one timing sample aggregates: enough
    // that a sample is well above timer resolution, derived from a
    // first scalar estimate against the per-sample time budget.
    let calls_for = |est_ns: f64| ((budget_ns / est_ns.max(1.0)) as usize).clamp(8, 100_000);

    // dot (serial accumulator chain) and its zero-skipping variant over
    // unroll-straddling and cache-spanning lengths.
    for &n in &[64usize, 256, 1024, 4096] {
        // `dot_skip` branches on zeros in `x`, so `x` carries them.
        let x = data(n, n as u64 + 1, true);
        let y = data(n, n as u64 + 2, false);
        let runs: [TimedRun; 2] = [
            (
                "dot",
                Box::new(|| kernel::dot_acc(0.0, black_box(&x), black_box(&y))),
            ),
            (
                "dot_skip",
                Box::new(|| kernel::dot_skip(black_box(&x), black_box(&y))),
            ),
        ];
        for (kind, run) in &runs {
            let est = kernel::with_path(KernelPath::Scalar, || {
                time_ns(2, 64, || {
                    black_box(run());
                })
            });
            let calls = calls_for(est);
            let scalar = kernel::with_path(KernelPath::Scalar, || {
                time_ns(reps, calls, || {
                    black_box(run());
                })
            });
            let fast = kernel::with_path(best, || {
                time_ns(reps, calls, || {
                    black_box(run());
                })
            });
            report(&mut entries, kind, &format!("n{n}"), scalar, fast);
        }
    }

    // axpy: out += a * x, elementwise-independent (the SIMD-friendly
    // shape).
    for &n in &[64usize, 256, 1024, 4096] {
        let x = data(n, n as u64 + 3, false);
        let mut out = data(n, n as u64 + 4, false);
        let est = kernel::with_path(KernelPath::Scalar, || {
            time_ns(2, 64, || {
                kernel::axpy(1.0001, black_box(&x), black_box(&mut out))
            })
        });
        let calls = calls_for(est);
        let scalar = kernel::with_path(KernelPath::Scalar, || {
            time_ns(reps, calls, || {
                kernel::axpy(1.0001, black_box(&x), black_box(&mut out))
            })
        });
        let fast = kernel::with_path(best, || {
            time_ns(reps, calls, || {
                kernel::axpy(1.0001, black_box(&x), black_box(&mut out))
            })
        });
        report(&mut entries, "axpy", &format!("n{n}"), scalar, fast);
    }

    // GEMM k-tile: (depth x n) shapes — the serve-sized LR forecast
    // (depth 24 inputs x 8 outputs), a square-ish mid size, and a
    // non-multiple-of-4 tail in both dimensions.
    for &(depth, n) in &[(24usize, 8usize), (64, 64), (130, 33), (128, 256)] {
        let lhs = data(depth, (depth * 31 + n) as u64, false);
        let rhs = data(depth * n, (depth * 37 + n) as u64, false);
        let mut out = data(n, n as u64 + 9, false);
        let est = kernel::with_path(KernelPath::Scalar, || {
            time_ns(2, 16, || {
                kernel::gemm_row_ktile(black_box(&lhs), black_box(&rhs), n, black_box(&mut out))
            })
        });
        let calls = calls_for(est);
        let scalar = kernel::with_path(KernelPath::Scalar, || {
            time_ns(reps, calls, || {
                kernel::gemm_row_ktile(black_box(&lhs), black_box(&rhs), n, black_box(&mut out))
            })
        });
        let fast = kernel::with_path(best, || {
            time_ns(reps, calls, || {
                kernel::gemm_row_ktile(black_box(&lhs), black_box(&rhs), n, black_box(&mut out))
            })
        });
        report(
            &mut entries,
            "gemm",
            &format!("k{depth}_n{n}"),
            scalar,
            fast,
        );
    }

    let path = workspace_root().join("BENCH_math.json");
    write_bench_json(&path, &entries).expect("write BENCH_math.json");
    println!("wrote {}", path.display());
}

fn report(entries: &mut Vec<BenchEntry>, kind: &str, shape: &str, scalar_ns: f64, fast_ns: f64) {
    let speedup = scalar_ns / fast_ns.max(1e-9);
    println!(
        "{kind:>9} {shape:<10} scalar {scalar_ns:10.1} ns | {} {fast_ns:10.1} ns | x{speedup:5.2}",
        kernel::best_unrolled().name()
    );
    push(
        entries,
        format!("math/{kind}_{shape}_scalar"),
        scalar_ns,
        "ns",
    );
    push(
        entries,
        format!("math/{kind}_{shape}_unrolled"),
        fast_ns,
        "ns",
    );
    push(
        entries,
        format!("math/{kind}_{shape}_speedup"),
        speedup,
        "x",
    );
}

//! Table 1: VAR and LR versus recent deep methods on NASDAQ, Wind and ILI
//! (MAE, forecasting horizon 24).
//!
//! The paper's headline for Issue 2: traditional methods beat recent SOTA
//! methods on several datasets. The shape to reproduce: VAR competitive or
//! best on NASDAQ, LR competitive on Wind, and the deep models ahead on
//! ILI's strongly seasonal signal.

use tfb_bench::{emit, eval_best_lookback, RunScale};
use tfb_core::report::{RankTable, ResultTable};
use tfb_core::Metric;

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let methods = [
        "VAR",
        "LR",
        "PatchTST",
        "NLinear",
        "FEDformer",
        "Crossformer",
    ];
    let mut table = ResultTable::default();
    for name in ["NASDAQ", "Wind", "ILI"] {
        let profile = tfb_datagen::profile_by_name(name).expect("profile exists");
        let series = profile.generate(scale.data_scale());
        for method in methods {
            match eval_best_lookback(&profile, &series, method, 24, scale) {
                Some(out) => table.push(&out),
                None => eprintln!("{name}/{method}: no result"),
            }
        }
    }
    println!("Table 1 — MAE at F=24 (paper: VAR best on NASDAQ, LR best on Wind):\n");
    emit(&table, "table1", Metric::Mae);
    let ranks = RankTable::compute(&table, Metric::Mae);
    println!("\nwins: {:?}", ranks.wins);
}

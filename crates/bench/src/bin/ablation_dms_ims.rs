//! Ablation: direct multi-step (DMS) versus iterative multi-step (IMS)
//! forecasting for the machine-learning methods.
//!
//! TFB's method layer supports both (Section 4.4). DMS trains one
//! multi-output model per horizon; IMS trains a one-step model and feeds
//! predictions back. The classical expectation: IMS degrades with the
//! horizon as errors compound, DMS stays flatter.

use tfb_bench::RunScale;
use tfb_core::eval::{evaluate, EvalSettings};
use tfb_core::method::Method;
use tfb_core::Metric;
use tfb_data::MultiSeries;
use tfb_models::tabular::iterate_one_step;
use tfb_models::{LinearRegressionForecaster, ModelError, WindowForecaster};

/// LR wrapped to forecast iteratively with a one-step inner model.
struct IterativeLr {
    inner: LinearRegressionForecaster,
    horizon: usize,
}

impl IterativeLr {
    fn new(lookback: usize, horizon: usize) -> IterativeLr {
        IterativeLr {
            inner: LinearRegressionForecaster::new(lookback, 1),
            horizon,
        }
    }
}

impl WindowForecaster for IterativeLr {
    fn name(&self) -> &'static str {
        "LR-IMS"
    }
    fn lookback(&self) -> usize {
        self.inner.lookback()
    }
    fn horizon(&self) -> usize {
        self.horizon
    }
    fn train(&mut self, train: &MultiSeries) -> Result<(), ModelError> {
        self.inner.train(train)
    }
    fn predict(&self, window: &[f64], dim: usize) -> Result<Vec<f64>, ModelError> {
        let channels = tfb_models::window_channels(window, dim);
        let mut per_channel = Vec::with_capacity(dim);
        for ch in &channels {
            per_channel.push(iterate_one_step(ch, self.horizon, |w| {
                self.inner.predict(w, 1).map(|v| v[0]).unwrap_or(f64::NAN)
            }));
        }
        Ok(tfb_models::interleave_channels(&per_channel))
    }
}

fn main() {
    tfb_bench::with_obs(env!("CARGO_BIN_NAME"), run);
}

fn run() {
    let scale = RunScale::from_env();
    let profile = tfb_datagen::profile_by_name("Weather").expect("profile exists");
    let series = profile.generate(scale.data_scale());
    let lookback = 48;
    println!("DMS vs IMS for LinearRegression on Weather (H={lookback}):\n");
    println!("| horizon | DMS mae | IMS mae | IMS penalty |");
    println!("|---|---|---|---|");
    for horizon in [6usize, 12, 24, 48] {
        let mut settings = EvalSettings::rolling(lookback, horizon, profile.split);
        settings.max_windows = scale.max_windows().max(10);
        let mut dms = Method::Window(Box::new(LinearRegressionForecaster::new(lookback, horizon)));
        let mut ims = Method::Window(Box::new(IterativeLr::new(lookback, horizon)));
        let dms_mae = evaluate(&mut dms, &series, &settings)
            .map(|o| o.metric(Metric::Mae))
            .unwrap_or(f64::NAN);
        let ims_mae = evaluate(&mut ims, &series, &settings)
            .map(|o| o.metric(Metric::Mae))
            .unwrap_or(f64::NAN);
        println!(
            "| {horizon} | {dms_mae:.4} | {ims_mae:.4} | {:+.1}% |",
            (ims_mae / dms_mae - 1.0) * 100.0
        );
    }
}

//! KLV-style measurement capture: sample aggregation and the
//! [`MeasurementRow`] records the harness attaches to every run manifest.
//!
//! A cell execution produces one or more *quantities* (wall time,
//! per-window inference cost, throughput, accuracy scores), each observed
//! over the cell's `iters` repetitions. This module reduces those samples
//! to the rebar-style aggregate — min / median / mean / stddev — and tags
//! the row with the cell's full provenance (suite, engine, dataset,
//! method, characteristic, horizon) so `tfb bench rank` can regenerate
//! per-characteristic method rankings from history alone.

use crate::emit::BenchEntry;
use crate::suite::{Cell, Suite};
use tfb_obs::MeasurementRow;

/// Aggregates of one quantity's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of samples.
    pub iters: u64,
    /// Smallest sample — the best estimate of true cost for timings.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// Mean sample.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

/// Reduces samples to [`SampleStats`]; non-finite samples are dropped.
/// An all-non-finite input yields NaN aggregates with `iters == 0`.
pub fn stats(samples: &[f64]) -> SampleStats {
    let mut xs: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    if xs.is_empty() {
        return SampleStats {
            iters: 0,
            min: f64::NAN,
            median: f64::NAN,
            mean: f64::NAN,
            stddev: f64::NAN,
        };
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    let median = if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    };
    SampleStats {
        iters: n as u64,
        min: xs[0],
        median,
        mean,
        stddev: var.sqrt(),
    }
}

/// Builds the measurement record for one (cell, quantity) over its
/// samples, carrying the cell's full provenance.
pub fn measurement(
    suite: &Suite,
    cell: &Cell,
    quantity: &str,
    unit: &str,
    samples: &[f64],
) -> MeasurementRow {
    let s = stats(samples);
    MeasurementRow {
        name: cell.id.clone(),
        quantity: quantity.to_string(),
        unit: unit.to_string(),
        iters: s.iters,
        min: s.min,
        median: s.median,
        mean: s.mean,
        stddev: s.stddev,
        suite: suite.name.clone(),
        engine: suite.engine.name().to_string(),
        dataset: cell.dataset.clone(),
        method: cell.method.clone(),
        characteristic: cell.characteristic.clone(),
        horizon: cell.horizon as u64,
    }
}

/// Renders measurement rows as `BENCH_*.json` entries (`<cell>/<quantity>`,
/// median value) — the BENCH files are a *rendering* of captured
/// measurements, not a separate measurement path.
pub fn to_bench_entries(rows: &[MeasurementRow]) -> Vec<BenchEntry> {
    rows.iter()
        .map(|r| BenchEntry {
            name: format!("{}/{}", r.name, r.quantity),
            value: r.median,
            unit: r.unit.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::parse_suite;
    use std::path::Path;

    fn mini_suite() -> Suite {
        let doc = crate::toml::parse(
            "name = \"eval/x\"\nengine = \"eval\"\n[[entry]]\nname = \"LR-h24\"\nmethod = \"LR\"\ndataset = \"ILI\"\ncharacteristic = \"seasonality\"",
        )
        .unwrap();
        parse_suite(&doc, Path::new("x.toml")).unwrap()
    }

    #[test]
    fn stats_basics() {
        let s = stats(&[3.0, 1.0, 2.0]);
        assert_eq!(s.iters, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mean, 2.0);
        assert!((s.stddev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let even = stats(&[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(even.median, 2.5);
        // Non-finite samples are dropped, not propagated.
        let with_nan = stats(&[1.0, f64::NAN, 3.0]);
        assert_eq!(with_nan.iters, 2);
        assert_eq!(with_nan.median, 2.0);
        assert_eq!(stats(&[]).iters, 0);
        assert!(stats(&[f64::INFINITY]).min.is_nan());
    }

    #[test]
    fn measurement_carries_provenance() {
        let suite = mini_suite();
        let row = measurement(&suite, &suite.cells[0], "wall", "ns", &[2000.0, 1000.0]);
        assert_eq!(row.name, "eval/x/LR-h24");
        assert_eq!(row.quantity, "wall");
        assert_eq!(row.min, 1000.0);
        assert_eq!(row.median, 1500.0);
        assert_eq!(row.suite, "eval/x");
        assert_eq!(row.engine, "eval");
        assert_eq!(row.characteristic, "seasonality");
        assert_eq!(row.horizon, 24);
    }

    #[test]
    fn bench_rendering_uses_the_median() {
        let suite = mini_suite();
        let rows = vec![measurement(
            &suite,
            &suite.cells[0],
            "infer",
            "us/window",
            &[10.0, 30.0, 20.0],
        )];
        let entries = to_bench_entries(&rows);
        assert_eq!(entries[0].name, "eval/x/LR-h24/infer");
        assert_eq!(entries[0].value, 20.0);
        assert_eq!(entries[0].unit, "us/window");
    }
}

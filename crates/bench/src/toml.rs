//! A minimal TOML reader for benchmark suite files.
//!
//! The workspace is offline and std-only, so rather than depending on a
//! TOML crate this parses the small declarative subset the suite files
//! use — comments, `key = value` pairs (strings, integers, floats,
//! booleans, flat arrays), `[table]` sections and `[[array-of-tables]]`
//! sections — into a [`tfb_json::JsonValue`] tree. Suites written as
//! `.json` therefore share one downstream representation with `.toml`
//! suites: [`crate::suite`] never knows which syntax a file used.
//!
//! Out of scope (and rejected loudly, never misparsed): dotted keys,
//! inline tables, multi-line strings, dates.

use tfb_json::JsonValue;

/// Parses a TOML document into a JSON object tree.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut root: Vec<(String, JsonValue)> = Vec::new();
    // Path of the section the next key-value lands in: None = top level,
    // Some((name, is_array)) = inside `[name]` or the latest `[[name]]`.
    let mut section: Option<(String, bool)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let name = name.trim();
            validate_key(name).map_err(&err)?;
            match find_or_insert(&mut root, name, JsonValue::Array(vec![])) {
                JsonValue::Array(items) => items.push(JsonValue::Object(vec![])),
                _ => return Err(err(format!("{name:?} is both a value and a table array"))),
            }
            section = Some((name.to_string(), true));
        } else if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim();
            validate_key(name).map_err(&err)?;
            match find_or_insert(&mut root, name, JsonValue::Object(vec![])) {
                JsonValue::Object(_) => {}
                _ => return Err(err(format!("{name:?} is both a value and a table"))),
            }
            section = Some((name.to_string(), false));
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            validate_key(key).map_err(&err)?;
            let value = parse_value(value.trim()).map_err(&err)?;
            let target = match &section {
                None => &mut root,
                Some((name, is_array)) => {
                    let slot = find_or_insert(&mut root, name, JsonValue::Object(vec![]));
                    match (slot, is_array) {
                        (JsonValue::Object(fields), false) => fields,
                        (JsonValue::Array(items), true) => match items.last_mut() {
                            Some(JsonValue::Object(fields)) => fields,
                            _ => unreachable!("[[section]] always appends an object"),
                        },
                        _ => unreachable!("section headers fixed the slot's shape"),
                    }
                }
            };
            if target.iter().any(|(k, _)| k == key) {
                return Err(err(format!("duplicate key {key:?}")));
            }
            target.push((key.to_string(), value));
        } else {
            return Err(err(format!(
                "expected `key = value` or a section header, got {line:?}"
            )));
        }
    }
    Ok(JsonValue::Object(root))
}

/// Drops a `#` comment, honouring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = c == '\\' && !escaped && in_string;
    }
    line
}

fn validate_key(key: &str) -> Result<(), String> {
    if key.is_empty() {
        return Err("empty key".into());
    }
    if key.contains('.') {
        return Err(format!("dotted keys are not supported: {key:?}"));
    }
    if !key
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(format!("bare keys only (A-Za-z0-9_-): {key:?}"));
    }
    Ok(())
}

fn find_or_insert<'a>(
    fields: &'a mut Vec<(String, JsonValue)>,
    key: &str,
    default: JsonValue,
) -> &'a mut JsonValue {
    if let Some(i) = fields.iter().position(|(k, _)| k == key) {
        return &mut fields[i].1;
    }
    fields.push((key.to_string(), default));
    &mut fields.last_mut().unwrap().1
}

fn parse_value(text: &str) -> Result<JsonValue, String> {
    if text.is_empty() {
        return Err("missing value".into());
    }
    if let Some(rest) = text.strip_prefix('"') {
        return parse_string(rest);
    }
    if text.starts_with('[') {
        return parse_array(text);
    }
    match text {
        "true" => return Ok(JsonValue::Bool(true)),
        "false" => return Ok(JsonValue::Bool(false)),
        _ => {}
    }
    // TOML allows underscore separators in numbers.
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    cleaned
        .parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("unsupported value {text:?}"))
}

/// Parses the remainder of a basic string (after the opening quote); the
/// closing quote must end the value.
fn parse_string(rest: &str) -> Result<JsonValue, String> {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let tail = chars.as_str().trim();
                if !tail.is_empty() {
                    return Err(format!("trailing content after string: {tail:?}"));
                }
                return Ok(JsonValue::String(out));
            }
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => return Err(format!("unsupported escape \\{other}")),
                None => return Err("dangling escape".into()),
            },
            other => out.push(other),
        }
    }
    Err("unterminated string".into())
}

/// Parses a flat single-line array of scalars.
fn parse_array(text: &str) -> Result<JsonValue, String> {
    let inner = text
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("unterminated array")?;
    let mut items = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        items.push(parse_value(part)?);
    }
    Ok(JsonValue::Array(items))
}

/// Splits on commas outside quoted strings (arrays here are flat, so no
/// bracket nesting to track).
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        match c {
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = c == '\\' && !escaped && in_string;
    }
    parts.push(&text[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_suite_shape() {
        let doc = parse(
            r#"
# A suite file.
name = "eval/etth1"   # trailing comment
engine = "eval"

[defaults]
dataset = "ETTh1"
horizon = 24
iters = 3
batch = true

[[entry]]
name = "LR-h24"
method = "LR"

[[entry]]
name = "NLinear-h48"
method = "NLinear"
horizon = 48
lookbacks = [36, 104]
"#,
        )
        .expect("parses");
        assert_eq!(doc.get("name").unwrap().as_str(), Some("eval/etth1"));
        let defaults = doc.get("defaults").unwrap();
        assert_eq!(defaults.get("horizon").unwrap().as_usize(), Some(24));
        assert_eq!(defaults.get("batch").unwrap().as_bool(), Some(true));
        let entries = doc.get("entry").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("method").unwrap().as_str(), Some("LR"));
        assert_eq!(entries[1].get("horizon").unwrap().as_usize(), Some(48));
        let lb = entries[1].get("lookbacks").unwrap().as_array().unwrap();
        assert_eq!(lb.len(), 2);
        assert_eq!(lb[1].as_usize(), Some(104));
    }

    #[test]
    fn strings_with_hashes_escapes_and_unicode() {
        let doc = parse("title = \"50% #1 — a \\\"quote\\\"\"").expect("parses");
        assert_eq!(
            doc.get("title").unwrap().as_str(),
            Some("50% #1 — a \"quote\"")
        );
    }

    #[test]
    fn numbers_with_underscores() {
        let doc = parse("budget_ns = 1_000_000\nratio = 1.25\nneg = -4").expect("parses");
        assert_eq!(doc.get("budget_ns").unwrap().as_f64(), Some(1_000_000.0));
        assert_eq!(doc.get("ratio").unwrap().as_f64(), Some(1.25));
        assert_eq!(doc.get("neg").unwrap().as_f64(), Some(-4.0));
    }

    #[test]
    fn unsupported_toml_is_rejected_not_misparsed() {
        assert!(parse("a.b = 1").is_err(), "dotted keys");
        assert!(parse("t = {x = 1}").is_err(), "inline tables");
        assert!(parse("just a line").is_err(), "bare prose");
        assert!(parse("k = \"unterminated").is_err());
        assert!(parse("k = 1\nk = 2").is_err(), "duplicate keys");
        assert!(parse("[a]\nx = 1\n[[a]]").is_err(), "table vs array clash");
    }

    #[test]
    fn section_order_and_reentry() {
        // Re-entering `[table]` later appends to the same table.
        let doc = parse("[a]\nx = 1\n[b]\ny = 2\n[a]\nz = 3").expect("parses");
        let a = doc.get("a").unwrap();
        assert_eq!(a.get("x").unwrap().as_usize(), Some(1));
        assert_eq!(a.get("z").unwrap().as_usize(), Some(3));
    }
}

//! The harness's workload engines: how one benchmark [`Cell`] executes.
//!
//! Three engines, selected by a suite's `engine` field:
//!
//! * **eval** — the paper's protocol: generate the cell's dataset
//!   profile, train the method, roll the evaluator, and capture wall
//!   time, per-window inference cost, and the accuracy scores (MAE /
//!   MSE / MASE / MSMAPE) the Table 6/7 rankings are built from.
//!   Accuracy must be bit-identical across the cell's `iters`
//!   repetitions (everything is seeded), so a drift across iterations
//!   is reported as an error, not averaged away.
//! * **math** — the `bench_math` methodology (min over repetitions of
//!   K back-to-back calls / K) for one kernel × shape, scalar path vs
//!   the runtime-dispatched one.
//! * **serve** — a closed-loop load leg against a freshly started
//!   forecast server per iteration: throughput and client-side latency
//!   percentiles.
//!
//! Every engine returns plain [`MeasurementRow`]s; recording, manifest
//! assembly and history appends live in [`crate::harness`].

use std::hint::black_box;
use std::time::{Duration, Instant};

use crate::measure::measurement;
use crate::suite::{Cell, Engine, Suite};
use tfb_core::eval::{evaluate, EvalSettings, Strategy};
use tfb_core::method::{build_method, Method};
use tfb_core::Metric;
use tfb_data::{MultiSeries, Normalization};
use tfb_math::kernel::{self, KernelPath};
use tfb_models::tabular::iterate_one_step;
use tfb_models::{LinearRegressionForecaster, ModelError, WindowForecaster};
use tfb_nn::TrainConfig;
use tfb_obs::MeasurementRow;

/// Executes one cell under its suite's engine.
pub fn run_cell(suite: &Suite, cell: &Cell) -> Result<Vec<MeasurementRow>, String> {
    match suite.engine {
        Engine::Eval => run_eval(suite, cell),
        Engine::Math => run_math(suite, cell),
        Engine::Serve => run_serve(suite, cell),
    }
}

/// The accuracy quantities every eval cell reports (and `rank` consumes).
pub const EVAL_SCORES: [Metric; 4] = [Metric::Mae, Metric::Mse, Metric::Mase, Metric::Msmape];

/// LR wrapped to forecast iteratively with a one-step inner model — the
/// `multistep = "ims"` arm of the DMS-vs-IMS ablation (Section 4.4: IMS
/// compounds one-step errors with the horizon; DMS stays flatter).
struct IterativeLr {
    inner: LinearRegressionForecaster,
    horizon: usize,
}

impl IterativeLr {
    fn new(lookback: usize, horizon: usize) -> IterativeLr {
        IterativeLr {
            inner: LinearRegressionForecaster::new(lookback, 1),
            horizon,
        }
    }
}

impl WindowForecaster for IterativeLr {
    fn name(&self) -> &'static str {
        "LR-IMS"
    }
    fn lookback(&self) -> usize {
        self.inner.lookback()
    }
    fn horizon(&self) -> usize {
        self.horizon
    }
    fn train(&mut self, train: &MultiSeries) -> Result<(), ModelError> {
        self.inner.train(train)
    }
    fn predict(&self, window: &[f64], dim: usize) -> Result<Vec<f64>, ModelError> {
        let channels = tfb_models::window_channels(window, dim);
        let mut per_channel = Vec::with_capacity(dim);
        for ch in &channels {
            per_channel.push(iterate_one_step(ch, self.horizon, |w| {
                self.inner.predict(w, 1).map(|v| v[0]).unwrap_or(f64::NAN)
            }));
        }
        Ok(tfb_models::interleave_channels(&per_channel))
    }
}

/// Builds a cell's method honouring its `multistep` field.
fn build_cell_method(
    cell: &Cell,
    lookback: usize,
    dim: usize,
    train: TrainConfig,
) -> Result<Method, String> {
    match cell.multistep.as_str() {
        "dms" => build_method(&cell.method, lookback, cell.horizon, dim, Some(train))
            .map_err(|e| format!("{}: cannot build {:?}: {e}", cell.id, cell.method)),
        "ims" => {
            if cell.method != "LR" {
                return Err(format!(
                    "{}: multistep = \"ims\" only supports method \"LR\", not {:?}",
                    cell.id, cell.method
                ));
            }
            Ok(Method::Window(Box::new(IterativeLr::new(
                lookback,
                cell.horizon,
            ))))
        }
        other => Err(format!(
            "{}: unknown multistep {other:?} (dms|ims)",
            cell.id
        )),
    }
}

fn run_eval(suite: &Suite, cell: &Cell) -> Result<Vec<MeasurementRow>, String> {
    let profile = tfb_datagen::profile_by_name(&cell.dataset)
        .ok_or_else(|| format!("{}: unknown dataset profile {:?}", cell.id, cell.dataset))?;
    let series = profile.generate(tfb_datagen::Scale {
        max_len: cell.max_len,
        max_dim: cell.max_dim,
    });
    let lookback = if cell.lookback > 0 {
        cell.lookback
    } else {
        ((cell.horizon as f64) * 1.25).ceil() as usize
    };
    let mut settings = EvalSettings::rolling(lookback, cell.horizon, profile.split);
    settings.max_windows = cell.max_windows;
    settings.metrics = EVAL_SCORES.to_vec();
    settings.strategy = Strategy::Rolling {
        stride: cell.stride,
    };
    settings.normalization = Normalization::parse_name(&cell.normalization).ok_or_else(|| {
        format!(
            "{}: unknown normalization {:?} (ZScore|MinMax|None)",
            cell.id, cell.normalization
        )
    })?;
    settings.batch_inference = match cell.inference.as_str() {
        "batched" => true,
        "sequential" => false,
        other => {
            return Err(format!(
                "{}: unknown inference {other:?} (batched|sequential)",
                cell.id
            ))
        }
    };
    let train = TrainConfig {
        epochs: cell.epochs,
        max_samples: 512,
        ..TrainConfig::default()
    };

    let mut wall_ns = Vec::with_capacity(cell.iters);
    let mut infer_us = Vec::with_capacity(cell.iters);
    let mut scores: Vec<Vec<f64>> = vec![Vec::with_capacity(cell.iters); EVAL_SCORES.len()];
    let mut first_metrics = None;
    for _ in 0..cell.iters {
        let mut method = build_cell_method(cell, lookback, series.dim(), train)?;
        let t0 = Instant::now();
        let out = evaluate(&mut method, &series, &settings)
            .map_err(|e| format!("{}: evaluation failed: {e}", cell.id))?;
        wall_ns.push(t0.elapsed().as_nanos() as f64);
        infer_us.push(out.infer_time.as_secs_f64() * 1e6 / out.n_windows.max(1) as f64);
        for (i, m) in EVAL_SCORES.iter().enumerate() {
            scores[i].push(out.metric(*m));
        }
        match &first_metrics {
            None => first_metrics = Some(out.metrics.clone()),
            Some(first) => {
                if *first != out.metrics {
                    return Err(format!(
                        "{}: accuracy drifted across iterations — the evaluation \
                         is seeded, so this is a determinism bug, not noise",
                        cell.id
                    ));
                }
            }
        }
    }

    let mut rows = vec![
        measurement(suite, cell, "wall", "ns", &wall_ns),
        measurement(suite, cell, "infer", "us/window", &infer_us),
    ];
    for (i, m) in EVAL_SCORES.iter().enumerate() {
        rows.push(measurement(suite, cell, m.label(), "", &scores[i]));
        // Accuracy also flows through the manifest's `metrics` section,
        // the gate's deterministic tight-tolerance channel.
        if let Some(&value) = scores[i].first() {
            tfb_obs::report_metric(&cell.dataset, &cell.method, cell.horizon, m.label(), value);
        }
    }
    Ok(rows)
}

/// `min over reps of (elapsed(K calls) / K)` in ns — one sample.
fn time_ns(reps: usize, calls: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..calls {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / calls as f64);
    }
    best
}

/// Deterministic pseudo-random data (xorshift), optionally with exact
/// zeros mixed in for the zero-skip kernels.
fn data(n: usize, seed: u64, zeros: bool) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if zeros && state.is_multiple_of(7) {
                0.0
            } else {
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            }
        })
        .collect()
}

fn run_math(suite: &Suite, cell: &Cell) -> Result<Vec<MeasurementRow>, String> {
    let n = cell.n;
    let depth = cell.depth;
    let run: Box<dyn Fn() -> f64> = match cell.workload.as_str() {
        "dot" => {
            let x = data(n, n as u64 + 1, true);
            let y = data(n, n as u64 + 2, false);
            Box::new(move || kernel::dot_acc(0.0, black_box(&x), black_box(&y)))
        }
        "dot_skip" => {
            let x = data(n, n as u64 + 1, true);
            let y = data(n, n as u64 + 2, false);
            Box::new(move || kernel::dot_skip(black_box(&x), black_box(&y)))
        }
        "axpy" => {
            let x = data(n, n as u64 + 3, false);
            let out = std::cell::RefCell::new(data(n, n as u64 + 4, false));
            Box::new(move || {
                let mut out = out.borrow_mut();
                kernel::axpy(1.0001, black_box(&x), black_box(&mut out));
                out[0]
            })
        }
        "gemm" => {
            let lhs = data(depth, (depth * 31 + n) as u64, false);
            let rhs = data(depth * n, (depth * 37 + n) as u64, false);
            let out = std::cell::RefCell::new(data(n, n as u64 + 9, false));
            Box::new(move || {
                let mut out = out.borrow_mut();
                kernel::gemm_row_ktile(black_box(&lhs), black_box(&rhs), n, black_box(&mut out));
                out[0]
            })
        }
        other => {
            return Err(format!(
                "{}: unknown math workload {other:?} (dot|dot_skip|axpy|gemm)",
                cell.id
            ))
        }
    };

    // Calls per timing sample: enough to sit well above timer resolution,
    // sized from a quick scalar estimate against a fixed 200 µs budget.
    let est = kernel::with_path(KernelPath::Scalar, || {
        time_ns(2, 64, || {
            let _ = run();
        })
    });
    let calls = ((200_000.0 / est.max(1.0)) as usize).clamp(8, 100_000);
    let best = kernel::best_unrolled();
    let mut scalar_ns = Vec::with_capacity(cell.iters);
    let mut fast_ns = Vec::with_capacity(cell.iters);
    let mut speedup = Vec::with_capacity(cell.iters);
    for _ in 0..cell.iters {
        let s = kernel::with_path(KernelPath::Scalar, || {
            time_ns(3, calls, || {
                let _ = black_box(run());
            })
        });
        let f = kernel::with_path(best, || {
            time_ns(3, calls, || {
                let _ = black_box(run());
            })
        });
        scalar_ns.push(s);
        fast_ns.push(f);
        speedup.push(s / f.max(1e-9));
    }
    Ok(vec![
        measurement(suite, cell, "scalar", "ns", &scalar_ns),
        measurement(suite, cell, "unrolled", "ns", &fast_ns),
        measurement(suite, cell, "speedup", "x", &speedup),
    ])
}

// ---------------------------------------------------------------------
// Serve engine: a compact closed-loop leg (the full instrumented sweep
// stays in `bench_serve`; the harness needs a comparable, fast cell).
// ---------------------------------------------------------------------

const SERVE_LOOKBACK: usize = 24;
const SERVE_HORIZON: usize = 8;

/// Trains one LR artifact on the TINY ILI profile at the given horizon.
/// Every fleet member shares `SERVE_LOOKBACK`, so a single request body
/// is valid against all of them; the horizon is what varies per model.
fn train_serve_artifact(horizon: usize) -> Result<tfb_artifact::ModelArtifact, String> {
    use tfb_data::{ChronoSplit, Normalization, Normalizer};
    let profile = tfb_datagen::profile_by_name("ILI").ok_or("serve engine: no ILI profile")?;
    let series = profile.generate(tfb_datagen::Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).map_err(|e| e.to_string())?;
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).map_err(|e| e.to_string())?;
    let train = normed.slice_rows(0..split.val_start);
    tfb_artifact::fit(
        "LR",
        &train,
        SERVE_LOOKBACK,
        horizon,
        norm,
        "tfb-bench-harness".to_string(),
        None,
    )
    .map_err(|e| format!("serve engine: fit failed: {e}"))
}

fn train_serve_model() -> Result<tfb_artifact::ServableModel, String> {
    tfb_artifact::ServableModel::from_artifact(train_serve_artifact(SERVE_HORIZON)?)
        .map_err(|e| format!("serve engine: artifact not servable: {e}"))
}

/// Nearest-rank percentile of an already-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// One request/reply round trip on a kept-alive connection; returns the
/// status code.
fn round_trip(
    writer: &mut std::net::TcpStream,
    reader: &mut std::io::BufReader<std::net::TcpStream>,
    request: &str,
    line: &mut String,
    body: &mut Vec<u8>,
) -> Result<u16, String> {
    use std::io::{BufRead, Read, Write};
    writer
        .write_all(request.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    // Read one reply: status line, headers, body.
    line.clear();
    reader.read_line(line).map_err(|e| format!("read: {e}"))?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {line:?}"))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(line).map_err(|e| format!("read: {e}"))?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
    }
    body.clear();
    body.resize(content_length, 0);
    reader
        .read_exact(body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok(status)
}

fn connect(
    addr: std::net::SocketAddr,
) -> Result<(std::net::TcpStream, std::io::BufReader<std::net::TcpStream>), String> {
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let writer = stream.try_clone().map_err(|e| e.to_string())?;
    Ok((writer, std::io::BufReader::new(stream)))
}

/// One closed-loop client on a keep-alive connection; returns latencies
/// in microseconds.
fn client_loop(
    addr: std::net::SocketAddr,
    request: &str,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<Vec<f64>, String> {
    use std::sync::atomic::Ordering;
    let (mut writer, mut reader) = connect(addr)?;
    let mut latencies = Vec::new();
    let mut line = String::new();
    let mut body = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        let status = round_trip(&mut writer, &mut reader, request, &mut line, &mut body)?;
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
        if status != 200 && status != 429 {
            return Err(format!("unexpected status {status} under closed-loop load"));
        }
    }
    Ok(latencies)
}

/// Cumulative zipfian distribution over `n` ranks (`P(i) ∝ 1/(i+1)^α`)
/// — the classic skewed model-popularity assumption: a couple of hot
/// models take most traffic, a long tail stays cold.
fn zipf_cdf(n: usize, alpha: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// One closed-loop client that samples its next model zipfian-style
/// (seeded xorshift, so the workload is reproducible) and posts to that
/// model's routed endpoint.
fn fleet_client_loop(
    addr: std::net::SocketAddr,
    requests: &[String],
    cdf: &[f64],
    seed: u64,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<Vec<f64>, String> {
    use std::sync::atomic::Ordering;
    let (mut writer, mut reader) = connect(addr)?;
    let mut latencies = Vec::new();
    let mut line = String::new();
    let mut body = Vec::new();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    while !stop.load(Ordering::Relaxed) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let idx = cdf.partition_point(|&c| c < u).min(requests.len() - 1);
        let t0 = Instant::now();
        let status = round_trip(
            &mut writer,
            &mut reader,
            &requests[idx],
            &mut line,
            &mut body,
        )?;
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
        if status != 200 && status != 429 {
            return Err(format!("unexpected status {status} under fleet load"));
        }
    }
    Ok(latencies)
}

/// The `{"window": [...]}` request body every serve cell posts.
fn forecast_body(dim: usize) -> String {
    let window: Vec<f64> = (0..SERVE_LOOKBACK * dim)
        .map(|i| (i as f64) * 0.13 - 2.0)
        .collect();
    tfb_json::JsonValue::Object(vec![(
        "window".to_string(),
        tfb_json::JsonValue::Array(
            window
                .iter()
                .map(|&v| tfb_json::JsonValue::Number(v))
                .collect(),
        ),
    )])
    .compact()
}

fn run_serve(suite: &Suite, cell: &Cell) -> Result<Vec<MeasurementRow>, String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use tfb_serve::{serve, CoalescerConfig, ServerConfig};

    if cell.models > 1 {
        return run_serve_fleet(suite, cell);
    }
    let mut throughput = Vec::with_capacity(cell.iters);
    let mut p50_us = Vec::with_capacity(cell.iters);
    let mut p99_us = Vec::with_capacity(cell.iters);
    let mut requests = Vec::with_capacity(cell.iters);
    for _ in 0..cell.iters {
        let model = train_serve_model()?;
        let body = forecast_body(model.dim());
        let request = format!(
            "POST /forecast HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let handle = serve(
            model,
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                coalescer: CoalescerConfig {
                    shards: cell.shards,
                    ..CoalescerConfig::default()
                },
            },
        )
        .map_err(|e| format!("{}: serve failed: {e}", cell.id))?;
        let addr = handle.addr();
        let stop = AtomicBool::new(false);
        let mut latencies: Vec<f64> = Vec::new();
        let t0 = Instant::now();
        let result: Result<(), String> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..cell.clients.max(1))
                .map(|_| scope.spawn(|| client_loop(addr, &request, &stop)))
                .collect();
            std::thread::sleep(Duration::from_millis(cell.duration_ms.max(50)));
            stop.store(true, Ordering::Relaxed);
            for w in workers {
                latencies.extend(w.join().map_err(|_| "client thread panicked")??);
            }
            Ok(())
        });
        let elapsed_s = t0.elapsed().as_secs_f64();
        let _ = handle.shutdown();
        result.map_err(|e| format!("{}: {e}", cell.id))?;
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        requests.push(latencies.len() as f64);
        throughput.push(latencies.len() as f64 / elapsed_s.max(1e-9));
        p50_us.push(percentile(&latencies, 50.0));
        p99_us.push(percentile(&latencies, 99.0));
    }
    Ok(vec![
        measurement(suite, cell, "throughput", "req/s", &throughput),
        measurement(suite, cell, "latency_p50", "us", &p50_us),
        measurement(suite, cell, "latency_p99", "us", &p99_us),
        measurement(suite, cell, "requests", "count", &requests),
    ])
}

/// The multi-model leg: publish `cell.models` LR artifacts into a
/// throwaway registry, serve the whole fleet with `resident_cap`
/// resident models, and drive zipfian (α = 1.0) routed traffic from
/// `cell.clients` closed-loop clients. Alongside throughput/latency
/// this reports the fleet-specific quantities: resident-cache hit rate,
/// cold-load p99, and eviction count.
fn run_serve_fleet(suite: &Suite, cell: &Cell) -> Result<Vec<MeasurementRow>, String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use tfb_registry::fleet::{Fleet, FleetConfig};
    use tfb_registry::Registry;
    use tfb_serve::{serve_fleet, CoalescerConfig, ServerConfig};

    let models = cell.models;
    let dir = std::env::temp_dir().join(format!(
        "tfb_fleet_{}_{}",
        std::process::id(),
        cell.name.replace(['/', '\\'], "_")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Registry::open(&dir).map_err(|e| format!("{}: registry: {e}", cell.id))?;
    let mut dim = 0;
    for i in 0..models {
        // Same lookback everywhere (one request body fits the whole
        // fleet); the horizon is what distinguishes the models.
        let artifact = train_serve_artifact(4 + (i % 12))?;
        let bytes = artifact.to_bytes();
        if i == 0 {
            dim = tfb_artifact::ServableModel::from_artifact(artifact)
                .map_err(|e| format!("{}: artifact not servable: {e}", cell.id))?
                .dim();
        }
        registry
            .publish_bytes(&format!("m{i:02}"), "prod", &bytes)
            .map_err(|e| format!("{}: publish m{i:02}: {e}", cell.id))?;
    }
    let cap = if cell.resident_cap == 0 {
        models
    } else {
        cell.resident_cap
    };
    let cdf = zipf_cdf(models, 1.0);
    let body = forecast_body(dim);
    let requests_by_model: Vec<String> = (0..models)
        .map(|i| {
            format!(
                "POST /v1/forecast/m{i:02} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
        })
        .collect();

    let mut throughput = Vec::with_capacity(cell.iters);
    let mut p50_us = Vec::with_capacity(cell.iters);
    let mut p99_us = Vec::with_capacity(cell.iters);
    let mut requests = Vec::with_capacity(cell.iters);
    let mut hit_rate = Vec::with_capacity(cell.iters);
    let mut cold_p99_us = Vec::with_capacity(cell.iters);
    let mut evictions = Vec::with_capacity(cell.iters);
    for iter in 0..cell.iters {
        // A fresh fleet per iteration: every leg starts cold, so the
        // hit-rate and cold-load numbers measure the same regime.
        let registry = Registry::open(&dir).map_err(|e| format!("{}: registry: {e}", cell.id))?;
        let fleet = Arc::new(
            Fleet::open(registry, FleetConfig { resident_cap: cap })
                .map_err(|e| format!("{}: fleet: {e}", cell.id))?,
        );
        let handle = serve_fleet(
            Arc::clone(&fleet),
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                coalescer: CoalescerConfig {
                    shards: cell.shards,
                    ..CoalescerConfig::default()
                },
            },
        )
        .map_err(|e| format!("{}: serve failed: {e}", cell.id))?;
        let addr = handle.addr();
        let stop = AtomicBool::new(false);
        let mut latencies: Vec<f64> = Vec::new();
        let t0 = Instant::now();
        let result: Result<(), String> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..cell.clients.max(1))
                .map(|c| {
                    let seed = (iter * 131 + c) as u64 + 1;
                    let (requests_by_model, cdf) = (&requests_by_model, &cdf);
                    let stop = &stop;
                    scope.spawn(move || fleet_client_loop(addr, requests_by_model, cdf, seed, stop))
                })
                .collect();
            std::thread::sleep(Duration::from_millis(cell.duration_ms.max(50)));
            stop.store(true, Ordering::Relaxed);
            for w in workers {
                latencies.extend(w.join().map_err(|_| "client thread panicked")??);
            }
            Ok(())
        });
        let elapsed_s = t0.elapsed().as_secs_f64();
        let _ = handle.shutdown();
        result.map_err(|e| format!("{}: {e}", cell.id))?;
        let stats = fleet.stats();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        requests.push(latencies.len() as f64);
        throughput.push(latencies.len() as f64 / elapsed_s.max(1e-9));
        p50_us.push(percentile(&latencies, 50.0));
        p99_us.push(percentile(&latencies, 99.0));
        hit_rate.push(stats.hit_rate());
        evictions.push(stats.evictions as f64);
        let mut cold = stats.cold_load_us.clone();
        cold.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        cold_p99_us.push(if cold.is_empty() {
            0.0
        } else {
            percentile(&cold, 99.0)
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    let models_f = vec![models as f64; cell.iters];
    Ok(vec![
        measurement(suite, cell, "throughput", "req/s", &throughput),
        measurement(suite, cell, "latency_p50", "us", &p50_us),
        measurement(suite, cell, "latency_p99", "us", &p99_us),
        measurement(suite, cell, "requests", "count", &requests),
        measurement(suite, cell, "hit_rate", "", &hit_rate),
        measurement(suite, cell, "cold_load_p99", "us", &cold_p99_us),
        measurement(suite, cell, "evictions", "count", &evictions),
        measurement(suite, cell, "models", "count", &models_f),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::parse_suite;
    use std::path::Path;

    fn suite_from(toml: &str) -> Suite {
        parse_suite(&crate::toml::parse(toml).unwrap(), Path::new("t.toml")).unwrap()
    }

    #[test]
    fn eval_cell_produces_timing_and_score_rows() {
        let suite = suite_from(
            r#"
name = "eval/unit"
engine = "eval"
[[entry]]
name = "Naive-h12"
dataset = "ILI"
method = "Naive"
horizon = 12
max_len = 400
max_windows = 3
iters = 2
"#,
        );
        let rows = run_cell(&suite, &suite.cells[0]).expect("eval runs");
        let quantities: Vec<&str> = rows.iter().map(|r| r.quantity.as_str()).collect();
        assert!(quantities.contains(&"wall"));
        assert!(quantities.contains(&"infer"));
        assert!(quantities.contains(&"mase"));
        assert!(quantities.contains(&"msmape"));
        let mase = rows.iter().find(|r| r.quantity == "mase").unwrap();
        assert!(mase.min.is_finite());
        assert_eq!(mase.min, mase.median, "deterministic across iters");
        assert_eq!(mase.unit, "", "scores carry no unit");
        let wall = rows.iter().find(|r| r.quantity == "wall").unwrap();
        assert_eq!(wall.iters, 2);
        assert!(wall.min > 0.0);
        assert_eq!(wall.name, "eval/unit/Naive-h12");
    }

    #[test]
    fn math_cell_times_both_paths() {
        let suite = suite_from(
            r#"
name = "math/unit"
engine = "math"
[[entry]]
name = "dot-64"
workload = "dot"
n = 64
iters = 2
"#,
        );
        let rows = run_cell(&suite, &suite.cells[0]).expect("math runs");
        let scalar = rows.iter().find(|r| r.quantity == "scalar").unwrap();
        let unrolled = rows.iter().find(|r| r.quantity == "unrolled").unwrap();
        assert!(scalar.min > 0.0 && unrolled.min > 0.0);
        assert_eq!(scalar.unit, "ns");
        let speedup = rows.iter().find(|r| r.quantity == "speedup").unwrap();
        assert_eq!(speedup.unit, "x", "ratios are never time-gated");
    }

    #[test]
    fn eval_cell_honours_stride_normalization_and_multistep() {
        // IMS with a larger stride and raw (no-op) normalization — the
        // ablation-suite combination — runs and stays deterministic.
        let suite = suite_from(
            r#"
name = "eval/unit"
engine = "eval"
[[entry]]
name = "lr-ims"
dataset = "ILI"
method = "LR"
horizon = 6
lookback = 12
stride = 4
normalization = "None"
multistep = "ims"
max_len = 400
max_windows = 3
iters = 2
"#,
        );
        let rows = run_cell(&suite, &suite.cells[0]).expect("ims cell runs");
        let mae = rows.iter().find(|r| r.quantity == "mae").unwrap();
        assert!(mae.min.is_finite());
        // IMS is LR-only; other methods must fail loudly, not silently
        // fall back to DMS.
        let suite = suite_from(
            "name = \"eval/unit\"\nengine = \"eval\"\n[[entry]]\nname = \"x\"\ndataset = \"ILI\"\nmethod = \"Naive\"\nmultistep = \"ims\"",
        );
        let err = run_cell(&suite, &suite.cells[0]).unwrap_err();
        assert!(err.contains("ims"), "{err}");
        // So must a typo'd normalization.
        let suite = suite_from(
            "name = \"eval/unit\"\nengine = \"eval\"\n[[entry]]\nname = \"x\"\ndataset = \"ILI\"\nmethod = \"LR\"\nnormalization = \"zscore\"",
        );
        let err = run_cell(&suite, &suite.cells[0]).unwrap_err();
        assert!(err.contains("normalization"), "{err}");
    }

    #[test]
    fn unknown_cells_error_with_the_cell_id() {
        let suite = suite_from(
            "name = \"eval/unit\"\nengine = \"eval\"\n[[entry]]\nname = \"x\"\ndataset = \"NoSuch\"\nmethod = \"LR\"",
        );
        let err = run_cell(&suite, &suite.cells[0]).unwrap_err();
        assert!(err.contains("eval/unit/x"), "{err}");
        let suite = suite_from(
            "name = \"math/unit\"\nengine = \"math\"\n[[entry]]\nname = \"x\"\nworkload = \"quantum\"",
        );
        assert!(run_cell(&suite, &suite.cells[0]).is_err());
    }
}

//! Criterion benchmarks for the evaluation pipeline itself: rolling
//! evaluation throughput, the cost of normalization, and windowing/batching
//! (including the drop-last bookkeeping of Table 2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfb_core::eval::{evaluate, EvalSettings};
use tfb_core::method::build_method;
use tfb_data::{
    BatchIter, Batching, Domain, Frequency, MultiSeries, Normalization, Normalizer, WindowSampler,
};
use tfb_datagen::SeriesBuilder;

fn dataset(n: usize, dim: usize) -> MultiSeries {
    let chans: Vec<Vec<f64>> = (0..dim)
        .map(|c| {
            SeriesBuilder::new(n, c as u64 + 20)
                .seasonal(24, 2.0)
                .ar(0.5)
                .noise(0.5)
                .build()
        })
        .collect();
    MultiSeries::from_channels("bench", Frequency::Hourly, Domain::Traffic, &chans).unwrap()
}

fn bench_rolling_eval(c: &mut Criterion) {
    let series = dataset(1000, 2);
    let mut group = c.benchmark_group("rolling_eval_naive");
    group.sample_size(20);
    group.bench_function("stride1_all_windows", |bench| {
        bench.iter(|| {
            let mut method = build_method("Naive", 48, 24, 2, None).unwrap();
            let settings = EvalSettings::rolling(48, 24, tfb_data::SplitRatio::R712);
            black_box(evaluate(&mut method, &series, &settings).unwrap());
        });
    });
    group.finish();
}

fn bench_normalization(c: &mut Criterion) {
    let series = dataset(5000, 8);
    c.bench_function("zscore_fit_apply_5000x8", |bench| {
        bench.iter(|| {
            let norm = Normalizer::fit(&series, Normalization::ZScore);
            black_box(norm.apply(&series).unwrap());
        });
    });
}

fn bench_batching(c: &mut Criterion) {
    let sampler = WindowSampler::new(2880, 512, 336, 1).unwrap();
    c.bench_function("batch_iter_keep_all_b32", |bench| {
        bench.iter(|| {
            let count: usize = BatchIter::new(&sampler, Batching::keep_all(32))
                .map(|b| b.len())
                .sum();
            black_box(count);
        });
    });
    c.bench_function("batch_iter_drop_last_b32", |bench| {
        bench.iter(|| {
            let count: usize = BatchIter::new(&sampler, Batching::drop_last(32))
                .map(|b| b.len())
                .sum();
            black_box(count);
        });
    });
}

criterion_group!(
    benches,
    bench_rolling_eval,
    bench_normalization,
    bench_batching
);
criterion_main!(benches);

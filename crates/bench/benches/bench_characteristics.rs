//! Criterion benchmarks for the characteristic computations that drive the
//! dataset taxonomy (Section 3): the five univariate characteristics, the
//! catch22 feature set, and the multivariate correlation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfb_characteristics::catch22::catch22_all;
use tfb_characteristics::correlation::correlation;
use tfb_characteristics::CharacteristicVector;
use tfb_data::{Domain, Frequency, MultiSeries};
use tfb_datagen::SeriesBuilder;

fn bench_characteristic_vector(c: &mut Criterion) {
    let xs = SeriesBuilder::new(500, 1)
        .seasonal(24, 2.0)
        .ar(0.6)
        .noise(0.8)
        .build();
    c.bench_function("characteristic_vector_500", |bench| {
        bench.iter(|| black_box(CharacteristicVector::compute(&xs, Some(24))));
    });
}

fn bench_catch22(c: &mut Criterion) {
    let xs = SeriesBuilder::new(1000, 2)
        .seasonal(48, 1.5)
        .ar(0.5)
        .build();
    c.bench_function("catch22_1000", |bench| {
        bench.iter(|| black_box(catch22_all(&xs)));
    });
}

fn bench_correlation(c: &mut Criterion) {
    let factor = SeriesBuilder::new(600, 3).seasonal(48, 2.0).ar(0.7).build();
    let chans = tfb_datagen::components::correlated_channels(&[factor], 6, 0.7, 0.4, 0.5, 4);
    let series =
        MultiSeries::from_channels("bench", Frequency::Hourly, Domain::Traffic, &chans).unwrap();
    c.bench_function("correlation_6ch_600", |bench| {
        bench.iter(|| black_box(correlation(&series)));
    });
}

criterion_group!(
    benches,
    bench_characteristic_vector,
    bench_catch22,
    bench_correlation
);
criterion_main!(benches);

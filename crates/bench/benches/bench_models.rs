//! Criterion benchmarks for forecaster latency: statistical fit+forecast,
//! ML train and predict, and deep-model inference — the measurements behind
//! the Figure 11 running-time comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tfb_core::method::{build_method, Method};
use tfb_data::{Domain, Frequency, MultiSeries};
use tfb_datagen::SeriesBuilder;
use tfb_nn::TrainConfig;

fn dataset(n: usize, dim: usize) -> MultiSeries {
    let chans: Vec<Vec<f64>> = (0..dim)
        .map(|c| {
            SeriesBuilder::new(n, c as u64 + 10)
                .seasonal(24, 2.0)
                .ar(0.6)
                .noise(0.5)
                .build()
        })
        .collect();
    MultiSeries::from_channels("bench", Frequency::Hourly, Domain::Electricity, &chans).unwrap()
}

fn bench_stat_forecast(c: &mut Criterion) {
    let series = dataset(600, 3);
    let mut group = c.benchmark_group("stat_fit_forecast_f24");
    for name in ["Naive", "Theta", "ETS", "ARIMA", "VAR", "KF"] {
        let method = build_method(name, 48, 24, 3, None).unwrap();
        let Method::Stat(m) = method else {
            unreachable!()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, _| {
            bench.iter(|| black_box(m.forecast(&series, 24).unwrap()));
        });
    }
    group.finish();
}

fn bench_ml_train(c: &mut Criterion) {
    let series = dataset(600, 1);
    let mut group = c.benchmark_group("ml_train_h48_f24");
    group.sample_size(10);
    for name in ["LR", "RF", "XGB", "KNN"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, _| {
            bench.iter(|| {
                let mut method = build_method(name, 48, 24, 1, None).unwrap();
                let Method::Window(m) = &mut method else {
                    unreachable!()
                };
                m.train(&series).unwrap();
                black_box(());
            });
        });
    }
    group.finish();
}

fn bench_deep_inference(c: &mut Criterion) {
    let series = dataset(600, 1);
    let window: Vec<f64> = series.channel(0)[600 - 48..].to_vec();
    let quick = TrainConfig {
        epochs: 2,
        max_samples: 100,
        ..TrainConfig::default()
    };
    let mut group = c.benchmark_group("deep_inference_h48_f24");
    for name in [
        "NLinear",
        "DLinear",
        "PatchTST",
        "FEDformer",
        "TCN",
        "RNN",
        "N-HiTS",
    ] {
        let mut method = build_method(name, 48, 24, 1, Some(quick)).unwrap();
        let Method::Window(m) = &mut method else {
            unreachable!()
        };
        m.train(&series).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, _| {
            bench.iter(|| black_box(m.predict(&window, 1).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stat_forecast,
    bench_ml_train,
    bench_deep_inference
);
criterion_main!(benches);

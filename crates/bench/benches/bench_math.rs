//! Criterion micro-benchmarks for the numeric substrate: the primitives
//! every evaluation touches (matmul/solve, FFT, STL, ACF).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tfb_math::acf::acf;
use tfb_math::fft::rfft;
use tfb_math::matrix::Matrix;
use tfb_math::stl::stl;

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            (std::f64::consts::TAU * t as f64 / 24.0).sin()
                + 0.01 * t as f64
                + ((t as f64 * 12.9898).sin() * 43758.5453).fract() * 0.3
        })
        .collect()
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [16usize, 64, 128] {
        let a = Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 17) as f64).collect()).unwrap();
        let b = Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 13) as f64).collect()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()));
        });
    }
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let n = 64;
    let mut a = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] += 1.0 / (1.0 + (i + j) as f64);
        }
    }
    let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
    c.bench_function("lu_solve_64", |bench| {
        bench.iter(|| black_box(a.solve(&b).unwrap()));
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("rfft");
    for n in [256usize, 1024, 1000] {
        let xs = series(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(rfft(&xs).unwrap()));
        });
    }
    group.finish();
}

fn bench_stl(c: &mut Criterion) {
    let xs = series(720);
    c.bench_function("stl_720_period24", |bench| {
        bench.iter(|| black_box(stl(&xs, 24).unwrap()));
    });
}

fn bench_acf(c: &mut Criterion) {
    let xs = series(1000);
    c.bench_function("acf_1000_lag50", |bench| {
        bench.iter(|| black_box(acf(&xs, 50)));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_solve,
    bench_fft,
    bench_stl,
    bench_acf
);
criterion_main!(benches);

//! Benchmark configuration: the JSON-serializable description of an
//! experiment (datasets × methods × horizons, strategy, normalization,
//! metrics, hyper-parameter search space) that the runner executes — the
//! "standard configuration file that can be customized by users" of the
//! paper's evaluation layer.

use crate::metrics::Metric;
use tfb_data::Normalization;
use tfb_json::{JsonError, JsonValue};

/// Strategy selector in configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyConfig {
    /// Fixed forecasting.
    Fixed,
    /// Rolling forecasting with a stride.
    Rolling {
        /// Stride between iterations.
        stride: usize,
    },
}

/// One experiment description.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Dataset names (must exist in the registry).
    pub datasets: Vec<String>,
    /// Method names (must exist in the method factory).
    pub methods: Vec<String>,
    /// Forecast horizons to evaluate.
    pub horizons: Vec<usize>,
    /// Look-back window candidates — the hyper-parameter search space,
    /// capped at 8 sets as in the paper.
    pub lookbacks: Vec<usize>,
    /// Evaluation strategy.
    pub strategy: StrategyConfig,
    /// Normalization scheme (defaults to z-score when absent).
    pub normalization: Normalization,
    /// Metric labels to report (first one selects the best
    /// hyper-parameter set).
    pub metrics: Vec<String>,
    /// Cap on rolling windows per evaluation (0 = all; defaults to 0).
    pub max_windows: usize,
    /// Maximum generated series length.
    pub max_len: usize,
    /// Maximum generated channel count.
    pub max_dim: usize,
}

fn default_max_len() -> usize {
    tfb_datagen::Scale::DEFAULT.max_len
}

fn default_max_dim() -> usize {
    tfb_datagen::Scale::DEFAULT.max_dim
}

fn semantic(msg: impl Into<String>) -> JsonError {
    JsonError {
        message: msg.into(),
        offset: 0,
    }
}

fn string_array(doc: &JsonValue, key: &str) -> Result<Vec<String>, JsonError> {
    doc.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| semantic(format!("missing array field '{key}'")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| semantic(format!("'{key}' entries must be strings")))
        })
        .collect()
}

fn usize_array(doc: &JsonValue, key: &str) -> Result<Vec<usize>, JsonError> {
    doc.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| semantic(format!("missing array field '{key}'")))?
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| semantic(format!("'{key}' entries must be non-negative integers")))
        })
        .collect()
}

impl StrategyConfig {
    fn from_value(v: &JsonValue) -> Result<StrategyConfig, JsonError> {
        match v {
            JsonValue::String(s) if s == "fixed" => Ok(StrategyConfig::Fixed),
            JsonValue::Object(_) => {
                let rolling = v
                    .get("rolling")
                    .ok_or_else(|| semantic("strategy object must have a 'rolling' key"))?;
                let stride = rolling
                    .get("stride")
                    .and_then(JsonValue::as_usize)
                    .ok_or_else(|| semantic("'rolling' needs a 'stride' integer"))?;
                Ok(StrategyConfig::Rolling { stride })
            }
            _ => Err(semantic("strategy must be \"fixed\" or {\"rolling\": ...}")),
        }
    }

    fn to_value(self) -> JsonValue {
        match self {
            StrategyConfig::Fixed => JsonValue::from("fixed"),
            StrategyConfig::Rolling { stride } => JsonValue::Object(vec![(
                "rolling".into(),
                JsonValue::Object(vec![("stride".into(), JsonValue::from(stride))]),
            )]),
        }
    }
}

impl BenchmarkConfig {
    /// Parses a config from JSON. Absent `normalization`, `max_windows`,
    /// `max_len` and `max_dim` fields fall back to their defaults.
    pub fn from_json(text: &str) -> Result<BenchmarkConfig, JsonError> {
        let doc = JsonValue::parse(text)?;
        let strategy = StrategyConfig::from_value(
            doc.get("strategy")
                .ok_or_else(|| semantic("missing field 'strategy'"))?,
        )?;
        let normalization = match doc.get("normalization") {
            None => Normalization::default(),
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| semantic("'normalization' must be a string"))?;
                Normalization::parse_name(name)
                    .ok_or_else(|| semantic(format!("unknown normalization '{name}'")))?
            }
        };
        Ok(BenchmarkConfig {
            datasets: string_array(&doc, "datasets")?,
            methods: string_array(&doc, "methods")?,
            horizons: usize_array(&doc, "horizons")?,
            lookbacks: usize_array(&doc, "lookbacks")?,
            strategy,
            normalization,
            metrics: string_array(&doc, "metrics")?,
            max_windows: match doc.get("max_windows") {
                None => 0,
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| semantic("'max_windows' must be a non-negative integer"))?,
            },
            max_len: match doc.get("max_len") {
                None => default_max_len(),
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| semantic("'max_len' must be a non-negative integer"))?,
            },
            max_dim: match doc.get("max_dim") {
                None => default_max_dim(),
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| semantic("'max_dim' must be a non-negative integer"))?,
            },
        })
    }

    /// Serializes the config to pretty JSON.
    pub fn to_json(&self) -> String {
        let strings = |xs: &[String]| {
            JsonValue::Array(xs.iter().map(|s| JsonValue::from(s.as_str())).collect())
        };
        let numbers =
            |xs: &[usize]| JsonValue::Array(xs.iter().map(|&n| JsonValue::from(n)).collect());
        JsonValue::Object(vec![
            ("datasets".into(), strings(&self.datasets)),
            ("methods".into(), strings(&self.methods)),
            ("horizons".into(), numbers(&self.horizons)),
            ("lookbacks".into(), numbers(&self.lookbacks)),
            ("strategy".into(), self.strategy.to_value()),
            (
                "normalization".into(),
                JsonValue::from(self.normalization.name()),
            ),
            ("metrics".into(), strings(&self.metrics)),
            ("max_windows".into(), JsonValue::from(self.max_windows)),
            ("max_len".into(), JsonValue::from(self.max_len)),
            ("max_dim".into(), JsonValue::from(self.max_dim)),
        ])
        .pretty()
    }

    /// The parsed metric list (unknown labels are dropped).
    pub fn metric_list(&self) -> Vec<Metric> {
        self.metrics
            .iter()
            .filter_map(|m| Metric::parse(m))
            .collect()
    }

    /// The generation scale.
    pub fn scale(&self) -> tfb_datagen::Scale {
        tfb_datagen::Scale {
            max_len: self.max_len,
            max_dim: self.max_dim,
        }
    }

    /// Hyper-parameter candidates, enforcing the paper's cap of 8.
    pub fn search_space(&self) -> Vec<usize> {
        self.lookbacks.iter().copied().take(8).collect()
    }

    /// Expands the config into the job grid.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut out = Vec::new();
        for dataset in &self.datasets {
            for method in &self.methods {
                for &horizon in &self.horizons {
                    out.push(JobSpec {
                        dataset: dataset.clone(),
                        method: method.clone(),
                        horizon,
                    });
                }
            }
        }
        out
    }
}

/// One (dataset, method, horizon) cell of the experiment grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Forecast horizon.
    pub horizon: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchmarkConfig {
        BenchmarkConfig {
            datasets: vec!["ILI".into(), "NASDAQ".into()],
            methods: vec!["VAR".into(), "LR".into(), "PatchTST".into()],
            horizons: vec![24, 36],
            lookbacks: vec![36, 104],
            strategy: StrategyConfig::Rolling { stride: 1 },
            normalization: Normalization::ZScore,
            metrics: vec!["mae".into(), "mse".into()],
            max_windows: 20,
            max_len: 600,
            max_dim: 4,
        }
    }

    #[test]
    fn json_roundtrip() {
        let cfg = sample();
        let text = cfg.to_json();
        let back = BenchmarkConfig::from_json(&text).unwrap();
        assert_eq!(back.datasets, cfg.datasets);
        assert_eq!(back.horizons, cfg.horizons);
        assert_eq!(back.strategy, cfg.strategy);
    }

    #[test]
    fn jobs_form_the_full_grid() {
        let jobs = sample().jobs();
        assert_eq!(jobs.len(), 2 * 3 * 2);
        assert!(jobs.contains(&JobSpec {
            dataset: "NASDAQ".into(),
            method: "PatchTST".into(),
            horizon: 36,
        }));
    }

    #[test]
    fn search_space_is_capped_at_8() {
        let mut cfg = sample();
        cfg.lookbacks = (1..=20).collect();
        assert_eq!(cfg.search_space().len(), 8);
    }

    #[test]
    fn metric_list_drops_unknown() {
        let mut cfg = sample();
        cfg.metrics = vec!["mae".into(), "bogus".into(), "MASE".into()];
        let ms = cfg.metric_list();
        assert_eq!(ms, vec![Metric::Mae, Metric::Mase]);
    }

    #[test]
    fn defaults_apply_when_fields_missing() {
        let text = r#"{
            "datasets": ["ILI"], "methods": ["Naive"], "horizons": [24],
            "lookbacks": [36], "strategy": {"rolling": {"stride": 1}},
            "metrics": ["mae"]
        }"#;
        let cfg = BenchmarkConfig::from_json(text).unwrap();
        assert_eq!(cfg.max_len, tfb_datagen::Scale::DEFAULT.max_len);
        assert_eq!(cfg.normalization, Normalization::ZScore);
    }
}

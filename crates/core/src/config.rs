//! Benchmark configuration: the JSON-serializable description of an
//! experiment (datasets × methods × horizons, strategy, normalization,
//! metrics, hyper-parameter search space) that the runner executes — the
//! "standard configuration file that can be customized by users" of the
//! paper's evaluation layer.

use crate::metrics::Metric;
use serde::{Deserialize, Serialize};
use tfb_data::Normalization;

/// Strategy selector in configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StrategyConfig {
    /// Fixed forecasting.
    Fixed,
    /// Rolling forecasting with a stride.
    Rolling {
        /// Stride between iterations.
        stride: usize,
    },
}

/// One experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkConfig {
    /// Dataset names (must exist in the registry).
    pub datasets: Vec<String>,
    /// Method names (must exist in the method factory).
    pub methods: Vec<String>,
    /// Forecast horizons to evaluate.
    pub horizons: Vec<usize>,
    /// Look-back window candidates — the hyper-parameter search space,
    /// capped at 8 sets as in the paper.
    pub lookbacks: Vec<usize>,
    /// Evaluation strategy.
    pub strategy: StrategyConfig,
    /// Normalization scheme.
    #[serde(default)]
    pub normalization: Normalization,
    /// Metric labels to report (first one selects the best
    /// hyper-parameter set).
    pub metrics: Vec<String>,
    /// Cap on rolling windows per evaluation (0 = all).
    #[serde(default)]
    pub max_windows: usize,
    /// Maximum generated series length.
    #[serde(default = "default_max_len")]
    pub max_len: usize,
    /// Maximum generated channel count.
    #[serde(default = "default_max_dim")]
    pub max_dim: usize,
}

fn default_max_len() -> usize {
    tfb_datagen::Scale::DEFAULT.max_len
}

fn default_max_dim() -> usize {
    tfb_datagen::Scale::DEFAULT.max_dim
}

impl BenchmarkConfig {
    /// Parses a config from JSON.
    pub fn from_json(text: &str) -> Result<BenchmarkConfig, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Serializes the config to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// The parsed metric list (unknown labels are dropped).
    pub fn metric_list(&self) -> Vec<Metric> {
        self.metrics
            .iter()
            .filter_map(|m| Metric::parse(m))
            .collect()
    }

    /// The generation scale.
    pub fn scale(&self) -> tfb_datagen::Scale {
        tfb_datagen::Scale {
            max_len: self.max_len,
            max_dim: self.max_dim,
        }
    }

    /// Hyper-parameter candidates, enforcing the paper's cap of 8.
    pub fn search_space(&self) -> Vec<usize> {
        self.lookbacks.iter().copied().take(8).collect()
    }

    /// Expands the config into the job grid.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut out = Vec::new();
        for dataset in &self.datasets {
            for method in &self.methods {
                for &horizon in &self.horizons {
                    out.push(JobSpec {
                        dataset: dataset.clone(),
                        method: method.clone(),
                        horizon,
                    });
                }
            }
        }
        out
    }
}

/// One (dataset, method, horizon) cell of the experiment grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Forecast horizon.
    pub horizon: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchmarkConfig {
        BenchmarkConfig {
            datasets: vec!["ILI".into(), "NASDAQ".into()],
            methods: vec!["VAR".into(), "LR".into(), "PatchTST".into()],
            horizons: vec![24, 36],
            lookbacks: vec![36, 104],
            strategy: StrategyConfig::Rolling { stride: 1 },
            normalization: Normalization::ZScore,
            metrics: vec!["mae".into(), "mse".into()],
            max_windows: 20,
            max_len: 600,
            max_dim: 4,
        }
    }

    #[test]
    fn json_roundtrip() {
        let cfg = sample();
        let text = cfg.to_json();
        let back = BenchmarkConfig::from_json(&text).unwrap();
        assert_eq!(back.datasets, cfg.datasets);
        assert_eq!(back.horizons, cfg.horizons);
        assert_eq!(back.strategy, cfg.strategy);
    }

    #[test]
    fn jobs_form_the_full_grid() {
        let jobs = sample().jobs();
        assert_eq!(jobs.len(), 2 * 3 * 2);
        assert!(jobs.contains(&JobSpec {
            dataset: "NASDAQ".into(),
            method: "PatchTST".into(),
            horizon: 36,
        }));
    }

    #[test]
    fn search_space_is_capped_at_8() {
        let mut cfg = sample();
        cfg.lookbacks = (1..=20).collect();
        assert_eq!(cfg.search_space().len(), 8);
    }

    #[test]
    fn metric_list_drops_unknown() {
        let mut cfg = sample();
        cfg.metrics = vec!["mae".into(), "bogus".into(), "MASE".into()];
        let ms = cfg.metric_list();
        assert_eq!(ms, vec![Metric::Mae, Metric::Mase]);
    }

    #[test]
    fn defaults_apply_when_fields_missing() {
        let text = r#"{
            "datasets": ["ILI"], "methods": ["Naive"], "horizons": [24],
            "lookbacks": [36], "strategy": {"rolling": {"stride": 1}},
            "metrics": ["mae"]
        }"#;
        let cfg = BenchmarkConfig::from_json(text).unwrap();
        assert_eq!(cfg.max_len, tfb_datagen::Scale::DEFAULT.max_len);
        assert_eq!(cfg.normalization, Normalization::ZScore);
    }
}

//! The reporting layer's visualization module: dependency-free SVG
//! rendering of series, forecasts and method comparisons ("a visualization
//! module to facilitate a clear understanding of method performance",
//! Section 4.4).
//!
//! The renderer is deliberately small: polyline charts with axes, a legend
//! and an optional forecast-region marker — enough to eyeball every figure
//! this benchmark produces without pulling in a plotting stack.

use crate::Result;
use std::fmt::Write as _;
use std::path::Path;

/// One labelled line on a chart.
#[derive(Debug, Clone)]
pub struct SvgSeries {
    /// Legend label.
    pub label: String,
    /// Y values; x is the index (offset by `x_offset`).
    pub values: Vec<f64>,
    /// Horizontal offset in samples (used to place forecasts after the
    /// history they extend).
    pub x_offset: usize,
}

impl SvgSeries {
    /// A line starting at x = 0.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> SvgSeries {
        SvgSeries {
            label: label.into(),
            values,
            x_offset: 0,
        }
    }

    /// A line starting after `offset` samples.
    pub fn offset(label: impl Into<String>, values: Vec<f64>, offset: usize) -> SvgSeries {
        SvgSeries {
            label: label.into(),
            values,
            x_offset: offset,
        }
    }
}

/// Chart geometry and decoration.
#[derive(Debug, Clone)]
pub struct SvgChart {
    /// Chart title.
    pub title: String,
    /// Pixel width.
    pub width: usize,
    /// Pixel height.
    pub height: usize,
    /// X position (in samples) of a vertical "forecast starts here" rule.
    pub forecast_marker: Option<usize>,
}

impl Default for SvgChart {
    fn default() -> Self {
        SvgChart {
            title: String::new(),
            width: 720,
            height: 320,
            forecast_marker: None,
        }
    }
}

/// A brand-neutral categorical palette (okabe-ito derived, readable on
/// white).
const PALETTE: [&str; 7] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000",
];

impl SvgChart {
    /// Renders the chart to an SVG document string.
    pub fn render(&self, series: &[SvgSeries]) -> String {
        let (w, h) = (self.width.max(160) as f64, self.height.max(120) as f64);
        let margin = 42.0;
        let plot_w = w - 2.0 * margin;
        let plot_h = h - 2.0 * margin;
        // Data bounds.
        let mut x_max = 1usize;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in series {
            x_max = x_max.max(s.x_offset + s.values.len());
            for &v in &s.values {
                if v.is_finite() {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        if !lo.is_finite() || !hi.is_finite() {
            lo = 0.0;
            hi = 1.0;
        }
        if (hi - lo).abs() < 1e-12 {
            hi = lo + 1.0;
        }
        let x_of = |i: f64| margin + i / (x_max.max(2) - 1) as f64 * plot_w;
        let y_of = |v: f64| margin + (1.0 - (v - lo) / (hi - lo)) * plot_h;
        let mut svg = String::new();
        let _ = write!(
            svg,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"##
        );
        let _ = write!(
            svg,
            r##"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="24" font-size="14" text-anchor="middle">{}</text>"##,
            w / 2.0,
            escape(&self.title)
        );
        // Axes.
        let _ = write!(
            svg,
            r##"<line x1="{m}" y1="{b}" x2="{r}" y2="{b}" stroke="#444"/><line x1="{m}" y1="{t}" x2="{m}" y2="{b}" stroke="#444"/>"##,
            m = margin,
            b = h - margin,
            r = w - margin,
            t = margin
        );
        // Y tick labels (min / mid / max).
        for (frac, v) in [(0.0, lo), (0.5, (lo + hi) / 2.0), (1.0, hi)] {
            let y = margin + (1.0 - frac) * plot_h;
            let _ = write!(
                svg,
                r##"<text x="{}" y="{:.1}" font-size="10" text-anchor="end">{v:.2}</text>"##,
                margin - 6.0,
                y + 3.0
            );
        }
        // Forecast marker.
        if let Some(fx) = self.forecast_marker {
            let x = x_of(fx as f64);
            let _ = write!(
                svg,
                r##"<line x1="{x:.1}" y1="{t}" x2="{x:.1}" y2="{b}" stroke="#999" stroke-dasharray="4 3"/>"##,
                t = margin,
                b = h - margin
            );
        }
        // Lines + legend.
        for (si, s) in series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let mut points = String::new();
            for (i, &v) in s.values.iter().enumerate() {
                if v.is_finite() {
                    let _ = write!(
                        points,
                        "{:.1},{:.1} ",
                        x_of((s.x_offset + i) as f64),
                        y_of(v)
                    );
                }
            }
            let _ = write!(
                svg,
                r##"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5"/>"##,
                points.trim_end()
            );
            let ly = margin + 14.0 * si as f64;
            let _ = write!(
                svg,
                r##"<rect x="{}" y="{:.1}" width="10" height="3" fill="{color}"/><text x="{}" y="{:.1}" font-size="10">{}</text>"##,
                w - margin - 110.0,
                ly,
                w - margin - 95.0,
                ly + 4.0,
                escape(&s.label)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Renders and writes the chart to `path`.
    pub fn write(&self, series: &[SvgSeries], path: &Path) -> Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render(series))?;
        Ok(())
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Convenience: history + per-method forecasts with the forecast marker in
/// place — the standard "how did each method continue this series" view.
pub fn forecast_chart(
    title: &str,
    history: &[f64],
    forecasts: &[(&str, Vec<f64>)],
) -> (SvgChart, Vec<SvgSeries>) {
    let chart = SvgChart {
        title: title.to_string(),
        forecast_marker: Some(history.len().saturating_sub(1)),
        ..SvgChart::default()
    };
    let mut series = vec![SvgSeries::new("history", history.to_vec())];
    for (label, values) in forecasts {
        series.push(SvgSeries::offset(*label, values.clone(), history.len()));
    }
    (chart, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_valid_svg_skeleton() {
        let chart = SvgChart {
            title: "test".into(),
            ..SvgChart::default()
        };
        let svg = chart.render(&[SvgSeries::new("a", vec![1.0, 2.0, 3.0])]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains(">test<"));
        assert!(svg.contains(">a<"));
    }

    #[test]
    fn every_series_gets_a_distinct_color() {
        let chart = SvgChart::default();
        let series: Vec<SvgSeries> = (0..3)
            .map(|i| SvgSeries::new(format!("s{i}"), vec![i as f64, 1.0]))
            .collect();
        let svg = chart.render(&series);
        for color in &PALETTE[..3] {
            assert!(svg.contains(color), "missing {color}");
        }
    }

    #[test]
    fn non_finite_values_are_skipped_not_rendered() {
        let chart = SvgChart::default();
        let svg = chart.render(&[SvgSeries::new("a", vec![1.0, f64::NAN, 3.0])]);
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let chart = SvgChart::default();
        let svg = chart.render(&[SvgSeries::new("flat", vec![5.0; 10])]);
        assert!(svg.contains("polyline"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn forecast_chart_places_marker_and_offsets() {
        let (chart, series) = forecast_chart(
            "f",
            &[1.0, 2.0, 3.0, 4.0],
            &[("m1", vec![5.0, 6.0]), ("m2", vec![4.5, 4.0])],
        );
        assert_eq!(chart.forecast_marker, Some(3));
        assert_eq!(series.len(), 3);
        assert_eq!(series[1].x_offset, 4);
        let svg = chart.render(&series);
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn titles_are_escaped() {
        let chart = SvgChart {
            title: "a < b & c".into(),
            ..SvgChart::default()
        };
        let svg = chart.render(&[]);
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn write_creates_file() {
        let dir = std::env::temp_dir().join(format!("tfb_viz_{}", std::process::id()));
        let path = dir.join("chart.svg");
        let chart = SvgChart::default();
        chart
            .write(&[SvgSeries::new("a", vec![0.0, 1.0])], &path)
            .unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(dir).unwrap();
    }
}

//! The evaluation layer: fixed and rolling forecasting strategies
//! (Figure 6 of the paper), consistent normalization, per-window metric
//! aggregation, inference timing, and the "drop last" ablation switch.
//!
//! Rolling forecasting honours the paper's training-economy split:
//! statistical methods are *refit on the full history of every iteration*;
//! window-based (ML/DL) methods are trained once on the training region and
//! only re-infer on the trailing look-back window of each iteration
//! (Section 4.3.1).

use crate::method::Method;
use crate::metrics::{compute, Metric, MetricContext};
use crate::{CoreError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tfb_data::{ChronoSplit, MultiSeries, Normalization, Normalizer, SplitRatio};
use tfb_math::matrix::Matrix;

/// Which forecasting strategy to evaluate with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Fixed forecasting: one forecast of the final `horizon` points
    /// (Figure 6a) — TFB's univariate protocol.
    Fixed,
    /// Rolling forecasting with the given stride (Figure 6b) — TFB's
    /// multivariate protocol.
    Rolling {
        /// How far the history grows between iterations.
        stride: usize,
    },
}

/// A user-defined metric: a label plus a `(forecast, actual) -> value`
/// function — the evaluation layer's "customized metrics" extension point.
pub type CustomMetric = (&'static str, fn(&[f64], &[f64]) -> f64);

/// Everything an evaluation needs besides the method and the data.
#[derive(Debug, Clone)]
pub struct EvalSettings {
    /// Strategy (fixed or rolling).
    pub strategy: Strategy,
    /// Look-back window `H` for window-based methods.
    pub lookback: usize,
    /// Forecast horizon `F`.
    pub horizon: usize,
    /// Chronological split.
    pub split: SplitRatio,
    /// Normalization fitted on the training region.
    pub normalization: Normalization,
    /// Metrics to report.
    pub metrics: Vec<Metric>,
    /// User-defined metrics, reported next to the built-in eight.
    pub custom_metrics: Vec<CustomMetric>,
    /// Cap on rolling iterations (0 = all); iterations are subsampled
    /// evenly when the cap binds, never "drop last"-style truncated.
    pub max_windows: usize,
    /// The Table 2 ablation: when `Some((batch, true))`, the trailing
    /// windows that do not fill a complete batch are *discarded*, exactly
    /// reproducing the unfair "drop last" behaviour. `None` (TFB default)
    /// keeps every window.
    pub drop_last: Option<(usize, bool)>,
    /// Run window methods through one [`predict_batch`] call over all
    /// rolling windows instead of a per-window loop. Results are
    /// bit-identical either way; this only changes the execution shape.
    ///
    /// [`predict_batch`]: tfb_models::WindowForecaster::predict_batch
    pub batch_inference: bool,
    /// Worker threads for statistical-method rolling boundaries: `0` uses
    /// one per available core, `1` evaluates sequentially. Metric sums are
    /// reduced in boundary order, so every setting yields bit-identical
    /// outcomes.
    pub window_parallelism: usize,
}

impl EvalSettings {
    /// TFB's default multivariate rolling evaluation.
    pub fn rolling(lookback: usize, horizon: usize, split: SplitRatio) -> EvalSettings {
        EvalSettings {
            strategy: Strategy::Rolling { stride: 1 },
            lookback,
            horizon,
            split,
            normalization: Normalization::ZScore,
            metrics: vec![Metric::Mae, Metric::Mse],
            custom_metrics: Vec::new(),
            max_windows: 0,
            drop_last: None,
            batch_inference: true,
            window_parallelism: 0,
        }
    }

    /// TFB's univariate fixed-forecast evaluation (`H = 1.25 F`).
    pub fn fixed(horizon: usize) -> EvalSettings {
        EvalSettings {
            strategy: Strategy::Fixed,
            lookback: ((horizon as f64) * 1.25).ceil() as usize,
            horizon,
            split: SplitRatio::R712,
            normalization: Normalization::None,
            metrics: vec![Metric::Mase, Metric::Msmape],
            custom_metrics: Vec::new(),
            max_windows: 1,
            drop_last: None,
            batch_inference: true,
            window_parallelism: 0,
        }
    }
}

/// Aggregated outcome of one (method, dataset, settings) evaluation.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Horizon evaluated.
    pub horizon: usize,
    /// Look-back used.
    pub lookback: usize,
    /// Metric label → average value over windows.
    pub metrics: BTreeMap<String, f64>,
    /// Number of evaluation windows.
    pub n_windows: usize,
    /// Wall-clock training time (window methods; zero for statistical).
    pub train_time: Duration,
    /// Average inference time per window.
    pub infer_time: Duration,
    /// Parameter count (0 for statistical methods).
    pub parameters: usize,
}

impl EvalOutcome {
    /// Value of one metric (NaN when absent).
    pub fn metric(&self, m: Metric) -> f64 {
        self.metrics.get(m.label()).copied().unwrap_or(f64::NAN)
    }
}

/// Evaluates a method on a dataset under the given settings.
pub fn evaluate(
    method: &mut Method,
    series: &MultiSeries,
    settings: &EvalSettings,
) -> Result<EvalOutcome> {
    let _eval_span = tfb_obs::span!("eval", dataset = series.name, method = method.name());
    match settings.strategy {
        Strategy::Fixed => evaluate_fixed(method, series, settings),
        Strategy::Rolling { stride } => evaluate_rolling(method, series, settings, stride),
    }
}

/// Fixed forecasting: train on everything except the final horizon,
/// forecast the final horizon once.
fn evaluate_fixed(
    method: &mut Method,
    series: &MultiSeries,
    settings: &EvalSettings,
) -> Result<EvalOutcome> {
    let n = series.len();
    let f = settings.horizon;
    let l = settings.lookback;
    if n <= f || (matches!(method, Method::Window(_)) && n < l + f) {
        return Err(CoreError::Eval(format!(
            "series {} too short ({n}) for fixed forecast with F={f}, H={l}",
            series.name
        )));
    }
    let history = series.slice_rows(0..n - f);
    let norm = Normalizer::fit(&history, settings.normalization);
    let history_n = norm.apply(&history)?;
    let actual_block: Vec<f64> = norm.apply(series)?.values()[(n - f) * series.dim()..].to_vec();
    let mut train_time = Duration::ZERO;
    let start = Instant::now();
    let forecast = match method {
        Method::Stat(m) => {
            let _infer_span = tfb_obs::span!("infer");
            m.forecast(&history_n, f)?
        }
        Method::Window(m) => {
            let t0 = Instant::now();
            {
                let _train_span = tfb_obs::span!("train");
                m.train(&history_n)?;
            }
            train_time = t0.elapsed();
            let _infer_span = tfb_obs::span!("infer");
            let window = history_n.values()[(history.len() - l) * series.dim()..].to_vec();
            m.predict(&window, series.dim())?
        }
    };
    let infer_time = start.elapsed().saturating_sub(train_time);
    check_forecast_finite(&forecast, &series.name, method.name())?;
    // Metrics on the original scale for fixed (univariate) evaluation.
    let mut forecast_denorm = forecast.clone();
    norm.invert_block(&mut forecast_denorm, series.dim())?;
    let mut actual_denorm = actual_block.clone();
    norm.invert_block(&mut actual_denorm, series.dim())?;
    let train_ch = history.channel(0);
    let ctx = MetricContext {
        train: Some(&train_ch),
        period: series.frequency.default_period(),
    };
    let metrics_span = tfb_obs::span!("metrics");
    let mut out = BTreeMap::new();
    for &m in &settings.metrics {
        out.insert(
            m.label().to_string(),
            compute(m, &forecast_denorm, &actual_denorm, ctx),
        );
    }
    for (label, f) in &settings.custom_metrics {
        out.insert((*label).to_string(), f(&forecast_denorm, &actual_denorm));
    }
    metrics_span.close();
    tfb_obs::counter!("eval/windows").add(1);
    if out.values().any(|v| !v.is_finite()) {
        tfb_obs::health_event(tfb_obs::HealthKind::Nan, "non-finite averaged metric");
    }
    Ok(EvalOutcome {
        method: method.name().to_string(),
        dataset: series.name.clone(),
        horizon: f,
        lookback: l,
        metrics: out,
        n_windows: 1,
        train_time,
        infer_time,
        parameters: method.parameter_count(),
    })
}

/// NaN/Inf sentinel on a produced forecast: a non-finite value would
/// silently poison every downstream metric average, so the cell aborts
/// with a structured health event instead. Must run on the thread whose
/// span stack carries the eval's dataset/method context.
fn check_forecast_finite(forecast: &[f64], dataset: &str, method: &str) -> Result<()> {
    if let Some(pos) = forecast.iter().position(|v| !v.is_finite()) {
        tfb_obs::health_event(tfb_obs::HealthKind::Nan, "non-finite forecast value");
        return Err(CoreError::Model(tfb_models::ModelError::Numerical(
            format!("non-finite forecast value at index {pos} ({method} on {dataset})"),
        )));
    }
    Ok(())
}

/// Rolling forecasting over the test region.
fn evaluate_rolling(
    method: &mut Method,
    series: &MultiSeries,
    settings: &EvalSettings,
    stride: usize,
) -> Result<EvalOutcome> {
    let n = series.len();
    let f = settings.horizon;
    let l = settings.lookback;
    let dim = series.dim();
    let split = ChronoSplit::split(series, settings.split)?;
    let test_start = split.test_start;
    if test_start < l || n < test_start + f {
        return Err(CoreError::Eval(format!(
            "series {} too short for rolling eval (n={n}, test_start={test_start}, F={f}, H={l})",
            series.name
        )));
    }
    // Normalize everything with training statistics (Issue 3: consistent
    // handling for every method).
    let norm = Normalizer::fit(&split.train, settings.normalization);
    let normed = norm.apply(series)?;
    // Enumerate forecast boundaries in the test region.
    let stride = stride.max(1);
    let mut boundaries: Vec<usize> = (test_start..=(n - f)).step_by(stride).collect();
    // The "drop last" ablation discards the trailing partial batch.
    if let Some((batch, true)) = settings.drop_last {
        let keep = (boundaries.len() / batch.max(1)) * batch.max(1);
        boundaries.truncate(keep);
        if boundaries.is_empty() {
            return Err(CoreError::Eval("drop_last removed every window".into()));
        }
    }
    // Even subsampling under a window budget (bias-free, unlike drop-last).
    if settings.max_windows > 0 && boundaries.len() > settings.max_windows {
        let step = boundaries.len() as f64 / settings.max_windows as f64;
        boundaries = (0..settings.max_windows)
            .map(|i| boundaries[(i as f64 * step) as usize])
            .collect();
    }
    let mut train_time = Duration::ZERO;
    if let Method::Window(m) = method {
        // Window methods see the same normalization as evaluation.
        let train_normed = normed.slice_rows(0..split.val_start);
        let _train_span = tfb_obs::span!("train");
        let t0 = Instant::now();
        m.train(&train_normed)?;
        train_time = t0.elapsed();
    }
    let train_ch = normed.slice_rows(0..split.val_start).channel(0);
    let ctx_period = series.frequency.default_period();
    // Per-boundary metric evaluation, shared by every execution shape.
    let metric_values = |forecast: &[f64], actual: &[f64]| -> Vec<f64> {
        let ctx = MetricContext {
            train: Some(&train_ch),
            period: ctx_period,
        };
        settings
            .metrics
            .iter()
            .map(|&m| compute(m, forecast, actual, ctx))
            .chain(
                settings
                    .custom_metrics
                    .iter()
                    .map(|(_, f)| f(forecast, actual)),
            )
            .collect()
    };
    let actual_at = |t: usize| &normed.values()[t * dim..(t + f) * dim];
    let method_name = method.name().to_string();
    let mut infer_total = Duration::ZERO;
    // One `Some(metric values)` per boundary, `None` for unusable windows
    // (a statistical method that cannot fit that history). Filled batched,
    // in parallel, or sequentially — then reduced in boundary order below,
    // so the execution shape never changes the outcome.
    let per_boundary: Vec<Option<Vec<f64>>> = match method {
        Method::Window(m) if settings.batch_inference => {
            // Materialize every look-back window once and predict them all
            // in a single batched call.
            let mut windows = Matrix::zeros(boundaries.len(), l * dim);
            for (i, &t) in boundaries.iter().enumerate() {
                windows.data_mut()[i * l * dim..(i + 1) * l * dim]
                    .copy_from_slice(&normed.values()[(t - l) * dim..t * dim]);
            }
            let infer_span = tfb_obs::span!("infer");
            let t0 = Instant::now();
            let forecasts = m.predict_batch(&windows, dim)?;
            infer_total = t0.elapsed();
            infer_span.close();
            for i in 0..boundaries.len() {
                check_forecast_finite(forecasts.row(i), &series.name, &method_name)?;
            }
            let _metrics_span = tfb_obs::span!("metrics");
            boundaries
                .iter()
                .enumerate()
                .map(|(i, &t)| Some(metric_values(forecasts.row(i), actual_at(t))))
                .collect()
        }
        Method::Window(m) => {
            let _infer_span = tfb_obs::span!("infer");
            boundaries
                .iter()
                .map(|&t| {
                    let window = &normed.values()[(t - l) * dim..t * dim];
                    let t0 = Instant::now();
                    let forecast = m.predict(window, dim)?;
                    infer_total += t0.elapsed();
                    check_forecast_finite(&forecast, &series.name, &method_name)?;
                    Ok(Some(metric_values(&forecast, actual_at(t))))
                })
                .collect::<Result<Vec<_>>>()?
        }
        Method::Stat(m) => {
            let _infer_span = tfb_obs::span!("infer");
            let workers = match settings.window_parallelism {
                0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
                n => n,
            }
            .min(boundaries.len())
            .max(1);
            let eval_boundary = |t: usize| -> Option<(Vec<f64>, Duration)> {
                // Refit on the full history up to the boundary; a history
                // this method cannot fit makes the window unusable.
                let history = normed.slice_rows(0..t);
                let t0 = Instant::now();
                let forecast = m.forecast(&history, f).ok()?;
                let spent = t0.elapsed();
                Some((metric_values(&forecast, actual_at(t)), spent))
            };
            type BoundarySlot = Mutex<Option<Option<(Vec<f64>, Duration)>>>;
            let timed: Vec<Option<(Vec<f64>, Duration)>> = if workers < 2 {
                boundaries.iter().map(|&t| eval_boundary(t)).collect()
            } else {
                let slots: Vec<BoundarySlot> =
                    boundaries.iter().map(|_| Mutex::new(None)).collect();
                let next = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= boundaries.len() {
                                break;
                            }
                            let out = eval_boundary(boundaries[i]);
                            *slots[i].lock().expect("boundary slot poisoned") = Some(out);
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|s| {
                        s.into_inner()
                            .expect("boundary slot poisoned")
                            .expect("worker filled every slot")
                    })
                    .collect()
            };
            timed
                .into_iter()
                .map(|r| {
                    r.map(|(values, spent)| {
                        infer_total += spent;
                        values
                    })
                })
                .collect()
        }
    };
    // Deterministic ordered reduction: sum each metric over boundaries in
    // ascending boundary order, exactly as the sequential loop would.
    let labels: Vec<&'static str> = settings
        .metrics
        .iter()
        .map(|m| m.label())
        .chain(settings.custom_metrics.iter().map(|(label, _)| *label))
        .collect();
    let mut sums = vec![0.0; labels.len()];
    let mut evaluated = 0usize;
    for values in per_boundary.into_iter().flatten() {
        for (acc, v) in sums.iter_mut().zip(&values) {
            *acc += v;
        }
        evaluated += 1;
    }
    if evaluated == 0 {
        return Err(CoreError::Eval(format!(
            "method {} produced no usable windows on {}",
            method.name(),
            series.name
        )));
    }
    tfb_obs::counter!("eval/windows").add(evaluated as u64);
    let metrics: BTreeMap<String, f64> = labels
        .into_iter()
        .zip(&sums)
        .map(|(k, v)| (k.to_string(), v / evaluated as f64))
        .collect();
    // Post-hoc sentinel for the paths whose windows evaluate off the eval
    // thread (stat workers carry no span context): a non-finite averaged
    // metric flags the cell in the manifest's health section without
    // dropping it from the report.
    if metrics.values().any(|v| !v.is_finite()) {
        tfb_obs::health_event(tfb_obs::HealthKind::Nan, "non-finite averaged metric");
    }
    Ok(EvalOutcome {
        method: method.name().to_string(),
        dataset: series.name.clone(),
        horizon: f,
        lookback: l,
        metrics,
        n_windows: evaluated,
        train_time,
        infer_time: infer_total / evaluated.max(1) as u32,
        parameters: method.parameter_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::build_method;
    use tfb_data::{Domain, Frequency};

    fn seasonal_series(n: usize) -> MultiSeries {
        // Deterministic jitter keeps the seasonal-naive MASE denominator
        // away from zero.
        let xs: Vec<f64> = (0..n)
            .map(|t| {
                10.0 + 3.0 * (std::f64::consts::TAU * t as f64 / 24.0).sin()
                    + 0.05 * ((t as f64 * 12.9898).sin() * 43758.5453).fract()
            })
            .collect();
        MultiSeries::from_channels("test", Frequency::Hourly, Domain::Electricity, &[xs]).unwrap()
    }

    #[test]
    fn fixed_eval_runs_stat_method() {
        let s = seasonal_series(200);
        let mut m = build_method("SeasonalNaive", 30, 24, 1, None).unwrap();
        let settings = EvalSettings::fixed(24);
        let out = evaluate(&mut m, &s, &settings).unwrap();
        assert_eq!(out.n_windows, 1);
        assert!(out.metric(Metric::Mase).is_finite());
        // A perfectly periodic series is nailed by seasonal naive.
        assert!(out.metric(Metric::Msmape) < 1.0, "{:?}", out.metrics);
    }

    #[test]
    fn rolling_eval_runs_window_method() {
        let s = seasonal_series(400);
        let mut m = build_method("LR", 48, 24, 1, None).unwrap();
        let settings = EvalSettings::rolling(48, 24, SplitRatio::R712);
        let out = evaluate(&mut m, &s, &settings).unwrap();
        assert!(out.n_windows > 10);
        assert!(out.metric(Metric::Mae) < 0.3, "{:?}", out.metrics);
        assert!(out.parameters > 0);
    }

    #[test]
    fn rolling_eval_runs_stat_method_with_refit() {
        let s = seasonal_series(300);
        let mut m = build_method("Naive", 24, 12, 1, None).unwrap();
        let mut settings = EvalSettings::rolling(24, 12, SplitRatio::R712);
        settings.max_windows = 5;
        let out = evaluate(&mut m, &s, &settings).unwrap();
        assert_eq!(out.n_windows, 5);
        assert_eq!(out.parameters, 0);
    }

    #[test]
    fn drop_last_reduces_window_count() {
        let s = seasonal_series(400);
        let settings_all = EvalSettings::rolling(48, 24, SplitRatio::R712);
        let mut settings_drop = settings_all.clone();
        settings_drop.drop_last = Some((32, true));
        let mut m1 = build_method("Naive", 48, 24, 1, None).unwrap();
        let mut m2 = build_method("Naive", 48, 24, 1, None).unwrap();
        let all = evaluate(&mut m1, &s, &settings_all).unwrap();
        let dropped = evaluate(&mut m2, &s, &settings_drop).unwrap();
        assert!(dropped.n_windows < all.n_windows);
        assert_eq!(dropped.n_windows % 32, 0);
    }

    #[test]
    fn max_windows_subsamples_evenly() {
        let s = seasonal_series(400);
        let mut settings = EvalSettings::rolling(48, 24, SplitRatio::R712);
        settings.max_windows = 7;
        let mut m = build_method("Naive", 48, 24, 1, None).unwrap();
        let out = evaluate(&mut m, &s, &settings).unwrap();
        assert_eq!(out.n_windows, 7);
    }

    #[test]
    fn too_short_series_errors() {
        let s = seasonal_series(30);
        let mut m = build_method("Naive", 24, 24, 1, None).unwrap();
        let settings = EvalSettings::rolling(24, 24, SplitRatio::R712);
        assert!(evaluate(&mut m, &s, &settings).is_err());
    }

    #[test]
    fn custom_metrics_are_reported() {
        fn max_abs_error(forecast: &[f64], actual: &[f64]) -> f64 {
            forecast
                .iter()
                .zip(actual)
                .map(|(f, y)| (f - y).abs())
                .fold(0.0, f64::max)
        }
        let s = seasonal_series(300);
        let mut settings = EvalSettings::rolling(24, 12, SplitRatio::R712);
        settings.custom_metrics = vec![("max_abs_error", max_abs_error)];
        settings.max_windows = 5;
        let mut m = build_method("Naive", 24, 12, 1, None).unwrap();
        let out = evaluate(&mut m, &s, &settings).unwrap();
        let custom = out.metrics["max_abs_error"];
        assert!(custom.is_finite());
        // max error dominates the mean error.
        assert!(custom >= out.metric(Metric::Mae));
    }

    #[test]
    fn batched_inference_matches_per_window_for_every_window_method() {
        // Every ML and DL method must produce bit-identical rolling metrics
        // whether windows are predicted one at a time or in one batch.
        let s = seasonal_series(260);
        let quick = tfb_nn::TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.01,
            max_samples: 128,
            patience: 5,
            val_fraction: 0.2,
            seed: 0,
            ..tfb_nn::TrainConfig::default()
        };
        for name in crate::method::ML_METHODS
            .iter()
            .chain(&crate::method::DL_METHODS)
        {
            let mut batched_settings = EvalSettings::rolling(24, 8, SplitRatio::R712);
            batched_settings.max_windows = 6;
            let mut single_settings = batched_settings.clone();
            single_settings.batch_inference = false;
            let mut m1 = build_method(name, 24, 8, 1, Some(quick)).unwrap();
            let mut m2 = build_method(name, 24, 8, 1, Some(quick)).unwrap();
            let batched =
                evaluate(&mut m1, &s, &batched_settings).unwrap_or_else(|e| panic!("{name}: {e}"));
            let single =
                evaluate(&mut m2, &s, &single_settings).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(batched.n_windows, single.n_windows, "{name}");
            assert_eq!(batched.metrics, single.metrics, "{name}");
        }
    }

    #[test]
    fn parallel_stat_boundaries_match_sequential_exactly() {
        let s = seasonal_series(400);
        for name in ["Naive", "Mean", "Drift", "Theta", "ETS"] {
            let mut sequential = EvalSettings::rolling(24, 12, SplitRatio::R712);
            sequential.window_parallelism = 1;
            let mut parallel = sequential.clone();
            parallel.window_parallelism = 4;
            let mut auto = sequential.clone();
            auto.window_parallelism = 0;
            let mut m = build_method(name, 24, 12, 1, None).unwrap();
            let seq = evaluate(&mut m, &s, &sequential).unwrap();
            let par = evaluate(&mut m, &s, &parallel).unwrap();
            let aut = evaluate(&mut m, &s, &auto).unwrap();
            assert_eq!(seq.n_windows, par.n_windows, "{name}");
            assert_eq!(seq.metrics, par.metrics, "{name}");
            assert_eq!(seq.metrics, aut.metrics, "{name}");
        }
    }

    #[test]
    fn normalization_is_fitted_on_train_only() {
        // A series with a huge shift in the test region: z-scores computed
        // on the whole series would shrink training values; fitted on train
        // only, the train region must have ~unit variance.
        let mut xs: Vec<f64> = (0..200).map(|t| (t as f64 * 0.7).sin()).collect();
        xs.extend((0..50).map(|_| 1000.0));
        let s = MultiSeries::from_channels("sh", Frequency::Hourly, Domain::Stock, &[xs]).unwrap();
        let split = ChronoSplit::split(&s, SplitRatio::R712).unwrap();
        let norm = Normalizer::fit(&split.train, Normalization::ZScore);
        let train_n = norm.apply(&split.train).unwrap();
        let var: f64 = {
            let ch = train_n.channel(0);
            let m: f64 = ch.iter().sum::<f64>() / ch.len() as f64;
            ch.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / ch.len() as f64
        };
        assert!((var - 1.0).abs() < 1e-6);
    }
}

//! The data layer: a dataset registry over the generated TFB collection
//! and the characteristic-driven acceptance rule the paper describes
//! ("when a new dataset becomes available, this layer can assess whether
//! the distribution of existing datasets across the six features can be
//! expanded").

use tfb_characteristics::correlation::raw_channel_correlation;
use tfb_characteristics::CharacteristicVector;
use tfb_data::MultiSeries;
use tfb_datagen::{all_profiles, DatasetProfile, Scale};

/// A dataset ready for evaluation: generated series plus its profile.
pub struct DatasetHandle {
    /// The generated series.
    pub series: MultiSeries,
    /// The profile it was generated from.
    pub profile: DatasetProfile,
}

/// Generates every dataset of the collection at the given scale.
pub fn load_all(scale: Scale) -> Vec<DatasetHandle> {
    all_profiles()
        .into_iter()
        .map(|profile| DatasetHandle {
            series: profile.generate(scale),
            profile,
        })
        .collect()
}

/// Generates one dataset by name.
pub fn load(name: &str, scale: Scale) -> Option<DatasetHandle> {
    tfb_datagen::profile_by_name(name).map(|profile| DatasetHandle {
        series: profile.generate(scale),
        profile,
    })
}

/// The six characteristic scores of a multivariate dataset, averaged over
/// channels for the five univariate characteristics plus the cross-channel
/// correlation (Definition 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetCharacteristics {
    /// Mean trend strength over channels.
    pub trend: f64,
    /// Mean seasonality strength over channels.
    pub seasonality: f64,
    /// Fraction of channels classified stationary.
    pub stationarity: f64,
    /// Mean shifting severity over channels.
    pub shifting: f64,
    /// Mean transition value over channels.
    pub transition: f64,
    /// Cross-channel correlation.
    pub correlation: f64,
}

impl DatasetCharacteristics {
    /// Computes the six characteristics of a multivariate series. For wide
    /// datasets only the first `max_channels` channels are scored (the
    /// characteristics concentrate quickly).
    pub fn compute(series: &MultiSeries, max_channels: usize) -> DatasetCharacteristics {
        let dim = series.dim().min(max_channels.max(1));
        let period = series.frequency.default_period();
        let hint = if period >= 2 { Some(period) } else { None };
        let mut trend = 0.0;
        let mut seasonality = 0.0;
        let mut stationary = 0.0;
        let mut shifting = 0.0;
        let mut transition = 0.0;
        for c in 0..dim {
            let ch = series.channel(c);
            let v = CharacteristicVector::compute(&ch, hint);
            trend += v.trend;
            seasonality += v.seasonality;
            if v.adf_p <= 0.05 {
                stationary += 1.0;
            }
            shifting += (2.0 * (v.shifting - 0.5)).abs();
            transition += v.transition;
        }
        let k = dim as f64;
        DatasetCharacteristics {
            trend: trend / k,
            seasonality: seasonality / k,
            stationarity: stationary / k,
            shifting: shifting / k,
            transition: transition / k,
            correlation: raw_channel_correlation(series),
        }
    }

    /// The characteristics as a fixed-order vector
    /// (trend, seasonality, stationarity, shifting, transition, correlation).
    pub fn as_vec(&self) -> [f64; 6] {
        [
            self.trend,
            self.seasonality,
            self.stationarity,
            self.shifting,
            self.transition,
            self.correlation,
        ]
    }
}

/// The acceptance rule of the data layer: a candidate dataset is accepted
/// when its characteristic vector is at least `min_distance` (Euclidean,
/// on the 6-D characteristic vector) away from every existing dataset —
/// i.e. it expands the coverage of the collection.
pub fn expands_coverage(
    existing: &[DatasetCharacteristics],
    candidate: &DatasetCharacteristics,
    min_distance: f64,
) -> bool {
    let c = candidate.as_vec();
    existing.iter().all(|e| {
        let d: f64 = e
            .as_vec()
            .iter()
            .zip(&c)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        d >= min_distance
    })
}

/// PFA curation of a univariate archive (Section 4.1.1): represent every
/// series by its five-characteristic vector and keep the principal-feature
/// subset covering `threshold` (the paper uses 0.9) of the explained
/// variance. Returns the retained indices, ascending.
pub fn curate_archive(archive: &tfb_datagen::UnivariateArchive, threshold: f64) -> Vec<usize> {
    use tfb_characteristics::CharacteristicVector;
    let rows: Vec<Vec<f64>> = archive
        .series
        .iter()
        .map(|s| CharacteristicVector::of_series(s).as_features().to_vec())
        .collect();
    if rows.len() < 3 {
        return (0..rows.len()).collect();
    }
    let data = tfb_math::matrix::Matrix::from_rows(&rows).expect("uniform feature rows");
    tfb_math::pca::principal_feature_selection(&data, threshold)
        .unwrap_or_else(|_| (0..rows.len()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curate_archive_returns_valid_subset() {
        let archive = tfb_datagen::UnivariateArchive::generate(300, 7);
        let kept = curate_archive(&archive, 0.9);
        assert!(!kept.is_empty());
        assert!(kept.len() <= archive.len());
        assert!(kept.iter().all(|&i| i < archive.len()));
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn load_all_yields_25_datasets() {
        let handles = load_all(Scale::TINY);
        assert_eq!(handles.len(), 25);
    }

    #[test]
    fn load_by_name() {
        let h = load("ILI", Scale::TINY).unwrap();
        assert_eq!(h.series.name, "ILI");
        assert!(load("NotADataset", Scale::TINY).is_none());
    }

    #[test]
    fn fredmd_has_stronger_trend_than_electricity() {
        let fred = load("FRED-MD", Scale::DEFAULT).unwrap();
        let elec = load("Electricity", Scale::DEFAULT).unwrap();
        let cf = DatasetCharacteristics::compute(&fred.series, 4);
        let ce = DatasetCharacteristics::compute(&elec.series, 4);
        assert!(cf.trend > ce.trend, "{} vs {}", cf.trend, ce.trend);
        assert!(ce.seasonality > cf.seasonality);
    }

    #[test]
    fn pemsbay_is_more_correlated_than_exchange() {
        let bay = load("PEMS-BAY", Scale::TINY).unwrap();
        let exch = load("Exchange", Scale::TINY).unwrap();
        let cb = DatasetCharacteristics::compute(&bay.series, 4);
        let cx = DatasetCharacteristics::compute(&exch.series, 4);
        assert!(cb.correlation > cx.correlation);
    }

    #[test]
    fn acceptance_rule_rejects_duplicates() {
        let a = DatasetCharacteristics {
            trend: 0.5,
            seasonality: 0.5,
            stationarity: 0.5,
            shifting: 0.2,
            transition: 0.01,
            correlation: 0.4,
        };
        let close = a;
        let far = DatasetCharacteristics {
            trend: 0.95,
            seasonality: 0.05,
            ..a
        };
        assert!(!expands_coverage(&[a], &close, 0.1));
        assert!(expands_coverage(&[a], &far, 0.1));
        assert!(expands_coverage(&[], &a, 0.1));
    }
}

//! Experiment execution: expands a [`BenchmarkConfig`] into jobs, runs the
//! per-job hyper-parameter search (best of ≤ 8 look-back sets, exactly the
//! paper's protocol), and executes jobs sequentially or across worker
//! threads.

use crate::config::{BenchmarkConfig, JobSpec, StrategyConfig};
use crate::eval::{evaluate, EvalOutcome, EvalSettings, Strategy};
use crate::method::build_method;
use crate::{CoreError, Result};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tfb_data::MultiSeries;
use tfb_nn::TrainConfig;

/// How to execute the job grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One job at a time, in order.
    Sequential,
    /// A pool of worker threads.
    Threads(usize),
}

/// Shared, lazily generated dataset cache keyed by name, bounded by a
/// small LRU so a long grid over many datasets cannot keep every
/// generated series resident at once.
///
/// The map lock only guards slot creation and recency bookkeeping;
/// generation happens outside it under the slot's own [`OnceLock`], which
/// doubles as an entry-level "in-flight" marker: when two workers race on
/// the same dataset, one generates while the other blocks on the slot, so
/// a resident profile is never generated twice (and workers loading
/// *different* datasets never wait on each other's generation). Eviction
/// only drops the cache's reference — waiters hold their own `Arc` clone
/// of the slot, so an evicted in-flight generation still completes for
/// everyone already blocked on it; a later request for the same name
/// simply regenerates (datasets are deterministic, so results are
/// unaffected — see `eviction_does_not_change_results`).
#[derive(Debug)]
pub struct DatasetCache {
    state: Mutex<CacheState>,
    generations: AtomicUsize,
    capacity: usize,
}

#[derive(Debug, Default)]
struct CacheState {
    slots: HashMap<String, Arc<OnceLock<Arc<MultiSeries>>>>,
    /// Dataset names from least- to most-recently used; always in sync
    /// with `slots` (same key set).
    recency: VecDeque<String>,
}

impl Default for DatasetCache {
    fn default() -> DatasetCache {
        DatasetCache::with_capacity(DatasetCache::DEFAULT_CAPACITY)
    }
}

impl DatasetCache {
    /// Default bound on resident datasets. Large enough that the usual
    /// benchmark grids (a handful of datasets shared by every method and
    /// horizon) never evict; small enough to bound memory on 25-dataset
    /// sweeps.
    pub const DEFAULT_CAPACITY: usize = 8;

    /// An empty cache with the default capacity.
    pub fn new() -> DatasetCache {
        DatasetCache::default()
    }

    /// An empty cache holding at most `capacity` datasets (`0` means
    /// unbounded).
    pub fn with_capacity(capacity: usize) -> DatasetCache {
        DatasetCache {
            state: Mutex::new(CacheState::default()),
            generations: AtomicUsize::new(0),
            capacity,
        }
    }

    /// Returns the dataset, generating it at most once across all threads
    /// while it stays resident.
    pub fn get_or_generate(
        &self,
        name: &str,
        scale: tfb_datagen::Scale,
    ) -> Result<Arc<MultiSeries>> {
        // Validate the name before claiming a slot so unknown datasets
        // never leave an empty entry behind.
        let profile = tfb_datagen::profile_by_name(name)
            .ok_or_else(|| CoreError::Eval(format!("unknown dataset: {name}")))?;
        let slot = {
            let mut state = self.state.lock().expect("dataset cache poisoned");
            state.recency.retain(|n| n != name);
            state.recency.push_back(name.to_string());
            let slot = Arc::clone(state.slots.entry(name.to_string()).or_default());
            while self.capacity > 0 && state.slots.len() > self.capacity {
                // The requested name was just pushed to the back, so with
                // more entries than capacity (≥ 1) the front is another
                // dataset.
                let Some(victim) = state.recency.pop_front() else {
                    break;
                };
                if victim == name {
                    state.recency.push_back(victim);
                    continue;
                }
                state.slots.remove(&victim);
                tfb_obs::counter!("dataset_cache/evict").add(1);
            }
            slot
        };
        let mut generated = false;
        let series = slot.get_or_init(|| {
            let _datagen_span = tfb_obs::span!("datagen", dataset = name);
            tfb_obs::counter!("dataset_cache/miss").add(1);
            generated = true;
            self.generations.fetch_add(1, Ordering::Relaxed);
            Arc::new(profile.generate(scale))
        });
        if !generated {
            tfb_obs::counter!("dataset_cache/hit").add(1);
        }
        Ok(Arc::clone(series))
    }

    /// How many datasets have actually been generated (as opposed to served
    /// from cache). With N distinct dataset names and no eviction (N ≤
    /// capacity) this is at most N no matter how many threads share the
    /// cache; past the capacity, re-requesting an evicted dataset
    /// regenerates it.
    pub fn generation_count(&self) -> usize {
        self.generations.load(Ordering::Relaxed)
    }

    /// How many datasets are currently resident.
    pub fn resident_count(&self) -> usize {
        self.state
            .lock()
            .expect("dataset cache poisoned")
            .slots
            .len()
    }
}

fn load_dataset(
    cache: &DatasetCache,
    name: &str,
    scale: tfb_datagen::Scale,
) -> Result<Arc<MultiSeries>> {
    cache.get_or_generate(name, scale)
}

fn settings_for(config: &BenchmarkConfig, job: &JobSpec, lookback: usize) -> Result<EvalSettings> {
    let profile = tfb_datagen::profile_by_name(&job.dataset)
        .ok_or_else(|| CoreError::Eval(format!("unknown dataset: {}", job.dataset)))?;
    let strategy = match config.strategy {
        StrategyConfig::Fixed => Strategy::Fixed,
        StrategyConfig::Rolling { stride } => Strategy::Rolling { stride },
    };
    Ok(EvalSettings {
        strategy,
        lookback,
        horizon: job.horizon,
        split: profile.split,
        normalization: config.normalization,
        metrics: config.metric_list(),
        custom_metrics: Vec::new(),
        max_windows: config.max_windows,
        drop_last: None,
        batch_inference: true,
        window_parallelism: 0,
    })
}

/// Runs one job: the hyper-parameter search over look-backs, keeping the
/// best outcome by the config's primary (first) metric.
pub fn run_job(
    config: &BenchmarkConfig,
    job: &JobSpec,
    cache: &DatasetCache,
    train_config: Option<TrainConfig>,
) -> Result<EvalOutcome> {
    let _job_span = tfb_obs::span!("job", dataset = job.dataset, method = job.method);
    let series = load_dataset(cache, &job.dataset, config.scale())?;
    let metrics = config.metric_list();
    let primary = *metrics
        .first()
        .ok_or_else(|| CoreError::Eval("config has no metrics".into()))?;
    let mut best: Option<EvalOutcome> = None;
    let mut last_err: Option<CoreError> = None;
    for lookback in config.search_space() {
        // A look-back candidate longer than the data affords is skipped.
        let settings = settings_for(config, job, lookback)?;
        let mut method = build_method(
            &job.method,
            lookback,
            job.horizon,
            series.dim(),
            train_config,
        )?;
        match evaluate(&mut method, &series, &settings) {
            Ok(out) => {
                let score = out.metric(primary);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        let cur = b.metric(primary);
                        score.is_finite() && (!cur.is_finite() || score < cur)
                    }
                };
                if better {
                    best = Some(out);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    let best = best.ok_or_else(|| {
        last_err.unwrap_or_else(|| CoreError::Eval(format!("no look-back fit {job:?}")))
    })?;
    // Surface the winning cell's accuracy metrics to the manifest so
    // cross-run tooling can gate on correctness drift, not just time.
    for (label, value) in &best.metrics {
        tfb_obs::report_metric(&best.dataset, &best.method, best.horizon, label, *value);
    }
    Ok(best)
}

/// Executes the whole config. Failed jobs are reported as `Err` entries in
/// the same order as `config.jobs()` — the pipeline never aborts a study
/// because one method cannot run on one dataset (those cells are the
/// "nan" entries of Tables 7–8).
pub fn run_jobs(
    config: &BenchmarkConfig,
    parallelism: Parallelism,
    train_config: Option<TrainConfig>,
) -> Vec<Result<EvalOutcome>> {
    let jobs = config.jobs();
    let cache = DatasetCache::new();
    match parallelism {
        Parallelism::Sequential => jobs
            .iter()
            .map(|job| run_job(config, job, &cache, train_config))
            .collect(),
        Parallelism::Threads(n) => {
            let n = n.max(1);
            let results: Vec<Mutex<Option<Result<EvalOutcome>>>> =
                jobs.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..n {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let out = run_job(config, &jobs[i], &cache, train_config);
                        *results[i].lock().expect("result slot poisoned") = Some(out);
                    });
                }
            });
            results
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("result slot poisoned")
                        .expect("worker filled every slot")
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyConfig;
    use tfb_data::Normalization;

    fn tiny_config(methods: &[&str]) -> BenchmarkConfig {
        BenchmarkConfig {
            datasets: vec!["ILI".into()],
            methods: methods.iter().map(|s| s.to_string()).collect(),
            horizons: vec![12],
            lookbacks: vec![24, 36],
            strategy: StrategyConfig::Rolling { stride: 4 },
            normalization: Normalization::ZScore,
            metrics: vec!["mae".into(), "mse".into()],
            max_windows: 6,
            max_len: 600,
            max_dim: 3,
        }
    }

    #[test]
    fn sequential_run_produces_outcomes() {
        let cfg = tiny_config(&["Naive", "LR"]);
        let out = run_jobs(&cfg, Parallelism::Sequential, None);
        assert_eq!(out.len(), 2);
        for r in out {
            let o = r.unwrap();
            assert!(o.metric(crate::Metric::Mae).is_finite());
            assert_eq!(o.dataset, "ILI");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        // Job-level threading must leave every metric of every job
        // bit-identical, including the window methods' batched inference.
        let cfg = tiny_config(&["Naive", "Mean", "Drift", "LR"]);
        let unpack = |rs: Vec<Result<EvalOutcome>>| -> Vec<_> {
            rs.into_iter()
                .map(|r| {
                    let o = r.unwrap();
                    (o.method, o.n_windows, o.metrics)
                })
                .collect()
        };
        let seq = unpack(run_jobs(&cfg, Parallelism::Sequential, None));
        let par = unpack(run_jobs(&cfg, Parallelism::Threads(3), None));
        assert_eq!(seq, par);
    }

    #[test]
    fn search_picks_the_better_lookback() {
        // With two look-backs, the reported outcome must be the min-MAE one.
        let cfg = tiny_config(&["LR"]);
        let cache = DatasetCache::new();
        let job = &cfg.jobs()[0];
        let best = run_job(&cfg, job, &cache, None).unwrap();
        for lb in cfg.search_space() {
            let mut single = cfg.clone();
            single.lookbacks = vec![lb];
            let one = run_job(&single, job, &cache, None).unwrap();
            assert!(best.metric(crate::Metric::Mae) <= one.metric(crate::Metric::Mae) + 1e-12);
        }
    }

    #[test]
    fn cache_generates_each_dataset_once_under_contention() {
        // Many threads ask for the same two datasets at once; the in-flight
        // slot must collapse every race to a single generation per name.
        let cache = DatasetCache::new();
        let scale = tfb_datagen::Scale {
            max_len: 400,
            max_dim: 2,
        };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..4 {
                        let a = cache.get_or_generate("ILI", scale).unwrap();
                        let b = cache.get_or_generate("ETTh1", scale).unwrap();
                        assert!(!a.is_empty() && !b.is_empty());
                    }
                });
            }
        });
        assert_eq!(cache.generation_count(), 2);
        // Identity: every caller got the same Arc.
        let again = cache.get_or_generate("ILI", scale).unwrap();
        assert_eq!(cache.generation_count(), 2);
        assert!(!again.is_empty());
    }

    #[test]
    fn cache_capacity_bounds_resident_datasets() {
        // A cap-1 cache alternating between two datasets evicts on every
        // switch but never holds more than one series.
        let cache = DatasetCache::with_capacity(1);
        let scale = tfb_datagen::Scale {
            max_len: 400,
            max_dim: 2,
        };
        for _ in 0..3 {
            cache.get_or_generate("ILI", scale).unwrap();
            assert_eq!(cache.resident_count(), 1);
            cache.get_or_generate("ETTh1", scale).unwrap();
            assert_eq!(cache.resident_count(), 1);
        }
        assert_eq!(cache.generation_count(), 6, "every switch regenerates");
        // Repeats without a switch still hit.
        cache.get_or_generate("ETTh1", scale).unwrap();
        assert_eq!(cache.generation_count(), 6);
    }

    #[test]
    fn eviction_does_not_change_results() {
        // The same grid through a cap-1 cache (evicting on every dataset
        // switch) and an unbounded one must produce bit-identical metrics:
        // regeneration is deterministic, so eviction trades time, never
        // correctness.
        let mut cfg = tiny_config(&["Naive", "LR"]);
        cfg.datasets = vec!["ILI".into(), "ETTh1".into(), "NASDAQ".into()];
        // The grid is dataset-major; reorder it method-major so the
        // dataset changes on every job and a cap-1 cache must evict each
        // time.
        let mut jobs = cfg.jobs();
        jobs.sort_by(|a, b| (&a.method, &a.dataset).cmp(&(&b.method, &b.dataset)));
        let run_with = |cache: &DatasetCache| -> Vec<_> {
            jobs.iter()
                .map(|job| {
                    let o = run_job(&cfg, job, cache, None).unwrap();
                    (o.dataset.clone(), o.method.clone(), o.metrics.clone())
                })
                .collect()
        };
        let evicting = DatasetCache::with_capacity(1);
        let unbounded = DatasetCache::with_capacity(0);
        let got = run_with(&evicting);
        let want = run_with(&unbounded);
        assert!(
            evicting.generation_count() > unbounded.generation_count(),
            "the cap-1 cache should actually have evicted and regenerated"
        );
        assert_eq!(got, want);
    }

    #[test]
    fn unknown_dataset_fails_cleanly() {
        let mut cfg = tiny_config(&["Naive"]);
        cfg.datasets = vec!["Nope".into()];
        let out = run_jobs(&cfg, Parallelism::Sequential, None);
        assert!(out[0].is_err());
    }

    #[test]
    fn unknown_method_fails_cleanly() {
        let cfg = tiny_config(&["NotAMethod"]);
        let out = run_jobs(&cfg, Parallelism::Sequential, None);
        assert!(out[0].is_err());
    }
}

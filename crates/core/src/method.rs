//! The method layer: a uniform wrapper over the three method paradigms and
//! the *universal interface* (name-based factory) through which the
//! pipeline — and users integrating third-party methods — instantiate
//! forecasters.

use crate::{CoreError, Result};
use tfb_models::{StatForecaster, WindowForecaster};
use tfb_nn::{DeepModel, DeepModelKind, TrainConfig};

/// A forecaster under one of TFB's two training economies.
pub enum Method {
    /// Statistical: refit on the full history of every rolling iteration.
    Stat(Box<dyn StatForecaster>),
    /// Window-based (ML/DL): train once, re-infer per iteration.
    Window(Box<dyn WindowForecaster>),
}

impl Method {
    /// Method name as reported in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Stat(m) => m.name(),
            Method::Window(m) => m.name(),
        }
    }

    /// Whether this method retrains per rolling iteration.
    pub fn is_statistical(&self) -> bool {
        matches!(self, Method::Stat(_))
    }

    /// Parameter count (0 for statistical methods, which have no fixed
    /// parameterization).
    pub fn parameter_count(&self) -> usize {
        match self {
            Method::Stat(_) => 0,
            Method::Window(m) => m.parameter_count(),
        }
    }
}

/// Names of all statistical methods the factory knows.
pub const STAT_METHODS: [&str; 10] = [
    "Naive",
    "SeasonalNaive",
    "Drift",
    "Mean",
    "ARIMA",
    "SARIMA",
    "ETS",
    "Theta",
    "VAR",
    "KF",
];

/// Names of all machine-learning methods the factory knows.
pub const ML_METHODS: [&str; 4] = ["LR", "RF", "XGB", "KNN"];

/// Names of all deep-learning methods the factory knows.
pub const DL_METHODS: [&str; 17] = [
    "NLinear",
    "DLinear",
    "PatchTST",
    "Crossformer",
    "FEDformer",
    "Informer",
    "Triformer",
    "Stationary",
    "TiDE",
    "N-BEATS",
    "N-HiTS",
    "TimesNet",
    "MICN",
    "TCN",
    "RNN",
    "FiLM",
    "MLP",
];

/// Method paradigm, used by per-paradigm result groupings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Paradigm {
    /// Statistical learning.
    Statistical,
    /// (Non-deep) machine learning.
    MachineLearning,
    /// Deep learning.
    DeepLearning,
}

/// Paradigm of a method name, if known.
pub fn paradigm_of(name: &str) -> Option<Paradigm> {
    if STAT_METHODS.contains(&name) {
        Some(Paradigm::Statistical)
    } else if ML_METHODS.contains(&name) {
        Some(Paradigm::MachineLearning)
    } else if DL_METHODS.contains(&name) {
        Some(Paradigm::DeepLearning)
    } else {
        None
    }
}

fn deep_kind(name: &str) -> Option<DeepModelKind> {
    let kind = match name {
        "NLinear" => DeepModelKind::NLinear,
        "DLinear" => DeepModelKind::DLinear,
        "PatchTST" => DeepModelKind::PatchTST,
        "Crossformer" => DeepModelKind::Crossformer,
        "FEDformer" => DeepModelKind::FEDformer,
        "Informer" => DeepModelKind::Informer,
        "Triformer" => DeepModelKind::Triformer,
        "Stationary" => DeepModelKind::Stationary,
        "TiDE" => DeepModelKind::TiDE,
        "N-BEATS" => DeepModelKind::NBeats,
        "N-HiTS" => DeepModelKind::NHiTS,
        "TimesNet" => DeepModelKind::TimesNet,
        "MICN" => DeepModelKind::MICN,
        "TCN" => DeepModelKind::Tcn,
        "RNN" => DeepModelKind::Rnn,
        "FiLM" => DeepModelKind::FiLM,
        "MLP" => DeepModelKind::Mlp,
        _ => return None,
    };
    Some(kind)
}

/// The universal interface: builds a method by name.
///
/// `lookback`/`horizon` configure window-based methods (ignored by
/// statistical ones); `dim` is needed by cross-channel deep models;
/// `train_config` overrides the deep-learning training budget when given.
///
/// ```
/// use tfb_core::method::build_method;
///
/// let var = build_method("VAR", 96, 24, 7, None).unwrap();
/// assert!(var.is_statistical());
/// let patch = build_method("PatchTST", 96, 24, 7, None).unwrap();
/// assert!(!patch.is_statistical());
/// assert!(build_method("NotAMethod", 96, 24, 7, None).is_err());
/// ```
pub fn build_method(
    name: &str,
    lookback: usize,
    horizon: usize,
    dim: usize,
    train_config: Option<TrainConfig>,
) -> Result<Method> {
    use tfb_models as m;
    let method = match name {
        "Naive" => Method::Stat(Box::new(m::Naive)),
        "SeasonalNaive" => Method::Stat(Box::new(m::SeasonalNaive::auto())),
        "Drift" => Method::Stat(Box::new(m::Drift)),
        "Mean" => Method::Stat(Box::new(m::MeanForecaster)),
        "ARIMA" => Method::Stat(Box::new(m::Arima::auto())),
        "SARIMA" => Method::Stat(Box::new(m::Sarima::airline(0))),
        "ETS" => Method::Stat(Box::new(m::Ets::auto())),
        "Theta" => Method::Stat(Box::new(m::Theta)),
        "VAR" => Method::Stat(Box::new(m::Var::auto())),
        "KF" => Method::Stat(Box::new(m::KalmanForecaster)),
        "LR" => Method::Window(Box::new(m::LinearRegressionForecaster::new(
            lookback, horizon,
        ))),
        "RF" => Method::Window(Box::new(m::RandomForest::new(lookback, horizon))),
        "XGB" => Method::Window(Box::new(m::GradientBoosting::new(lookback, horizon))),
        "KNN" => Method::Window(Box::new(m::Knn::new(lookback, horizon))),
        other => match deep_kind(other) {
            Some(kind) => {
                let mut model = DeepModel::new(kind, lookback, horizon, dim);
                if let Some(cfg) = train_config {
                    model.config = cfg;
                }
                Method::Window(Box::new(model))
            }
            None => return Err(CoreError::UnknownMethod(other.to_string())),
        },
    };
    Ok(method)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_known_method() {
        for name in STAT_METHODS.iter().chain(&ML_METHODS).chain(&DL_METHODS) {
            let m = build_method(name, 24, 6, 3, None).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&m.name(), name);
        }
    }

    #[test]
    fn unknown_method_is_an_error() {
        assert!(matches!(
            build_method("NotAModel", 8, 2, 1, None),
            Err(CoreError::UnknownMethod(_))
        ));
    }

    #[test]
    fn paradigms_partition_the_registry() {
        assert_eq!(paradigm_of("VAR"), Some(Paradigm::Statistical));
        assert_eq!(paradigm_of("LR"), Some(Paradigm::MachineLearning));
        assert_eq!(paradigm_of("PatchTST"), Some(Paradigm::DeepLearning));
        assert_eq!(paradigm_of("???"), None);
    }

    #[test]
    fn stat_methods_report_statistical() {
        let m = build_method("ARIMA", 8, 4, 1, None).unwrap();
        assert!(m.is_statistical());
        assert_eq!(m.parameter_count(), 0);
        let m = build_method("NLinear", 8, 4, 1, None).unwrap();
        assert!(!m.is_statistical());
        assert!(m.parameter_count() > 0);
    }
}

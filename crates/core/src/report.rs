//! The reporting layer: result tables, per-method rankings (the "Ranks"
//! column of Table 6), and CSV/Markdown emission with the run-traceability
//! log the paper's reporting layer calls for.

use crate::eval::EvalOutcome;
use crate::metrics::Metric;
use crate::Result;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// One reported cell: a flattened [`EvalOutcome`] including the measured
/// training/inference wall times (Table 5's efficiency columns).
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Horizon.
    pub horizon: usize,
    /// Number of evaluation windows.
    pub n_windows: usize,
    /// Wall-clock training time (zero for statistical methods).
    pub train_time: Duration,
    /// Average inference time per window.
    pub infer_time: Duration,
    /// Parameter count (0 for statistical methods).
    pub parameters: usize,
    /// Cell status: `ok` for an evaluated cell, `aborted:numerical` for a
    /// cell the health probes aborted, `failed` otherwise. Failed cells
    /// stay in the table (marked, not silently dropped).
    pub status: String,
    /// Metric label → value.
    pub metrics: BTreeMap<String, f64>,
}

impl From<&EvalOutcome> for ResultRow {
    fn from(o: &EvalOutcome) -> ResultRow {
        ResultRow {
            dataset: o.dataset.clone(),
            method: o.method.clone(),
            horizon: o.horizon,
            n_windows: o.n_windows,
            train_time: o.train_time,
            infer_time: o.infer_time,
            parameters: o.parameters,
            status: "ok".to_string(),
            metrics: o.metrics.clone(),
        }
    }
}

/// A collection of result rows with table-formatting helpers.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    /// The rows, in insertion order.
    pub rows: Vec<ResultRow>,
}

impl ResultTable {
    /// Builds a table from evaluation outcomes, skipping failures.
    pub fn from_outcomes<'a>(outcomes: impl IntoIterator<Item = &'a EvalOutcome>) -> ResultTable {
        ResultTable {
            rows: outcomes.into_iter().map(ResultRow::from).collect(),
        }
    }

    /// Adds one outcome.
    pub fn push(&mut self, outcome: &EvalOutcome) {
        self.rows.push(outcome.into());
    }

    /// Adds a marker row for a cell that produced no outcome (an aborted
    /// or failed job), so the CSV records the cell instead of omitting it.
    pub fn push_failure(&mut self, dataset: &str, method: &str, horizon: usize, status: &str) {
        self.rows.push(ResultRow {
            dataset: dataset.to_string(),
            method: method.to_string(),
            horizon,
            n_windows: 0,
            train_time: Duration::ZERO,
            infer_time: Duration::ZERO,
            parameters: 0,
            status: status.to_string(),
            metrics: BTreeMap::new(),
        });
    }

    /// The distinct method names, in first-seen order.
    pub fn methods(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for r in &self.rows {
            if !seen.contains(&r.method) {
                seen.push(r.method.clone());
            }
        }
        seen
    }

    /// The distinct (dataset, horizon) pairs, in first-seen order.
    pub fn cases(&self) -> Vec<(String, usize)> {
        let mut seen = Vec::new();
        for r in &self.rows {
            let key = (r.dataset.clone(), r.horizon);
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen
    }

    /// Value for a (dataset, horizon, method, metric) cell.
    pub fn cell(&self, dataset: &str, horizon: usize, method: &str, metric: Metric) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset && r.horizon == horizon && r.method == method)
            .and_then(|r| r.metrics.get(metric.label()).copied())
    }

    /// Mean of a metric per method over all cases (NaN/inf cells excluded,
    /// matching how the paper averages Table 6).
    pub fn mean_by_method(&self, metric: Metric) -> BTreeMap<String, f64> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for r in &self.rows {
            if let Some(&v) = r.metrics.get(metric.label()) {
                if v.is_finite() {
                    let e = sums.entry(r.method.clone()).or_insert((0.0, 0));
                    e.0 += v;
                    e.1 += 1;
                }
            }
        }
        sums.into_iter()
            .map(|(k, (s, n))| (k, s / n.max(1) as f64))
            .collect()
    }

    /// Markdown rendering: one row per (dataset, horizon), one column pair
    /// per method.
    pub fn to_markdown(&self, metric: Metric) -> String {
        let methods = self.methods();
        let mut out = String::new();
        out.push_str("| dataset | F |");
        for m in &methods {
            out.push_str(&format!(" {m} |"));
        }
        out.push('\n');
        out.push_str("|---|---|");
        for _ in &methods {
            out.push_str("---|");
        }
        out.push('\n');
        for (dataset, horizon) in self.cases() {
            out.push_str(&format!("| {dataset} | {horizon} |"));
            for m in &methods {
                match self.cell(&dataset, horizon, m, metric) {
                    Some(v) if v.is_nan() => out.push_str(" nan |"),
                    Some(v) if v.is_infinite() => out.push_str(" inf |"),
                    Some(v) => out.push_str(&format!(" {v:.3} |")),
                    None => out.push_str(" - |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering with one row per result: the timing/size columns the
    /// evaluation layer measures, then one column per metric.
    pub fn to_csv(&self) -> String {
        let mut metric_labels: Vec<String> = Vec::new();
        for r in &self.rows {
            for k in r.metrics.keys() {
                if !metric_labels.contains(k) {
                    metric_labels.push(k.clone());
                }
            }
        }
        let mut out =
            String::from("dataset,method,horizon,n_windows,train_s,infer_ms,params,status");
        for m in &metric_labels {
            out.push(',');
            out.push_str(m);
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}",
                r.dataset,
                r.method,
                r.horizon,
                r.n_windows,
                r.train_time.as_secs_f64(),
                r.infer_time.as_secs_f64() * 1e3,
                r.parameters,
                r.status
            ));
            for m in &metric_labels {
                out.push(',');
                match r.metrics.get(m) {
                    Some(v) => out.push_str(&format!("{v}")),
                    None => out.push_str(""),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Markdown rendering of the measured efficiency columns: training
    /// wall time, per-window inference time and parameter count per
    /// (dataset, horizon, method) — the run's Table 5 counterpart.
    pub fn timing_markdown(&self) -> String {
        let mut out = String::from(
            "| dataset | F | method | windows | train (s) | infer (ms/win) | params |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.3} | {:.3} | {} |\n",
                r.dataset,
                r.horizon,
                r.method,
                r.n_windows,
                r.train_time.as_secs_f64(),
                r.infer_time.as_secs_f64() * 1e3,
                r.parameters
            ));
        }
        out
    }

    /// Writes the CSV under `dir/name.csv`, creating the directory.
    pub fn write_csv(&self, dir: &Path, name: &str) -> Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Per-method ranking: how often each method achieves the best value of a
/// metric across cases — the "Ranks" statistic of Table 6.
#[derive(Debug, Clone)]
pub struct RankTable {
    /// Method → number of cases where it was (tied-)best.
    pub wins: BTreeMap<String, usize>,
    /// Number of cases considered.
    pub cases: usize,
}

impl RankTable {
    /// Computes win counts on a result table.
    pub fn compute(table: &ResultTable, metric: Metric) -> RankTable {
        let mut wins: BTreeMap<String, usize> = BTreeMap::new();
        for m in table.methods() {
            wins.insert(m, 0);
        }
        let cases = table.cases();
        for (dataset, horizon) in &cases {
            let mut best: Option<(f64, Vec<String>)> = None;
            for m in table.methods() {
                let Some(v) = table.cell(dataset, *horizon, &m, metric) else {
                    continue;
                };
                if !v.is_finite() {
                    continue;
                }
                match &mut best {
                    None => best = Some((v, vec![m])),
                    Some((b, names)) => {
                        if v < *b - 1e-12 {
                            *b = v;
                            names.clear();
                            names.push(m);
                        } else if (v - *b).abs() <= 1e-12 {
                            names.push(m);
                        }
                    }
                }
            }
            if let Some((_, names)) = best {
                for m in names {
                    *wins.entry(m).or_insert(0) += 1;
                }
            }
        }
        RankTable {
            wins,
            cases: cases.len(),
        }
    }
}

/// A minimal run log capturing the experimental settings for traceability.
#[derive(Debug, Clone, Default)]
pub struct RunLog {
    entries: Vec<String>,
}

impl RunLog {
    /// Creates an empty log.
    pub fn new() -> RunLog {
        RunLog::default()
    }

    /// Appends a log line.
    pub fn log(&mut self, line: impl Into<String>) {
        self.entries.push(line.into());
    }

    /// All lines.
    pub fn lines(&self) -> &[String] {
        &self.entries
    }

    /// Writes the log beside the results.
    pub fn write(&self, dir: &Path, name: &str) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.log"));
        std::fs::write(path, self.entries.join("\n"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn outcome(dataset: &str, method: &str, horizon: usize, mae: f64) -> EvalOutcome {
        let mut metrics = BTreeMap::new();
        metrics.insert("mae".to_string(), mae);
        EvalOutcome {
            method: method.into(),
            dataset: dataset.into(),
            horizon,
            lookback: 36,
            metrics,
            n_windows: 10,
            train_time: Duration::ZERO,
            infer_time: Duration::ZERO,
            parameters: 0,
        }
    }

    #[test]
    fn table_cells_and_methods() {
        let outs = vec![
            outcome("A", "VAR", 24, 0.5),
            outcome("A", "LR", 24, 0.7),
            outcome("B", "VAR", 24, 0.9),
        ];
        let t = ResultTable::from_outcomes(&outs);
        assert_eq!(t.methods(), vec!["VAR".to_string(), "LR".to_string()]);
        assert_eq!(t.cases().len(), 2);
        assert_eq!(t.cell("A", 24, "LR", Metric::Mae), Some(0.7));
        assert_eq!(t.cell("B", 24, "LR", Metric::Mae), None);
    }

    #[test]
    fn rank_table_counts_wins() {
        let outs = vec![
            outcome("A", "VAR", 24, 0.5),
            outcome("A", "LR", 24, 0.7),
            outcome("B", "VAR", 24, 0.9),
            outcome("B", "LR", 24, 0.4),
        ];
        let t = ResultTable::from_outcomes(&outs);
        let r = RankTable::compute(&t, Metric::Mae);
        assert_eq!(r.wins["VAR"], 1);
        assert_eq!(r.wins["LR"], 1);
        assert_eq!(r.cases, 2);
    }

    #[test]
    fn rank_table_ignores_nonfinite() {
        let outs = vec![
            outcome("A", "VAR", 24, f64::INFINITY),
            outcome("A", "LR", 24, 0.7),
        ];
        let t = ResultTable::from_outcomes(&outs);
        let r = RankTable::compute(&t, Metric::Mae);
        assert_eq!(r.wins["LR"], 1);
        assert_eq!(r.wins["VAR"], 0);
    }

    #[test]
    fn markdown_marks_missing_and_inf() {
        let outs = vec![
            outcome("A", "VAR", 24, f64::INFINITY),
            outcome("A", "LR", 24, 0.5),
            outcome("B", "LR", 24, f64::NAN),
        ];
        let t = ResultTable::from_outcomes(&outs);
        let md = t.to_markdown(Metric::Mae);
        assert!(md.contains("inf"));
        assert!(md.contains("nan"));
        assert!(md.contains(" - |"));
    }

    #[test]
    fn csv_roundtrip_structure() {
        let outs = vec![outcome("A", "VAR", 24, 0.5)];
        let t = ResultTable::from_outcomes(&outs);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "dataset,method,horizon,n_windows,train_s,infer_ms,params,status,mae"
        );
        assert_eq!(lines.next().unwrap(), "A,VAR,24,10,0,0,0,ok,0.5");
    }

    #[test]
    fn failed_cells_are_marked_not_dropped() {
        let mut t = ResultTable::from_outcomes(&[outcome("A", "VAR", 24, 0.5)]);
        t.push_failure("A", "MLP", 24, "aborted:numerical");
        let csv = t.to_csv();
        assert!(csv.contains("A,MLP,24,0,0,0,0,aborted:numerical,"), "{csv}");
        // The failed cell contributes no metric values.
        assert_eq!(t.cell("A", 24, "MLP", Metric::Mae), None);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn csv_carries_measured_times() {
        let mut o = outcome("A", "MLP", 24, 0.5);
        o.train_time = Duration::from_millis(1500);
        o.infer_time = Duration::from_micros(250);
        o.parameters = 1234;
        let t = ResultTable::from_outcomes(&[o]);
        let csv = t.to_csv();
        assert!(csv.contains("A,MLP,24,10,1.5,0.25,1234,ok,0.5"));
    }

    #[test]
    fn timing_markdown_lists_every_row() {
        let mut a = outcome("A", "VAR", 24, 0.5);
        a.infer_time = Duration::from_micros(500);
        let b = outcome("B", "LR", 36, 0.7);
        let t = ResultTable::from_outcomes(&[a, b]);
        let md = t.timing_markdown();
        assert!(md.starts_with(
            "| dataset | F | method | windows | train (s) | infer (ms/win) | params |"
        ));
        assert!(md.contains("| A | 24 | VAR | 10 | 0.000 | 0.500 | 0 |"));
        assert!(md.contains("| B | 36 | LR | 10 |"));
    }

    #[test]
    fn mean_by_method_excludes_nonfinite() {
        let outs = vec![
            outcome("A", "VAR", 24, 1.0),
            outcome("B", "VAR", 24, 3.0),
            outcome("C", "VAR", 24, f64::INFINITY),
        ];
        let t = ResultTable::from_outcomes(&outs);
        let m = t.mean_by_method(Metric::Mae);
        assert_eq!(m["VAR"], 2.0);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("tfb_report_test");
        let t = ResultTable::from_outcomes(&[outcome("A", "VAR", 24, 0.5)]);
        let path = t.write_csv(&dir, "unit").unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }
}

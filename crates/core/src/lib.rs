//! `tfb-core` — the TFB unified pipeline (Figure 7 of the paper).
//!
//! The pipeline has four layers:
//!
//! * **Data layer** — dataset registry, characteristic-driven acceptance
//!   and standardized handling (splits, normalization) in [`data`];
//! * **Method layer** — a uniform [`method::Method`] wrapper over
//!   statistical, machine-learning and deep-learning forecasters, a
//!   name-based factory, and bounded hyper-parameter search in [`method`];
//! * **Evaluation layer** — fixed and rolling forecasting strategies
//!   (Figure 6), the eight error metrics of Equations 7–14, and the
//!   "drop last" ablation switch in [`eval`] and [`metrics`];
//! * **Reporting layer** — result tables, rankings and CSV/Markdown
//!   emission in [`report`], with sequential and parallel execution in
//!   [`runner`].

pub mod config;
pub mod data;
pub mod eval;
pub mod method;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod viz;

pub use config::{BenchmarkConfig, JobSpec};
pub use eval::{EvalOutcome, EvalSettings, Strategy};
pub use method::{build_method, Method};
pub use metrics::{Metric, MetricContext};
pub use report::{RankTable, ResultRow, ResultTable};
pub use runner::{run_jobs, Parallelism};

/// Errors surfaced by the pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// Unknown method name in a config.
    UnknownMethod(String),
    /// Underlying model failure.
    Model(tfb_models::ModelError),
    /// Underlying data failure.
    Data(tfb_data::DataError),
    /// Evaluation could not run (e.g. series too short for the horizon).
    Eval(String),
    /// I/O failure while reporting.
    Io(std::io::Error),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownMethod(name) => write!(f, "unknown method: {name}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            CoreError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<tfb_models::ModelError> for CoreError {
    fn from(e: tfb_models::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<tfb_data::DataError> for CoreError {
    fn from(e: tfb_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

/// Result alias for the pipeline.
pub type Result<T> = std::result::Result<T, CoreError>;

//! The eight evaluation metrics of Equations 7–14: MAE, MAPE, MSE, SMAPE,
//! RMSE, WAPE, MSMAPE and MASE.
//!
//! All metrics take flat (time-major) forecast/actual slices, so they work
//! unchanged for univariate horizons and multivariate blocks. MASE
//! additionally needs the training series and the seasonal period
//! (the denominator is the in-sample seasonal-naive error).

/// The eight TFB metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Mean absolute error (Eq. 7).
    Mae,
    /// Mean absolute percentage error (Eq. 8).
    Mape,
    /// Mean squared error (Eq. 9).
    Mse,
    /// Symmetric MAPE (Eq. 10).
    Smape,
    /// Root mean squared error (Eq. 11).
    Rmse,
    /// Weighted absolute percent error (Eq. 12).
    Wape,
    /// Modified symmetric MAPE with ε = 0.1 (Eq. 13).
    Msmape,
    /// Mean absolute scaled error (Eq. 14).
    Mase,
}

impl Metric {
    /// All eight metrics in the paper's order.
    pub const ALL: [Metric; 8] = [
        Metric::Mae,
        Metric::Mape,
        Metric::Mse,
        Metric::Smape,
        Metric::Rmse,
        Metric::Wape,
        Metric::Msmape,
        Metric::Mase,
    ];

    /// Lower-case label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Mae => "mae",
            Metric::Mape => "mape",
            Metric::Mse => "mse",
            Metric::Smape => "smape",
            Metric::Rmse => "rmse",
            Metric::Wape => "wape",
            Metric::Msmape => "msmape",
            Metric::Mase => "mase",
        }
    }

    /// Parses a label (case-insensitive).
    pub fn parse(s: &str) -> Option<Metric> {
        Metric::ALL
            .into_iter()
            .find(|m| m.label().eq_ignore_ascii_case(s))
    }
}

/// Extra context needed by scale-aware metrics (MASE).
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricContext<'a> {
    /// The training series (one channel, chronological) for the MASE
    /// denominator.
    pub train: Option<&'a [f64]>,
    /// Seasonal period `S` of Eq. 14 (1 = non-seasonal).
    pub period: usize,
}

/// ε of Eq. 13, per the paper's stated default.
pub const MSMAPE_EPSILON: f64 = 0.1;

/// Computes one metric. Returns `f64::INFINITY` when a percentage-style
/// metric divides by zero everywhere (the paper reports these cells as
/// "inf"), and `f64::NAN` when inputs are empty or mismatched (reported as
/// "nan").
///
/// ```
/// use tfb_core::metrics::{compute, Metric, MetricContext};
///
/// let forecast = [11.0, 19.0];
/// let actual = [10.0, 20.0];
/// let ctx = MetricContext::default();
/// assert_eq!(compute(Metric::Mae, &forecast, &actual, ctx), 1.0);
/// assert_eq!(compute(Metric::Mse, &forecast, &actual, ctx), 1.0);
/// ```
pub fn compute(metric: Metric, forecast: &[f64], actual: &[f64], ctx: MetricContext<'_>) -> f64 {
    if forecast.is_empty() || forecast.len() != actual.len() {
        return f64::NAN;
    }
    let h = forecast.len() as f64;
    match metric {
        Metric::Mae => {
            forecast
                .iter()
                .zip(actual)
                .map(|(f, y)| (f - y).abs())
                .sum::<f64>()
                / h
        }
        Metric::Mse => {
            forecast
                .iter()
                .zip(actual)
                .map(|(f, y)| (f - y) * (f - y))
                .sum::<f64>()
                / h
        }
        Metric::Rmse => compute(Metric::Mse, forecast, actual, ctx).sqrt(),
        Metric::Mape => {
            let mut acc = 0.0;
            for (f, y) in forecast.iter().zip(actual) {
                if y.abs() < 1e-12 {
                    return f64::INFINITY;
                }
                acc += ((y - f) / y).abs();
            }
            acc / h * 100.0
        }
        Metric::Smape => {
            let mut acc = 0.0;
            for (f, y) in forecast.iter().zip(actual) {
                let denom = (y.abs() + f.abs()) / 2.0;
                if denom < 1e-12 {
                    return f64::INFINITY;
                }
                acc += (f - y).abs() / denom;
            }
            acc / h * 100.0
        }
        Metric::Wape => {
            let denom: f64 = actual.iter().map(|y| y.abs()).sum();
            if denom < 1e-12 {
                return f64::INFINITY;
            }
            forecast
                .iter()
                .zip(actual)
                .map(|(f, y)| (y - f).abs())
                .sum::<f64>()
                / denom
        }
        Metric::Msmape => {
            let mut acc = 0.0;
            for (f, y) in forecast.iter().zip(actual) {
                let denom = (y.abs() + f.abs() + MSMAPE_EPSILON).max(0.5 + MSMAPE_EPSILON) / 2.0;
                acc += (f - y).abs() / denom;
            }
            acc / h * 100.0
        }
        Metric::Mase => {
            let Some(train) = ctx.train else {
                return f64::NAN;
            };
            let s = ctx.period.max(1);
            if train.len() <= s {
                return f64::NAN;
            }
            let denom: f64 = (s..train.len())
                .map(|k| (train[k] - train[k - s]).abs())
                .sum::<f64>()
                / (train.len() - s) as f64;
            if denom < 1e-12 {
                return f64::INFINITY;
            }
            let mae = compute(Metric::Mae, forecast, actual, ctx);
            mae / denom
        }
    }
}

/// Computes a set of metrics at once, labelled.
pub fn compute_all(
    metrics: &[Metric],
    forecast: &[f64],
    actual: &[f64],
    ctx: MetricContext<'_>,
) -> Vec<(Metric, f64)> {
    metrics
        .iter()
        .map(|&m| (m, compute(m, forecast, actual, ctx)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX: MetricContext<'static> = MetricContext {
        train: None,
        period: 1,
    };

    #[test]
    fn mae_mse_rmse_known_values() {
        let f = [1.0, 2.0, 3.0];
        let y = [2.0, 2.0, 5.0];
        assert!((compute(Metric::Mae, &f, &y, CTX) - 1.0).abs() < 1e-12);
        assert!((compute(Metric::Mse, &f, &y, CTX) - 5.0 / 3.0).abs() < 1e-12);
        assert!((compute(Metric::Rmse, &f, &y, CTX) - (5.0_f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_forecast_scores_zero() {
        let y = [1.5, -2.0, 3.0];
        for m in [
            Metric::Mae,
            Metric::Mse,
            Metric::Rmse,
            Metric::Mape,
            Metric::Smape,
            Metric::Wape,
            Metric::Msmape,
        ] {
            assert_eq!(compute(m, &y, &y, CTX), 0.0, "{m:?}");
        }
    }

    #[test]
    fn mape_is_percentage() {
        let f = [110.0];
        let y = [100.0];
        assert!((compute(Metric::Mape, &f, &y, CTX) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mape_with_zero_actual_is_infinite() {
        assert!(compute(Metric::Mape, &[1.0], &[0.0], CTX).is_infinite());
    }

    #[test]
    fn smape_is_symmetric() {
        let a = compute(Metric::Smape, &[110.0], &[100.0], CTX);
        let b = compute(Metric::Smape, &[100.0], &[110.0], CTX);
        assert!((a - b).abs() < 1e-12);
        // |f-y| / ((|y|+|f|)/2) = 10 / 105 -> 9.52%
        assert!((a - 100.0 * 10.0 / 105.0).abs() < 1e-9);
    }

    #[test]
    fn wape_weights_by_actual_magnitude() {
        let f = [90.0, 9.0];
        let y = [100.0, 10.0];
        // (10 + 1) / 110 = 0.1
        assert!((compute(Metric::Wape, &f, &y, CTX) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn msmape_is_finite_at_zero() {
        let v = compute(Metric::Msmape, &[0.1], &[0.0], CTX);
        assert!(v.is_finite());
        // denom = max(0.1 + 0.1, 0.6)/2 = 0.3; 0.1/0.3*100 = 33.3%
        assert!((v - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mase_scales_by_seasonal_naive_error() {
        // Train: 0,1,0,1,... with period 2 -> in-sample seasonal diff = 0...
        // use period 1: successive diffs all 1.
        let train = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ctx = MetricContext {
            train: Some(&train),
            period: 1,
        };
        let v = compute(Metric::Mase, &[7.0], &[5.0], ctx);
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mase_without_train_is_nan() {
        assert!(compute(Metric::Mase, &[1.0], &[1.0], CTX).is_nan());
    }

    #[test]
    fn mase_constant_train_is_infinite() {
        let train = [3.0; 10];
        let ctx = MetricContext {
            train: Some(&train),
            period: 1,
        };
        assert!(compute(Metric::Mase, &[1.0], &[2.0], ctx).is_infinite());
    }

    #[test]
    fn empty_or_mismatched_inputs_are_nan() {
        assert!(compute(Metric::Mae, &[], &[], CTX).is_nan());
        assert!(compute(Metric::Mae, &[1.0], &[1.0, 2.0], CTX).is_nan());
    }

    #[test]
    fn labels_roundtrip() {
        for m in Metric::ALL {
            assert_eq!(Metric::parse(m.label()), Some(m));
        }
        assert_eq!(Metric::parse("MAE"), Some(Metric::Mae));
        assert_eq!(Metric::parse("nope"), None);
    }

    #[test]
    fn compute_all_covers_requested_metrics() {
        let out = compute_all(&Metric::ALL, &[1.0, 2.0], &[1.0, 2.0], CTX);
        assert_eq!(out.len(), 8);
    }
}

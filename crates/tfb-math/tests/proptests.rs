//! Property-based tests on the numeric substrate's algebraic guarantees.

use proptest::prelude::*;
use tfb_math::acf::{acf, acf_fft, pacf};
use tfb_math::eigen::symmetric_eigen;
use tfb_math::loess::loess_smooth;
use tfb_math::matrix::Matrix;
use tfb_math::stats::quantile;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0_f64..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qr_factors_reconstruct_and_q_is_orthonormal(m in matrix(6, 3)) {
        let (q, r) = m.qr().unwrap();
        let rec = q.matmul(&r).unwrap();
        for (a, b) in rec.data().iter().zip(m.data()) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
        let qtq = q.transpose().matmul(&q).unwrap();
        let eye = Matrix::identity(3);
        for (a, b) in qtq.data().iter().zip(eye.data()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
        // R is upper triangular.
        for i in 0..3 {
            for j in 0..i {
                prop_assert!(r[(i, j)].abs() < 1e-10);
            }
        }
    }

    #[test]
    fn symmetric_eigen_reconstructs(vals in proptest::collection::vec(-5.0_f64..5.0, 10)) {
        // Build a symmetric 4x4 from 10 free entries.
        let mut m = Matrix::zeros(4, 4);
        let mut it = vals.into_iter();
        for i in 0..4 {
            for j in i..4 {
                let v = it.next().unwrap();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        let e = symmetric_eigen(&m).unwrap();
        // V diag(L) V^T == M
        let mut diag = Matrix::zeros(4, 4);
        for i in 0..4 {
            diag[(i, i)] = e.values[i];
        }
        let rec = e.vectors.matmul(&diag).unwrap().matmul(&e.vectors.transpose()).unwrap();
        for (a, b) in rec.data().iter().zip(m.data()) {
            prop_assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()));
        }
        // Eigenvalues sorted descending.
        prop_assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn transpose_of_product_is_reversed_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn loess_stays_within_data_envelope(values in proptest::collection::vec(-100.0_f64..100.0, 10..80)) {
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Local-constant Loess is a convex combination of data points.
        let sm = loess_smooth(&values, 7, 0).unwrap();
        for v in sm {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn acf_is_bounded_and_one_at_lag_zero(values in proptest::collection::vec(-50.0_f64..50.0, 5..100)) {
        let r = acf(&values, values.len() / 2);
        prop_assert!((r[0] - 1.0).abs() < 1e-9 || r[0] == 0.0);
        for &v in &r {
            prop_assert!(v.abs() <= 1.0 + 1e-9, "{v}");
        }
    }

    #[test]
    fn acf_fft_matches_direct_acf(values in proptest::collection::vec(-50.0_f64..50.0, 2..200)) {
        // Wiener–Khinchin via the FFT must agree with the direct sums to
        // within rounding, including lags past the series length.
        let max_lag = values.len() + 3;
        let direct = acf(&values, max_lag);
        let fast = acf_fft(&values, max_lag);
        prop_assert_eq!(direct.len(), fast.len());
        for (k, (d, f)) in direct.iter().zip(&fast).enumerate() {
            prop_assert!((d - f).abs() < 1e-9, "lag {}: direct {} vs fft {}", k, d, f);
        }
    }

    #[test]
    fn pacf_values_are_bounded(values in proptest::collection::vec(-50.0_f64..50.0, 20..120)) {
        let p = pacf(&values, 8);
        for &v in &p {
            // Durbin-Levinson can slightly exceed 1 numerically on
            // degenerate inputs; it must never explode.
            prop_assert!(v.abs() <= 2.0, "{v}");
        }
    }

    #[test]
    fn quantiles_are_monotone(values in proptest::collection::vec(-100.0_f64..100.0, 1..60)) {
        let q25 = quantile(&values, 0.25).unwrap();
        let q50 = quantile(&values, 0.50).unwrap();
        let q75 = quantile(&values, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
    }
}

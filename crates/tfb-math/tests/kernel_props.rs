//! Property tests: every unrolled/AVX2 microkernel path is bit-for-bit
//! identical to the scalar reference on random shapes — including
//! non-multiple-of-4 tails, exact zeros (the GEMM zero-skip), and
//! non-finite right-hand values the skip semantics exist for.

use tfb_math::kernel::{self, KernelPath};
use tfb_math::Matrix;

/// xorshift64* — deterministic pseudo-random doubles with exact zeros
/// mixed in to exercise the zero-skip, plus occasional non-finite
/// right-hand values where allowed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn value(&mut self, with_zeros: bool) -> f64 {
        let v = self.next_u64();
        if with_zeros && v.is_multiple_of(7) {
            0.0
        } else {
            ((v >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        }
    }

    fn vec(&mut self, n: usize, with_zeros: bool) -> Vec<f64> {
        (0..n).map(|_| self.value(with_zeros)).collect()
    }
}

/// Every non-scalar path available on this machine.
fn alt_paths() -> Vec<KernelPath> {
    let mut paths = vec![KernelPath::Unrolled];
    if kernel::best_unrolled() == KernelPath::UnrolledAvx2 {
        paths.push(KernelPath::UnrolledAvx2);
    }
    paths
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Lengths straddling the 4-wide unroll: tails of 0..=3, tiny and
/// empty inputs, and lengths past the 128-wide GEMM k-tile.
const LENGTHS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 15, 31, 64, 100, 127, 128, 129, 300];

#[test]
fn dot_acc_matches_scalar_bitwise() {
    for &n in LENGTHS {
        let mut rng = Rng::new(n as u64 + 1);
        let x = rng.vec(n, true);
        let y = rng.vec(n, true);
        let init = rng.value(false);
        let want = kernel::with_path(KernelPath::Scalar, || kernel::dot_acc(init, &x, &y));
        for path in alt_paths() {
            let got = kernel::with_path(path, || kernel::dot_acc(init, &x, &y));
            assert_eq!(want.to_bits(), got.to_bits(), "dot_acc n={n} {path:?}");
        }
    }
}

#[test]
fn dot_skip_matches_scalar_bitwise_even_with_infinities() {
    for &n in LENGTHS {
        let mut rng = Rng::new(n as u64 + 17);
        let x = rng.vec(n, true);
        // Non-finite right-hand values paired with zero left-hand values
        // are exactly what the skip semantics protect: 0 * inf = NaN must
        // stay out of the sum on every path.
        let mut y = rng.vec(n, false);
        for (i, v) in y.iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = f64::INFINITY;
            }
        }
        let want = kernel::with_path(KernelPath::Scalar, || kernel::dot_skip(&x, &y));
        for path in alt_paths() {
            let got = kernel::with_path(path, || kernel::dot_skip(&x, &y));
            assert_eq!(want.to_bits(), got.to_bits(), "dot_skip n={n} {path:?}");
        }
    }
}

#[test]
fn axpy_matches_scalar_bitwise() {
    for &n in LENGTHS {
        let mut rng = Rng::new(n as u64 + 29);
        let x = rng.vec(n, true);
        let base = rng.vec(n, false);
        let a = rng.value(true);
        let mut want = base.clone();
        kernel::with_path(KernelPath::Scalar, || kernel::axpy(a, &x, &mut want));
        for path in alt_paths() {
            let mut got = base.clone();
            kernel::with_path(path, || kernel::axpy(a, &x, &mut got));
            assert_bits_eq(&want, &got, &format!("axpy n={n} {path:?}"));
        }
    }
}

#[test]
fn gemm_row_ktile_matches_scalar_bitwise() {
    // (depth, n) shapes: unroll tails in both the k and j dimensions,
    // plus zero-heavy tiles that force the block fallback.
    for &(depth, n) in &[
        (1usize, 1usize),
        (3, 5),
        (4, 4),
        (5, 9),
        (7, 3),
        (8, 16),
        (13, 11),
        (64, 2),
        (130, 33),
    ] {
        let mut rng = Rng::new((depth * 31 + n) as u64);
        let lhs = rng.vec(depth, true);
        let rhs = rng.vec(depth * n, true);
        let base = rng.vec(n, false);
        let mut want = base.clone();
        kernel::with_path(KernelPath::Scalar, || {
            kernel::gemm_row_ktile(&lhs, &rhs, n, &mut want)
        });
        for path in alt_paths() {
            let mut got = base.clone();
            kernel::with_path(path, || kernel::gemm_row_ktile(&lhs, &rhs, n, &mut got));
            assert_bits_eq(&want, &got, &format!("gemm_row_ktile {depth}x{n} {path:?}"));
        }
    }
}

#[test]
fn full_matmul_and_matvec_match_across_paths() {
    // End to end through Matrix: the blocked kernel, the transposed
    // single-column fast path, and matvec all dispatch through the
    // kernel module; every path must produce the same bytes.
    for &(m, k, n) in &[
        (3usize, 5usize, 4usize),
        (17, 130, 9),
        (40, 200, 1), // transposed dot fast path
        (16, 64, 2),
        (1, 301, 1),
        (33, 7, 13),
    ] {
        let mut rng = Rng::new((m * 1009 + k * 31 + n) as u64);
        let a = Matrix::from_vec(m, k, rng.vec(m * k, true)).unwrap();
        let b = Matrix::from_vec(k, n, rng.vec(k * n, true)).unwrap();
        let v = rng.vec(k, true);
        let want_mm = kernel::with_path(KernelPath::Scalar, || a.matmul(&b).unwrap());
        let want_mv = kernel::with_path(KernelPath::Scalar, || a.matvec(&v).unwrap());
        for path in alt_paths() {
            let got_mm = kernel::with_path(path, || a.matmul(&b).unwrap());
            let got_mv = kernel::with_path(path, || a.matvec(&v).unwrap());
            assert_bits_eq(
                want_mm.data(),
                got_mm.data(),
                &format!("matmul {m}x{k}x{n} {path:?}"),
            );
            assert_bits_eq(&want_mv, &got_mv, &format!("matvec {m}x{k} {path:?}"));
        }
    }
}

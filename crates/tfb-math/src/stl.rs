//! STL-style seasonal-trend decomposition using Loess.
//!
//! The TFB paper (Definitions 3 and 4) measures trend strength and
//! seasonality strength from the decomposition `X = T + S + R` produced by
//! STL. This module implements the inner loop of Cleveland et al.'s STL:
//! cycle-subseries Loess smoothing for the seasonal component, low-pass
//! filtering, and Loess trend smoothing, iterated to convergence. The outer
//! robustness loop is omitted (TFB's characteristics do not rely on it).

use crate::loess::{loess_smooth, moving_average};
use crate::{MathError, Result};

/// Result of a seasonal-trend decomposition: `series = trend + seasonal + remainder`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Long-run component.
    pub trend: Vec<f64>,
    /// Periodic component with the given period.
    pub seasonal: Vec<f64>,
    /// What is left.
    pub remainder: Vec<f64>,
    /// Period used.
    pub period: usize,
}

/// STL decomposition with period `period`.
///
/// Requires at least two full periods of data. For non-seasonal analysis use
/// [`trend_only`] instead.
pub fn stl(series: &[f64], period: usize) -> Result<Decomposition> {
    let n = series.len();
    if n == 0 {
        return Err(MathError::Empty);
    }
    if period < 2 {
        return Err(MathError::InvalidArgument("stl period must be >= 2"));
    }
    if n < 2 * period {
        return Err(MathError::InvalidArgument(
            "stl needs at least two full periods",
        ));
    }
    // Loess spans, following the STL defaults: seasonal smoother ~ 7 points
    // per cycle-subseries, trend span the smallest odd integer >=
    // 1.5 * period / (1 - 1.5/s_window).
    let s_window = 7usize;
    let t_window = {
        let raw = (1.5 * period as f64 / (1.0 - 1.5 / s_window as f64)).ceil() as usize;
        let odd = if raw.is_multiple_of(2) { raw + 1 } else { raw };
        odd.clamp(3, n)
    };

    let mut seasonal = vec![0.0; n];
    let mut trend = vec![0.0; n];
    let mut detrended = vec![0.0; n];
    let mut cycle_sub: Vec<Vec<f64>> = vec![Vec::with_capacity(n / period + 1); period];

    for _iter in 0..2 {
        // 1. Detrend.
        for t in 0..n {
            detrended[t] = series[t] - trend[t];
        }
        // 2. Cycle-subseries smoothing.
        for sub in cycle_sub.iter_mut() {
            sub.clear();
        }
        for (t, &v) in detrended.iter().enumerate() {
            cycle_sub[t % period].push(v);
        }
        let mut smoothed_sub: Vec<Vec<f64>> = Vec::with_capacity(period);
        for sub in &cycle_sub {
            if sub.len() >= 2 {
                smoothed_sub.push(loess_smooth(sub, s_window.min(sub.len()), 1)?);
            } else {
                smoothed_sub.push(sub.clone());
            }
        }
        let mut c = vec![0.0; n];
        let mut counters = vec![0usize; period];
        for (t, cv) in c.iter_mut().enumerate() {
            let phase = t % period;
            *cv = smoothed_sub[phase][counters[phase]];
            counters[phase] += 1;
        }
        // 3. Low-pass filter of the cycle-subseries output: MA(period) twice
        //    then a short Loess, approximated here by MA(period) + MA(3).
        let low = moving_average(&moving_average(&c, period)?, 3.min(n))?;
        // 4. Seasonal = smoothed cycle-subseries minus its low-pass part.
        for t in 0..n {
            seasonal[t] = c[t] - low[t];
        }
        // 5. Deseasonalize and smooth for the trend.
        let deseason: Vec<f64> = series.iter().zip(&seasonal).map(|(x, s)| x - s).collect();
        trend = loess_smooth(&deseason, t_window, 1)?;
    }

    let remainder: Vec<f64> = (0..n).map(|t| series[t] - trend[t] - seasonal[t]).collect();
    Ok(Decomposition {
        trend,
        seasonal,
        remainder,
        period,
    })
}

/// Trend-plus-remainder decomposition for non-seasonal series: the seasonal
/// component is identically zero and the trend is a Loess smooth whose span
/// is ~ n/4 (at least 5 points).
pub fn trend_only(series: &[f64]) -> Result<Decomposition> {
    let n = series.len();
    if n == 0 {
        return Err(MathError::Empty);
    }
    let span = (n / 4).clamp(5.min(n.max(2)), n.max(2));
    let trend = loess_smooth(series, span, 1)?;
    let remainder: Vec<f64> = series.iter().zip(&trend).map(|(x, t)| x - t).collect();
    Ok(Decomposition {
        trend,
        seasonal: vec![0.0; n],
        remainder,
        period: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize, period: usize, trend_slope: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|t| {
                trend_slope * t as f64
                    + amp * (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin()
            })
            .collect()
    }

    #[test]
    fn stl_recovers_seasonal_amplitude() {
        let series = synth(240, 12, 0.05, 3.0);
        let d = stl(&series, 12).unwrap();
        let s_max = d.seasonal.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
        assert!((s_max - 3.0).abs() < 0.8, "seasonal amplitude {s_max}");
        // Remainder should be small relative to the signal.
        let r_rms = (d.remainder.iter().map(|v| v * v).sum::<f64>() / 240.0).sqrt();
        assert!(r_rms < 0.5, "remainder rms {r_rms}");
    }

    #[test]
    fn stl_trend_tracks_linear_growth() {
        let series = synth(240, 12, 0.1, 1.0);
        let d = stl(&series, 12).unwrap();
        // Interior trend slope should be ~0.1.
        let slope = (d.trend[200] - d.trend[40]) / 160.0;
        assert!((slope - 0.1).abs() < 0.03, "slope {slope}");
    }

    #[test]
    fn stl_reconstruction_is_exact() {
        let series = synth(120, 12, 0.2, 2.0);
        let d = stl(&series, 12).unwrap();
        for t in 0..120 {
            let rec = d.trend[t] + d.seasonal[t] + d.remainder[t];
            assert!((rec - series[t]).abs() < 1e-9);
        }
    }

    #[test]
    fn stl_rejects_too_short_series() {
        assert!(stl(&[1.0; 10], 12).is_err());
        assert!(stl(&[1.0; 10], 1).is_err());
        assert!(stl(&[], 4).is_err());
    }

    #[test]
    fn trend_only_on_line_is_the_line() {
        let series: Vec<f64> = (0..60).map(|t| 1.5 * t as f64).collect();
        let d = trend_only(&series).unwrap();
        for t in 5..55 {
            assert!((d.trend[t] - series[t]).abs() < 1e-6);
        }
        assert!(d.seasonal.iter().all(|&s| s == 0.0));
    }
}

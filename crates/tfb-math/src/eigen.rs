//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Used by [`crate::pca`] (covariance matrices are symmetric PSD) and by the
//! correlation characteristic.

use crate::matrix::Matrix;
use crate::{MathError, Result};

/// Eigenvalues and eigenvectors of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues sorted descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, matching `values` order.
    pub vectors: Matrix,
}

/// Computes all eigenpairs of a symmetric matrix with the cyclic Jacobi
/// rotation method. The upper triangle is trusted; asymmetry beyond
/// rounding noise is rejected.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    let n = a.rows();
    if n != a.cols() {
        return Err(MathError::DimensionMismatch {
            context: "symmetric_eigen",
        });
    }
    if n == 0 {
        return Err(MathError::Empty);
    }
    let scale = a.frobenius_norm().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * scale {
                return Err(MathError::InvalidArgument(
                    "symmetric_eigen requires a symmetric matrix",
                ));
            }
        }
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract eigenvalues and sort descending.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-9);
        assert!((e.values[1] - 2.0).abs() < 1e-9);
        assert!((e.values[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_satisfies_av_equals_lambda_v() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 1.0, 0.5, 1.0, 2.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        for k in 0..3 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v).unwrap();
            for i in 0..3 {
                assert!(
                    (av[i] - e.values[k] * v[i]).abs() < 1e-8,
                    "pair {k} component {i}"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        let eye = Matrix::identity(2);
        for (x, y) in vtv.data().iter().zip(eye.data()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 4.0, 0.5, 1.0, 0.5, 3.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-9);
    }

    #[test]
    fn rejects_asymmetric_input() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 1.0]).unwrap();
        assert!(symmetric_eigen(&a).is_err());
    }
}

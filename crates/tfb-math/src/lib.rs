//! Numeric substrate for the TFB benchmark.
//!
//! Everything in this crate is implemented from scratch on top of `std`:
//! dense linear algebra ([`matrix::Matrix`]), least squares
//! ([`regression`]), fast Fourier transforms ([`fft`]), Loess smoothing and
//! STL-style seasonal decomposition ([`loess`], [`stl`]), descriptive
//! statistics ([`stats`]), autocorrelation ([`acf`]), symmetric
//! eigendecomposition ([`eigen`]) and principal component analysis
//! ([`pca`]).
//!
//! The crate deliberately has no third-party dependencies so that the rest
//! of the workspace rests on a fully auditable numeric base.

// Dense numeric kernels index by position on purpose: the index
// arithmetic *is* the algorithm (GEMM, filters, recursions), and iterator
// rewrites obscure it.
#![allow(clippy::needless_range_loop)]
pub mod acf;
pub mod eigen;
pub mod fft;
pub mod kernel;
pub mod loess;
pub mod matrix;
pub mod pca;
pub mod regression;
pub mod stats;
pub mod stl;

pub use matrix::Matrix;

/// Error type shared by the numeric routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MathError {
    /// Operand shapes are incompatible (e.g. matrix product of 2x3 by 2x2).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
    },
    /// A factorization failed because the input is singular (or numerically
    /// indistinguishable from singular).
    Singular,
    /// The input is empty where a non-empty sequence is required.
    Empty,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence,
    /// A parameter is outside its legal range.
    InvalidArgument(&'static str),
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch in {context}")
            }
            MathError::Singular => write!(f, "matrix is singular"),
            MathError::Empty => write!(f, "empty input"),
            MathError::NoConvergence => write!(f, "iteration failed to converge"),
            MathError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for MathError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MathError>;

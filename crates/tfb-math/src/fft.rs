//! Fast Fourier transforms: iterative radix-2 for power-of-two lengths and
//! Bluestein's algorithm for arbitrary lengths, plus a periodogram helper
//! used by seasonality detection and the FEDformer-style frequency models.

use crate::{MathError, Result};

/// A complex number; kept minimal on purpose (only what the FFT needs).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{i theta}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `xs.len()` must be a power of two. `inverse` selects the inverse
/// transform (including the 1/n scaling).
pub fn fft_pow2(xs: &mut [Complex], inverse: bool) -> Result<()> {
    let n = xs.len();
    if n == 0 {
        return Err(MathError::Empty);
    }
    if !n.is_power_of_two() {
        return Err(MathError::InvalidArgument("fft_pow2 length must be 2^k"));
    }
    tfb_obs::counter!("fft/calls").add(1);
    tfb_obs::counter!("fft/points").add(n as u64);
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            xs.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in xs.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in xs.iter_mut() {
            *x = *x * inv_n;
        }
    }
    Ok(())
}

/// FFT of arbitrary length via Bluestein's chirp-z transform (falls back to
/// the radix-2 path when the length is a power of two).
pub fn fft(xs: &[Complex], inverse: bool) -> Result<Vec<Complex>> {
    let n = xs.len();
    if n == 0 {
        return Err(MathError::Empty);
    }
    if n.is_power_of_two() {
        let mut buf = xs.to_vec();
        fft_pow2(&mut buf, inverse)?;
        return Ok(buf);
    }
    // Bluestein: x_k * e^{+/- i pi k^2 / n} convolved with a chirp.
    let sign = if inverse { 1.0 } else { -1.0 };
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::default(); m];
    let mut b = vec![Complex::default(); m];
    let mut chirp = vec![Complex::default(); n];
    for k in 0..n {
        // k^2 mod 2n avoids precision loss for large k.
        let kk = (k as u64 * k as u64) % (2 * n as u64);
        let theta = sign * std::f64::consts::PI * kk as f64 / n as f64;
        chirp[k] = Complex::cis(theta);
        a[k] = xs[k] * chirp[k];
        b[k] = chirp[k].conj();
        if k > 0 {
            b[m - k] = chirp[k].conj();
        }
    }
    fft_pow2(&mut a, false)?;
    fft_pow2(&mut b, false)?;
    for i in 0..m {
        a[i] = a[i] * b[i];
    }
    fft_pow2(&mut a, true)?;
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        out.push(a[k] * chirp[k]);
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in out.iter_mut() {
            *x = *x * inv_n;
        }
    }
    Ok(out)
}

/// Real-input FFT convenience wrapper.
pub fn rfft(xs: &[f64]) -> Result<Vec<Complex>> {
    let buf: Vec<Complex> = xs.iter().map(|&v| Complex::new(v, 0.0)).collect();
    fft(&buf, false)
}

/// Inverse FFT returning only real parts (caller asserts the spectrum is
/// conjugate-symmetric).
pub fn irfft(spectrum: &[Complex]) -> Result<Vec<f64>> {
    Ok(fft(spectrum, true)?.into_iter().map(|c| c.re).collect())
}

/// Periodogram: squared spectral magnitude at frequencies `1..n/2`,
/// indexed from lag-1 (the DC component is dropped).
pub fn periodogram(xs: &[f64]) -> Result<Vec<f64>> {
    let spec = rfft(xs)?;
    let half = xs.len() / 2;
    Ok(spec[1..=half.max(1).min(spec.len() - 1)]
        .iter()
        .map(|c| c.norm_sqr())
        .collect())
}

/// Estimates the dominant period of a series from its periodogram.
///
/// Returns `None` when the series is too short or has a flat spectrum.
pub fn dominant_period(xs: &[f64]) -> Option<usize> {
    if xs.len() < 8 {
        return None;
    }
    // Detrend by removing the mean so the DC leakage does not dominate.
    let m = crate::stats::mean(xs);
    let centered: Vec<f64> = xs.iter().map(|v| v - m).collect();
    let pg = periodogram(&centered).ok()?;
    let (best_idx, best_val) = pg
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
    let total: f64 = pg.iter().sum();
    if total < 1e-300 || *best_val / total < 0.05 {
        return None;
    }
    let freq = best_idx + 1; // periodogram starts at frequency 1
    let period = xs.len() / freq;
    if period >= 2 && period <= xs.len() / 2 {
        Some(period)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn fft_roundtrip_pow2() {
        let xs: Vec<Complex> = (0..16).map(|i| Complex::new(i as f64, 0.0)).collect();
        let spec = fft(&xs, false).unwrap();
        let back = fft(&spec, true).unwrap();
        for (a, b) in back.iter().zip(&xs) {
            assert_close(a.re, b.re, 1e-9);
            assert_close(a.im, b.im, 1e-9);
        }
    }

    #[test]
    fn fft_roundtrip_arbitrary_length() {
        let xs: Vec<Complex> = (0..13)
            .map(|i| Complex::new((i as f64).sin(), 0.0))
            .collect();
        let spec = fft(&xs, false).unwrap();
        let back = fft(&spec, true).unwrap();
        for (a, b) in back.iter().zip(&xs) {
            assert_close(a.re, b.re, 1e-9);
            assert_close(a.im, b.im, 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut xs = vec![Complex::default(); 8];
        xs[0] = Complex::new(1.0, 0.0);
        let spec = fft(&xs, false).unwrap();
        for c in spec {
            assert_close(c.re, 1.0, 1e-12);
            assert_close(c.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_matches_dft_small_case() {
        let xs: Vec<Complex> = [1.0, 2.0, -1.0, 3.0, 0.5]
            .iter()
            .map(|&v| Complex::new(v, 0.0))
            .collect();
        let spec = fft(&xs, false).unwrap();
        let n = xs.len();
        for k in 0..n {
            let mut acc = Complex::default();
            for (t, x) in xs.iter().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                acc = acc + *x * Complex::cis(theta);
            }
            assert_close(spec[k].re, acc.re, 1e-9);
            assert_close(spec[k].im, acc.im, 1e-9);
        }
    }

    #[test]
    fn dominant_period_of_sine() {
        let xs: Vec<f64> = (0..240)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 24.0).sin())
            .collect();
        assert_eq!(dominant_period(&xs), Some(24));
    }

    #[test]
    fn dominant_period_of_noiseless_constant_is_none() {
        let xs = vec![3.0; 64];
        assert_eq!(dominant_period(&xs), None);
    }

    #[test]
    fn fft_rejects_empty() {
        assert!(fft(&[], false).is_err());
    }
}

//! Dense row-major matrices with the factorizations the rest of the
//! workspace needs: LU with partial pivoting, Cholesky, and Householder QR.

use crate::{kernel, MathError, Result};

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns [`MathError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::from_vec",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// Returns an error if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(MathError::Empty);
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::from_rows",
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`, cache-blocked.
    ///
    /// Uses a tiled ikj kernel (k-tiles keep the active slab of `rhs` hot
    /// in cache across output rows) with a transposed-`rhs` dot-product
    /// fast path for deep single-column products, where there is no output
    /// row to tile over. Both kernels accumulate each output element over
    /// `k` in ascending order and skip zero left-hand terms, so every
    /// shape produces the same result to the last bit.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch { context: "matmul" });
        }
        tfb_obs::counter!("gemm/calls").add(1);
        tfb_obs::counter!("gemm/flops_est").add(2 * (self.rows * self.cols * rhs.cols) as u64);
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        if use_transposed_kernel(self.rows, self.cols, rhs.cols) {
            let bt = rhs.transpose();
            mul_rows_transposed(&self.data, self.cols, &bt.data, 0, &mut out.data);
        } else {
            mul_rows_blocked(&self.data, self.cols, &rhs.data, rhs.cols, 0, &mut out.data);
        }
        Ok(out)
    }

    /// Matrix product `self * rhs`, splitting output row blocks across
    /// scoped threads when the work is large enough to amortize spawning.
    ///
    /// Output rows are independent, so every row block is computed by the
    /// same kernel as [`Matrix::matmul`] and the result is bit-identical
    /// to the single-threaded product. Small products fall back to
    /// [`Matrix::matmul`] directly.
    pub fn par_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch { context: "matmul" });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        par_gemm(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(MathError::DimensionMismatch { context: "matvec" });
        }
        tfb_obs::counter!("gemm/matvec_calls").add(1);
        Ok((0..self.rows)
            .map(|i| kernel::dot_acc(0.0, self.row(i), v))
            .collect())
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(MathError::DimensionMismatch { context: "add" });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(MathError::DimensionMismatch { context: "sub" });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// LU decomposition with partial pivoting.
    pub fn lu(&self) -> Result<Lu> {
        if self.rows != self.cols {
            return Err(MathError::DimensionMismatch { context: "lu" });
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot selection.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-13 {
                return Err(MathError::Singular);
            }
            if p != k {
                for j in 0..n {
                    lu.data.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let f = lu[(i, k)] / pivot;
                lu[(i, k)] = f;
                for j in (k + 1)..n {
                    let v = lu[(k, j)];
                    lu[(i, j)] -= f * v;
                }
            }
        }
        Ok(Lu { lu, piv, sign })
    }

    /// Solves `self * x = b` via LU decomposition.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }

    /// Solves `self * X = B` for a matrix right-hand side.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let lu = self.lu()?;
        let mut out = Matrix::zeros(b.rows, b.cols);
        for j in 0..b.cols {
            let col = b.col(j);
            let x = lu.solve(&col)?;
            for i in 0..b.rows {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Matrix inverse via LU decomposition.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.rows))
    }

    /// Determinant via LU decomposition. Returns 0.0 for singular inputs.
    pub fn det(&self) -> f64 {
        match self.lu() {
            Ok(lu) => {
                let n = self.rows;
                let mut d = lu.sign;
                for i in 0..n {
                    d *= lu.lu[(i, i)];
                }
                d
            }
            Err(_) => 0.0,
        }
    }

    /// Cholesky factor `L` with `self = L * L^T`.
    ///
    /// `self` must be symmetric positive definite; the upper triangle is
    /// ignored.
    pub fn cholesky(&self) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(MathError::DimensionMismatch {
                context: "cholesky",
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(MathError::Singular);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> f64 {
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Householder QR decomposition of a (possibly tall) matrix.
    ///
    /// Returns `(Q, R)` in the thin form: `Q` is `rows x cols` with
    /// orthonormal columns and `R` is `cols x cols` upper triangular, so
    /// `self = Q * R`. Requires `rows >= cols`.
    pub fn qr(&self) -> Result<(Matrix, Matrix)> {
        let (m, n) = (self.rows, self.cols);
        if m < n {
            return Err(MathError::DimensionMismatch { context: "qr" });
        }
        let mut r = self.clone();
        // Accumulate Q as a product of Householder reflectors applied to I.
        let mut q = Matrix::identity(m);
        let mut v = vec![0.0; m];
        for k in 0..n {
            // Build the Householder vector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut vnorm2 = 0.0;
            for i in k..m {
                v[i] = r[(i, k)];
                if i == k {
                    v[i] -= alpha;
                }
                vnorm2 += v[i] * v[i];
            }
            if vnorm2 < 1e-300 {
                continue;
            }
            // Apply (I - 2 v v^T / v^T v) to R from the left.
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * r[(i, j)];
                }
                let f = 2.0 * dot / vnorm2;
                for i in k..m {
                    r[(i, j)] -= f * v[i];
                }
            }
            // Apply to Q from the right: Q <- Q (I - 2 v v^T / v^T v).
            for irow in 0..m {
                let mut dot = 0.0;
                for i in k..m {
                    dot += q[(irow, i)] * v[i];
                }
                let f = 2.0 * dot / vnorm2;
                for i in k..m {
                    q[(irow, i)] -= f * v[i];
                }
            }
        }
        // Thin factors.
        let mut q_thin = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                q_thin[(i, j)] = q[(i, j)];
            }
        }
        let mut r_thin = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r_thin[(i, j)] = r[(i, j)];
            }
        }
        Ok((q_thin, r_thin))
    }
}

/// k-tile width of the blocked kernel: 128 columns of the left operand
/// (one k-slab of `rhs` is then 128 rows, which stays L2-resident for the
/// output widths the evaluation engine produces).
const MATMUL_K_TILE: usize = 128;

/// Below this many multiply-adds, thread spawn overhead beats the speedup.
const PAR_MATMUL_MIN_FLOPS: usize = 1 << 20;

/// Cached machine parallelism. `available_parallelism` is a syscall; hot
/// paths issuing many small products must not pay it per call.
fn worker_count() -> usize {
    use std::sync::OnceLock;
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The blocked ikj kernel's inner loop updates a whole output row with
/// independent accumulators, so it vectorizes without reassociating the
/// `k` reduction; the transposed dot kernel instead carries one serial
/// accumulator whose add-latency chain caps throughput. The dot kernel
/// therefore only wins for column outputs (deep reductions into a single
/// column), where the ikj inner loop degenerates to the same chain but
/// with extra per-`k` row indexing on top.
#[inline]
fn use_transposed_kernel(_rows: usize, depth: usize, out_cols: usize) -> bool {
    out_cols == 1 && depth >= 64
}

/// Row-parallel GEMM over raw row-major slices: writes `lhs * rhs` into
/// `out` (`rows` × `out_cols`, pre-zeroed), where `lhs` is `rows` ×
/// `depth` and `rhs` is `depth` × `out_cols`.
///
/// Splits output row blocks across scoped threads when the product is
/// large enough to amortize spawning; every block runs the same kernel
/// as [`Matrix::matmul`], so the result is bit-identical to the
/// single-threaded product at any worker count. This is the entry point
/// for callers that keep their own flat buffers (the autodiff tape's
/// batched forward) and do not want to round-trip through [`Matrix`].
pub fn par_gemm(
    lhs: &[f64],
    rows: usize,
    depth: usize,
    rhs: &[f64],
    out_cols: usize,
    out: &mut [f64],
) {
    assert_eq!(lhs.len(), rows * depth, "par_gemm lhs shape");
    assert_eq!(rhs.len(), depth * out_cols, "par_gemm rhs shape");
    assert_eq!(out.len(), rows * out_cols, "par_gemm out shape");
    tfb_obs::counter!("gemm/calls").add(1);
    tfb_obs::counter!("gemm/flops_est").add(2 * (rows * depth * out_cols) as u64);
    let flops = rows * depth * out_cols;
    let transposed = use_transposed_kernel(rows, depth, out_cols);
    let bt = if transposed {
        let mut t = vec![0.0; rhs.len()];
        for k in 0..depth {
            for j in 0..out_cols {
                t[j * depth + k] = rhs[k * out_cols + j];
            }
        }
        Some(t)
    } else {
        None
    };
    // The flop gate comes first: small products (the per-window forward
    // path) must not pay even the worker-count lookup.
    let workers = if flops < PAR_MATMUL_MIN_FLOPS {
        1
    } else {
        worker_count().min(rows.max(1))
    };
    if workers < 2 {
        match &bt {
            Some(bt) => mul_rows_transposed(lhs, depth, bt, 0, out),
            None => mul_rows_blocked(lhs, depth, rhs, out_cols, 0, out),
        }
        return;
    }
    let rows_per_worker = rows.div_ceil(workers);
    std::thread::scope(|scope| {
        for (block, chunk) in out.chunks_mut(rows_per_worker * out_cols).enumerate() {
            let row_start = block * rows_per_worker;
            let bt = bt.as_deref();
            scope.spawn(move || match bt {
                Some(bt) => mul_rows_transposed(lhs, depth, bt, row_start, chunk),
                None => mul_rows_blocked(lhs, depth, rhs, out_cols, row_start, chunk),
            });
        }
    });
}

/// Blocked ikj kernel computing output rows `row_start..` of `lhs * rhs`
/// into `out_rows` (a row-major slab of full output rows). `lhs` has
/// `depth` columns, `rhs` has `n` columns.
///
/// For every output element the reduction over `k` runs in ascending
/// order (tiles ascend, `k` ascends within a tile), matching the plain
/// ikj kernel bit-for-bit. Zero left-hand terms are skipped, which keeps
/// the historical semantics for non-finite right-hand values.
fn mul_rows_blocked(
    lhs: &[f64],
    depth: usize,
    rhs: &[f64],
    n: usize,
    row_start: usize,
    out_rows: &mut [f64],
) {
    if n == 0 {
        return;
    }
    let nrows = out_rows.len() / n;
    for k_tile in (0..depth).step_by(MATMUL_K_TILE) {
        let k_end = (k_tile + MATMUL_K_TILE).min(depth);
        for ii in 0..nrows {
            let i = row_start + ii;
            let lhs_row = &lhs[i * depth..(i + 1) * depth];
            let out_row = &mut out_rows[ii * n..(ii + 1) * n];
            kernel::gemm_row_ktile(
                &lhs_row[k_tile..k_end],
                &rhs[k_tile * n..k_end * n],
                n,
                out_row,
            );
        }
    }
}

/// Dot-product kernel over a pre-transposed right operand (`bt` is
/// `n` × `depth` row-major). Used for deep single-column products where
/// the blocked kernel has no output row to vectorize over. Accumulation
/// order and the zero-skip match [`mul_rows_blocked`] exactly.
fn mul_rows_transposed(
    lhs: &[f64],
    depth: usize,
    bt: &[f64],
    row_start: usize,
    out_rows: &mut [f64],
) {
    let Some(n) = bt.len().checked_div(depth) else {
        return;
    };
    if n == 0 {
        return;
    }
    let nrows = out_rows.len() / n;
    for ii in 0..nrows {
        let i = row_start + ii;
        let lhs_row = &lhs[i * depth..(i + 1) * depth];
        let out_row = &mut out_rows[ii * n..(ii + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let bt_row = &bt[j * depth..(j + 1) * depth];
            *o = kernel::dot_skip(lhs_row, bt_row);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// LU factorization with partial pivoting, produced by [`Matrix::lu`].
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    piv: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Solves `A x = b` for the factored `A`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(MathError::DimensionMismatch {
                context: "Lu::solve",
            });
        }
        // Apply the row permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            for j in 0..i {
                x[i] -= self.lu[(i, j)] * x[j];
            }
        }
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                x[i] -= self.lu[(i, j)] * x[j];
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn identity_matmul_is_identity() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    /// Reference kernel: the plain ikj product the seed shipped with.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let v = a[(i, k)];
                if v == 0.0 {
                    continue;
                }
                for j in 0..b.cols() {
                    out[(i, j)] += v * b[(k, j)];
                }
            }
        }
        out
    }

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Mix in exact zeros to exercise the zero-skip.
                if state.is_multiple_of(11) {
                    0.0
                } else {
                    ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive() {
        // Shapes straddling the k-tile width and the transposed-path gate.
        for &(m, k, n) in &[
            (3usize, 5usize, 4usize),
            (17, 130, 9),  // k crosses the 128-wide tile boundary
            (40, 200, 12), // tall×deep: transposed fast path
            (16, 64, 2),   // exactly at the fast-path gate
            (1, 300, 1),
            (64, 1, 64),
        ] {
            let a = pseudo_random_matrix(m, k, (m * k) as u64);
            let b = pseudo_random_matrix(k, n, (k * n + 7) as u64);
            let fast = a.matmul(&b).unwrap();
            let slow = naive_matmul(&a, &b);
            assert_eq!(fast.data(), slow.data(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn par_matmul_is_bit_identical_to_matmul() {
        // Big enough to clear the parallel threshold (160*160*160 > 2^20).
        for &(m, k, n) in &[(160usize, 160usize, 160usize), (500, 80, 40), (7, 9, 8)] {
            let a = pseudo_random_matrix(m, k, 3);
            let b = pseudo_random_matrix(k, n, 4);
            let par = a.par_matmul(&b).unwrap();
            let seq = a.matmul(&b).unwrap();
            assert_eq!(par.data(), seq.data(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn par_matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(4, 5);
        assert!(a.par_matmul(&b).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn lu_solve_recovers_solution() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 2.0, 1.0, 5.0, 1.0, 2.0, 1.0, 6.0]).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert_close(*xi, *ti, 1e-10);
        }
    }

    #[test]
    fn singular_matrix_solve_fails() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(a.solve(&[1.0, 1.0]), Err(MathError::Singular));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_vec(3, 3, vec![2.0, 0.0, 1.0, 1.0, 3.0, 2.0, 1.0, 1.0, 4.0]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let eye = Matrix::identity(3);
        for (p, e) in prod.data().iter().zip(eye.data()) {
            assert_close(*p, *e, 1e-10);
        }
    }

    #[test]
    fn det_of_triangular_is_diagonal_product() {
        let a = Matrix::from_vec(3, 3, vec![2.0, 1.0, 4.0, 0.0, 3.0, 5.0, 0.0, 0.0, 7.0]).unwrap();
        assert_close(a.det(), 42.0, 1e-9);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0]).unwrap();
        let l = a.cholesky().unwrap();
        let rec = l.matmul(&l.transpose()).unwrap();
        for (x, y) in rec.data().iter().zip(a.data()) {
            assert_close(*x, *y, 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let a = Matrix::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0]).unwrap();
        let (q, r) = a.qr().unwrap();
        let rec = q.matmul(&r).unwrap();
        for (x, y) in rec.data().iter().zip(a.data()) {
            assert_close(*x, *y, 1e-9);
        }
        // Columns of Q orthonormal.
        let qtq = q.transpose().matmul(&q).unwrap();
        let eye = Matrix::identity(2);
        for (x, y) in qtq.data().iter().zip(eye.data()) {
            assert_close(*x, *y, 1e-9);
        }
    }

    #[test]
    fn trace_and_norm() {
        let a = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        assert_close(a.trace(), 7.0, 1e-12);
        assert_close(a.frobenius_norm(), 5.0, 1e-12);
    }

    #[test]
    fn from_rows_validates_shapes() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }
}

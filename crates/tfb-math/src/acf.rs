//! Autocorrelation and partial autocorrelation functions.
//!
//! These drive the ARIMA estimators, the transition characteristic's
//! `firstzero_ac` downsampling stride (Algorithm 2 in the paper), and a
//! number of catch22 features.

use crate::fft::{fft_pow2, Complex};
use crate::stats::{mean, variance};

/// Series at least this long compute whole-ACF quantities through the FFT
/// (O(n log n)) instead of the direct O(n·lags) sums; below it the direct
/// path's constant factor wins.
const FFT_ACF_MIN_LEN: usize = 64;

/// Autocovariance at lag `k` (population scaling, divides by `n`).
pub fn autocovariance(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if n == 0 || k >= n {
        return 0.0;
    }
    let m = mean(xs);
    let mut acc = 0.0;
    for t in 0..(n - k) {
        acc += (xs[t] - m) * (xs[t + k] - m);
    }
    acc / n as f64
}

/// Autocorrelation at lag `k`. Zero-variance input yields 0.0.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    let v = variance(xs);
    if v < 1e-300 {
        return 0.0;
    }
    autocovariance(xs, k) / v
}

/// The full autocorrelation function for lags `0..=max_lag`, computed by
/// direct summation (the reference implementation — see [`acf_fft`] for
/// the O(n log n) path).
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    (0..=max_lag).map(|k| autocorrelation(xs, k)).collect()
}

/// The full autocorrelation function for lags `0..=max_lag` via the FFT.
///
/// Uses the Wiener–Khinchin identity: zero-pad the centered series to a
/// power of two at least `2n`, take the power spectrum, and transform
/// back; the leading `n` outputs are the raw lagged products
/// `Σ_t (x_t−μ)(x_{t+k}−μ)`, normalized here by `n·variance` to match
/// [`acf`]'s population scaling. Agrees with the direct sums to within
/// FFT rounding (~1e-12 relative); edge semantics match [`acf`] exactly:
/// zero-variance or empty input yields all zeros, and lags `k >= n`
/// yield 0.0.
pub fn acf_fft(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    let v = variance(xs);
    if n == 0 || v < 1e-300 {
        return vec![0.0; max_lag + 1];
    }
    let m = (2 * n).next_power_of_two();
    let mu = mean(xs);
    let mut buf = vec![Complex::default(); m];
    for (b, &x) in buf.iter_mut().zip(xs) {
        b.re = x - mu;
    }
    fft_pow2(&mut buf, false).expect("padded length is a power of two");
    for b in buf.iter_mut() {
        *b = Complex::new(b.norm_sqr(), 0.0);
    }
    fft_pow2(&mut buf, true).expect("padded length is a power of two");
    let denom = n as f64 * v;
    (0..=max_lag)
        .map(|k| if k >= n { 0.0 } else { buf[k].re / denom })
        .collect()
}

/// Lag of the first zero crossing of the ACF (`firstzero_ac` in catch22).
///
/// Returns the smallest `k >= 1` with `acf(k) <= 0`; if the ACF never
/// crosses zero within `n - 1` lags, returns `n - 1`. Returns 1 for inputs
/// shorter than 2 points.
///
/// Long series go through [`acf_fft`], turning the historical O(n²)
/// worst case (trend-dominated series whose ACF stays positive for a
/// long time) into O(n log n).
pub fn first_zero_crossing(xs: &[f64]) -> usize {
    let n = xs.len();
    if n < 2 {
        return 1;
    }
    if n >= FFT_ACF_MIN_LEN {
        let r = acf_fft(xs, n - 1);
        for (k, &v) in r.iter().enumerate().skip(1) {
            if v <= 0.0 {
                return k;
            }
        }
        return n - 1;
    }
    for k in 1..n {
        if autocorrelation(xs, k) <= 0.0 {
            return k;
        }
    }
    n - 1
}

/// Partial autocorrelation function via the Durbin–Levinson recursion,
/// for lags `1..=max_lag`.
pub fn pacf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let r = acf(xs, max_lag);
    let mut out = Vec::with_capacity(max_lag);
    if max_lag == 0 {
        return out;
    }
    // phi[k][j] = phi_{k,j}; we only keep the previous row.
    let mut prev = vec![0.0; max_lag + 1];
    let mut cur = vec![0.0; max_lag + 1];
    prev[1] = r[1];
    out.push(r[1]);
    for k in 2..=max_lag {
        let mut num = r[k];
        let mut den = 1.0;
        for j in 1..k {
            num -= prev[j] * r[k - j];
            den -= prev[j] * r[j];
        }
        let phi_kk = if den.abs() < 1e-300 { 0.0 } else { num / den };
        for j in 1..k {
            cur[j] = prev[j] - phi_kk * prev[k - j];
        }
        cur[k] = phi_kk;
        out.push(phi_kk);
        std::mem::swap(&mut prev, &mut cur);
    }
    out
}

/// Differencing operator: `y[t] = x[t] - x[t-1]`, applied `d` times.
pub fn difference(xs: &[f64], d: usize) -> Vec<f64> {
    let mut cur = xs.to_vec();
    for _ in 0..d {
        if cur.len() < 2 {
            return Vec::new();
        }
        cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
    }
    cur
}

/// Seasonal differencing: `y[t] = x[t] - x[t-s]`.
pub fn seasonal_difference(xs: &[f64], s: usize) -> Vec<f64> {
    if s == 0 || xs.len() <= s {
        return Vec::new();
    }
    (s..xs.len()).map(|t| xs[t] - xs[t - s]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acf_lag_zero_is_one() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_of_alternating_series_is_negative_at_lag_one() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
    }

    #[test]
    fn first_zero_crossing_of_sine_is_near_quarter_period() {
        let period = 40.0;
        let xs: Vec<f64> = (0..400)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period).sin())
            .collect();
        let z = first_zero_crossing(&xs);
        assert!((9..=11).contains(&z), "got {z}");
    }

    #[test]
    fn acf_fft_matches_direct_acf() {
        let xs: Vec<f64> = (0..257)
            .map(|i| {
                let t = i as f64;
                (t / 9.0).sin() + 0.01 * t + ((t * 16807.0) % 1.0 - 0.5)
            })
            .collect();
        let direct = acf(&xs, xs.len() - 1);
        let fast = acf_fft(&xs, xs.len() - 1);
        assert_eq!(direct.len(), fast.len());
        for (k, (d, f)) in direct.iter().zip(&fast).enumerate() {
            assert!((d - f).abs() < 1e-10, "lag {k}: direct {d} vs fft {f}");
        }
    }

    #[test]
    fn acf_fft_matches_direct_degenerate_semantics() {
        // Empty, constant, and beyond-length lags mirror the direct path.
        assert_eq!(acf_fft(&[], 3), vec![0.0; 4]);
        assert_eq!(acf_fft(&[5.0; 80], 5), vec![0.0; 6]);
        let xs = [1.0, 4.0, 2.0];
        let fast = acf_fft(&xs, 6);
        assert_eq!(&fast[3..], &[0.0; 4]);
        for k in 0..3 {
            assert!((fast[k] - autocorrelation(&xs, k)).abs() < 1e-12);
        }
    }

    #[test]
    fn first_zero_crossing_agrees_across_fft_threshold() {
        // The same sine sampled just below and above FFT_ACF_MIN_LEN must
        // report the same crossing regardless of which path computes it.
        for n in [FFT_ACF_MIN_LEN - 1, FFT_ACF_MIN_LEN, 200] {
            let xs: Vec<f64> = (0..n)
                .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 24.0).sin())
                .collect();
            let direct = (1..n)
                .find(|&k| autocorrelation(&xs, k) <= 0.0)
                .unwrap_or(n - 1);
            assert_eq!(first_zero_crossing(&xs), direct, "n = {n}");
        }
    }

    #[test]
    fn first_zero_crossing_degenerate_inputs() {
        assert_eq!(first_zero_crossing(&[]), 1);
        assert_eq!(first_zero_crossing(&[1.0]), 1);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        // AR(1) with phi = 0.8 and deterministic "noise".
        let mut xs = vec![0.0; 2000];
        let mut state = 0.123_f64;
        for t in 1..2000 {
            state = (state * 16807.0) % 1.0; // crude deterministic pseudo-noise
            xs[t] = 0.8 * xs[t - 1] + (state - 0.5);
        }
        let p = pacf(&xs, 5);
        assert!(p[0] > 0.6, "lag-1 pacf {}", p[0]);
        for &v in &p[2..] {
            assert!(v.abs() < 0.2, "higher-lag pacf {v}");
        }
    }

    #[test]
    fn difference_removes_linear_trend() {
        let xs: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        let d = difference(&xs, 1);
        assert!(d.iter().all(|&v| (v - 2.0).abs() < 1e-12));
        assert_eq!(difference(&xs, 2).len(), 8);
        assert!(difference(&[1.0], 1).is_empty());
    }

    #[test]
    fn seasonal_difference_removes_pure_seasonality() {
        let xs: Vec<f64> = (0..24).map(|i| (i % 4) as f64).collect();
        let d = seasonal_difference(&xs, 4);
        assert!(d.iter().all(|&v| v.abs() < 1e-12));
        assert!(seasonal_difference(&xs, 0).is_empty());
        assert!(seasonal_difference(&[1.0, 2.0], 5).is_empty());
    }
}

//! Least-squares regression: OLS (via QR) and ridge (via Cholesky on the
//! regularized normal equations). These power LinearRegression, VAR, ARIMA
//! coefficient estimation and the ADF test.

use crate::matrix::Matrix;
use crate::{MathError, Result};

/// A fitted linear model `y = X beta (+ intercept)`.
#[derive(Debug, Clone)]
pub struct LinearFit {
    /// Coefficients, one per design-matrix column (the intercept, when
    /// requested, is the first element).
    pub coefficients: Vec<f64>,
    /// Residuals `y - X beta`.
    pub residuals: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Whether an intercept column was prepended.
    pub has_intercept: bool,
}

impl LinearFit {
    /// Predicts for a single feature row (without intercept column; it is
    /// added automatically when the fit used one).
    pub fn predict_row(&self, features: &[f64]) -> f64 {
        let mut acc = 0.0;
        let coefs = if self.has_intercept {
            acc += self.coefficients[0];
            &self.coefficients[1..]
        } else {
            &self.coefficients[..]
        };
        crate::kernel::dot_acc(acc, coefs, features)
    }
}

fn design_with_intercept(x: &Matrix) -> Matrix {
    let mut d = Matrix::zeros(x.rows(), x.cols() + 1);
    for i in 0..x.rows() {
        d[(i, 0)] = 1.0;
        for j in 0..x.cols() {
            d[(i, j + 1)] = x[(i, j)];
        }
    }
    d
}

/// Ordinary least squares via Householder QR.
///
/// `x` is the `n x p` design matrix; `intercept` prepends a column of ones.
/// Falls back to ridge with a tiny penalty when the design is rank deficient.
pub fn ols(x: &Matrix, y: &[f64], intercept: bool) -> Result<LinearFit> {
    if x.rows() != y.len() {
        return Err(MathError::DimensionMismatch { context: "ols" });
    }
    if x.rows() == 0 {
        return Err(MathError::Empty);
    }
    let design = if intercept {
        design_with_intercept(x)
    } else {
        x.clone()
    };
    if design.rows() < design.cols() {
        return Err(MathError::InvalidArgument("ols needs rows >= cols"));
    }
    let coefficients = match solve_qr(&design, y) {
        Ok(c) => c,
        // Rank-deficient designs (constant channels, collinear lags) are
        // common in generated data; a tiny ridge keeps the fit defined.
        Err(MathError::Singular) => solve_ridge_normal(&design, y, 1e-8)?,
        Err(e) => return Err(e),
    };
    finish_fit(&design, y, coefficients, intercept)
}

/// Ridge regression `(X^T X + lambda I)^{-1} X^T y`.
///
/// The intercept column, when requested, is *not* penalized.
pub fn ridge(x: &Matrix, y: &[f64], lambda: f64, intercept: bool) -> Result<LinearFit> {
    if x.rows() != y.len() {
        return Err(MathError::DimensionMismatch { context: "ridge" });
    }
    if x.rows() == 0 {
        return Err(MathError::Empty);
    }
    if lambda < 0.0 {
        return Err(MathError::InvalidArgument("ridge lambda must be >= 0"));
    }
    let design = if intercept {
        design_with_intercept(x)
    } else {
        x.clone()
    };
    let mut coefficients = solve_ridge_normal(&design, y, lambda)?;
    if intercept {
        // Re-solve with an unpenalized intercept: center once and refit.
        // Practical shortcut: penalizing the intercept with small lambda is
        // harmless; for large lambda adjust the intercept to match means.
        let y_mean = crate::stats::mean(y);
        let mut fitted_mean = 0.0;
        for i in 0..design.rows() {
            fitted_mean += design
                .row(i)
                .iter()
                .zip(&coefficients)
                .map(|(a, b)| a * b)
                .sum::<f64>();
        }
        fitted_mean /= design.rows() as f64;
        coefficients[0] += y_mean - fitted_mean;
    }
    finish_fit(&design, y, coefficients, intercept)
}

fn finish_fit(
    design: &Matrix,
    y: &[f64],
    coefficients: Vec<f64>,
    has_intercept: bool,
) -> Result<LinearFit> {
    let fitted = design.matvec(&coefficients)?;
    let residuals: Vec<f64> = y.iter().zip(&fitted).map(|(yi, fi)| yi - fi).collect();
    let rss = residuals.iter().map(|r| r * r).sum();
    Ok(LinearFit {
        coefficients,
        residuals,
        rss,
        has_intercept,
    })
}

fn solve_qr(design: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    let (q, r) = design.qr()?;
    // beta = R^{-1} Q^T y (back substitution).
    let qty = q.transpose().matvec(y)?;
    let p = r.cols();
    let mut beta = vec![0.0; p];
    for i in (0..p).rev() {
        let mut acc = qty[i];
        for j in (i + 1)..p {
            acc -= r[(i, j)] * beta[j];
        }
        let d = r[(i, i)];
        if d.abs() < 1e-10 {
            return Err(MathError::Singular);
        }
        beta[i] = acc / d;
    }
    Ok(beta)
}

fn solve_ridge_normal(design: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    let xt = design.transpose();
    let mut xtx = xt.matmul(design)?;
    for i in 0..xtx.rows() {
        xtx[(i, i)] += lambda.max(1e-12);
    }
    let xty = xt.matvec(y)?;
    // Cholesky solve; fall back to LU if rounding breaks positive
    // definiteness.
    match xtx.cholesky() {
        Ok(l) => {
            let n = l.rows();
            let mut z = xty.clone();
            for i in 0..n {
                for j in 0..i {
                    let lij = l[(i, j)];
                    z[i] -= lij * z[j];
                }
                z[i] /= l[(i, i)];
            }
            for i in (0..n).rev() {
                for j in (i + 1)..n {
                    let lji = l[(j, i)];
                    z[i] -= lji * z[j];
                }
                z[i] /= l[(i, i)];
            }
            Ok(z)
        }
        Err(_) => xtx.solve(&xty),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn ols_recovers_exact_line() {
        // y = 2 + 3x
        let x = design(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = [2.0, 5.0, 8.0, 11.0];
        let fit = ols(&x, &y, true).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 3.0).abs() < 1e-9);
        assert!(fit.rss < 1e-15);
    }

    #[test]
    fn ols_without_intercept() {
        let x = design(&[&[1.0], &[2.0], &[3.0]]);
        let y = [2.0, 4.0, 6.0];
        let fit = ols(&x, &y, false).unwrap();
        assert_eq!(fit.coefficients.len(), 1);
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ols_multivariate() {
        // y = 1 + 2a - b
        let x = design(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[2.0, 1.0],
            &[3.0, 2.0],
            &[1.0, 1.0],
        ]);
        let y: Vec<f64> = x
            .data()
            .chunks(2)
            .map(|r| 1.0 + 2.0 * r[0] - r[1])
            .collect();
        let fit = ols(&x, &y, true).unwrap();
        assert!((fit.coefficients[0] - 1.0).abs() < 1e-8);
        assert!((fit.coefficients[1] - 2.0).abs() < 1e-8);
        assert!((fit.coefficients[2] + 1.0).abs() < 1e-8);
    }

    #[test]
    fn ols_collinear_design_falls_back_to_ridge() {
        // Second column duplicates the first.
        let x = design(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0], &[4.0, 4.0]]);
        let y = [2.0, 4.0, 6.0, 8.0];
        let fit = ols(&x, &y, false).unwrap();
        // Predictions should still be right even if coefficients split.
        let pred = fit.predict_row(&[5.0, 5.0]);
        assert!((pred - 10.0).abs() < 1e-3, "pred {pred}");
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let x = design(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = [2.0, 4.0, 6.0, 8.0];
        let none = ridge(&x, &y, 0.0, false).unwrap();
        let heavy = ridge(&x, &y, 100.0, false).unwrap();
        assert!(heavy.coefficients[0].abs() < none.coefficients[0].abs());
        assert!(none.coefficients[0] > 1.9);
    }

    #[test]
    fn predict_row_matches_manual() {
        let x = design(&[&[0.0], &[1.0], &[2.0]]);
        let y = [1.0, 3.0, 5.0];
        let fit = ols(&x, &y, true).unwrap();
        assert!((fit.predict_row(&[10.0]) - 21.0).abs() < 1e-8);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let x = design(&[&[1.0], &[2.0]]);
        assert!(ols(&x, &[1.0], true).is_err());
    }
}

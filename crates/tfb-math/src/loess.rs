//! Loess (locally weighted regression) smoothing.
//!
//! This is the smoothing primitive underneath the STL-style decomposition in
//! [`crate::stl`], which in turn defines the paper's trend-strength and
//! seasonality-strength characteristics (Definitions 3 and 4).

use crate::{MathError, Result};

/// Tricube weight: `(1 - |u|^3)^3` for `|u| < 1`, else 0.
#[inline]
fn tricube(u: f64) -> f64 {
    let a = u.abs();
    if a >= 1.0 {
        0.0
    } else {
        let t = 1.0 - a * a * a;
        t * t * t
    }
}

/// Smooths `ys` (observed at integer positions `0..n`) with local linear
/// regression using a window of `span` nearest neighbours and tricube
/// weights.
///
/// `degree` must be 0 (local constant) or 1 (local linear). `span` is
/// clamped to `[2, n]`.
pub fn loess_smooth(ys: &[f64], span: usize, degree: usize) -> Result<Vec<f64>> {
    let n = ys.len();
    if n == 0 {
        return Err(MathError::Empty);
    }
    if degree > 1 {
        return Err(MathError::InvalidArgument("loess degree must be 0 or 1"));
    }
    let span = span.clamp(2, n);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // Window of `span` nearest indices around i.
        let half = span / 2;
        let (lo, hi) = if i <= half {
            (0, span.min(n))
        } else if i + (span - half) >= n {
            (n - span, n)
        } else {
            (i - half, i - half + span)
        };
        let xi = i as f64;
        // Largest distance in the window normalizes the weights.
        let dmax = ((hi - 1) as f64 - xi)
            .abs()
            .max((lo as f64 - xi).abs())
            .max(1.0);
        let mut sw = 0.0;
        let mut swx = 0.0;
        let mut swy = 0.0;
        let mut swxx = 0.0;
        let mut swxy = 0.0;
        for (j, &y) in ys[lo..hi].iter().enumerate() {
            let x = (lo + j) as f64;
            let w = tricube((x - xi) / dmax);
            sw += w;
            swx += w * x;
            swy += w * y;
            swxx += w * x * x;
            swxy += w * x * y;
        }
        if sw < 1e-300 {
            out.push(ys[i]);
            continue;
        }
        let value = if degree == 0 {
            swy / sw
        } else {
            let denom = sw * swxx - swx * swx;
            if denom.abs() < 1e-12 {
                swy / sw
            } else {
                let beta = (sw * swxy - swx * swy) / denom;
                let alpha = (swy - beta * swx) / sw;
                alpha + beta * xi
            }
        };
        out.push(value);
    }
    Ok(out)
}

/// Centered moving average with window `w` (odd or even, using the 2xMA
/// convention for even windows as in classical decomposition).
pub fn moving_average(ys: &[f64], w: usize) -> Result<Vec<f64>> {
    let n = ys.len();
    if n == 0 {
        return Err(MathError::Empty);
    }
    if w == 0 || w > n {
        return Err(MathError::InvalidArgument("moving_average window"));
    }
    let ma_once = |xs: &[f64], w: usize| -> Vec<f64> {
        let mut out = Vec::with_capacity(xs.len().saturating_sub(w) + 1);
        let mut acc: f64 = xs[..w].iter().sum();
        out.push(acc / w as f64);
        for t in w..xs.len() {
            acc += xs[t] - xs[t - w];
            out.push(acc / w as f64);
        }
        out
    };
    let core = if w % 2 == 1 {
        ma_once(ys, w)
    } else {
        // 2xMA: average of two adjacent w-length means.
        let first = ma_once(ys, w);
        ma_once(&first, 2)
    };
    // Pad the ends by extending the boundary values so the output has the
    // same length as the input (adequate for strength statistics).
    let pad_front = (n - core.len()) / 2;
    let pad_back = n - core.len() - pad_front;
    let mut out = Vec::with_capacity(n);
    out.extend(std::iter::repeat_n(core[0], pad_front));
    out.extend_from_slice(&core);
    out.extend(std::iter::repeat_n(
        *core.last().expect("nonempty"),
        pad_back,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loess_preserves_linear_data() {
        let ys: Vec<f64> = (0..50).map(|i| 3.0 * i as f64 + 2.0).collect();
        let sm = loess_smooth(&ys, 11, 1).unwrap();
        for (s, y) in sm.iter().zip(&ys) {
            assert!((s - y).abs() < 1e-8, "{s} vs {y}");
        }
    }

    #[test]
    fn loess_smooths_noise_towards_mean() {
        let ys: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let sm = loess_smooth(&ys, 21, 1).unwrap();
        let max_abs = sm.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
        assert!(max_abs < 0.5, "max {max_abs}");
    }

    #[test]
    fn loess_degree_zero_is_weighted_mean() {
        let ys = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let sm = loess_smooth(&ys, 5, 0).unwrap();
        assert!((sm[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn loess_rejects_bad_args() {
        assert!(loess_smooth(&[], 3, 1).is_err());
        assert!(loess_smooth(&[1.0, 2.0], 3, 2).is_err());
    }

    #[test]
    fn moving_average_constant_series() {
        let ys = vec![2.0; 20];
        let ma = moving_average(&ys, 5).unwrap();
        assert_eq!(ma.len(), 20);
        assert!(ma.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn moving_average_even_window_keeps_length() {
        let ys: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ma = moving_average(&ys, 4).unwrap();
        assert_eq!(ma.len(), 30);
        // Interior values of a 2x4 MA on a linear series equal the series.
        assert!((ma[15] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn moving_average_rejects_bad_window() {
        assert!(moving_average(&[1.0, 2.0], 0).is_err());
        assert!(moving_average(&[1.0, 2.0], 3).is_err());
    }
}

//! Principal component analysis and principal feature analysis.
//!
//! PCA backs Figure 5 of the paper (2-D hexbin coverage of the univariate
//! archive's characteristic space); PFA (Lu et al. 2007) is the subset
//! selection the paper uses to curate the 8,068 univariate series at 90%
//! explained variance.

use crate::eigen::symmetric_eigen;
use crate::matrix::Matrix;
use crate::stats::mean;
use crate::{MathError, Result};

/// A fitted PCA: component directions and the explained-variance spectrum.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means of the training data (used to center projections).
    pub means: Vec<f64>,
    /// Principal axes as columns, sorted by decreasing eigenvalue.
    pub components: Matrix,
    /// Eigenvalues of the covariance matrix, sorted descending.
    pub eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits PCA on an `n x p` data matrix (rows are observations).
    pub fn fit(data: &Matrix) -> Result<Pca> {
        let (n, p) = (data.rows(), data.cols());
        if n < 2 {
            return Err(MathError::InvalidArgument("pca needs >= 2 rows"));
        }
        let means: Vec<f64> = (0..p).map(|j| mean(&data.col(j))).collect();
        // Covariance matrix (population scaling).
        let mut cov = Matrix::zeros(p, p);
        for i in 0..n {
            let row = data.row(i);
            for a in 0..p {
                let da = row[a] - means[a];
                for b in a..p {
                    let v = da * (row[b] - means[b]);
                    cov[(a, b)] += v;
                }
            }
        }
        for a in 0..p {
            for b in a..p {
                let v = cov[(a, b)] / n as f64;
                cov[(a, b)] = v;
                cov[(b, a)] = v;
            }
        }
        let eig = symmetric_eigen(&cov)?;
        Ok(Pca {
            means,
            components: eig.vectors,
            eigenvalues: eig.values.iter().map(|&v| v.max(0.0)).collect(),
        })
    }

    /// Projects rows of `data` onto the first `k` components.
    pub fn transform(&self, data: &Matrix, k: usize) -> Result<Matrix> {
        let p = self.means.len();
        if data.cols() != p {
            return Err(MathError::DimensionMismatch {
                context: "pca transform",
            });
        }
        let k = k.min(p);
        let mut out = Matrix::zeros(data.rows(), k);
        for i in 0..data.rows() {
            let row = data.row(i);
            for c in 0..k {
                let mut acc = 0.0;
                for j in 0..p {
                    acc += (row[j] - self.means[j]) * self.components[(j, c)];
                }
                out[(i, c)] = acc;
            }
        }
        Ok(out)
    }

    /// Fraction of total variance explained by the first `k` components.
    pub fn explained_variance_ratio(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().sum();
        if total < 1e-300 {
            return 1.0;
        }
        self.eigenvalues.iter().take(k).sum::<f64>() / total
    }

    /// Smallest `k` whose cumulative explained variance reaches `threshold`.
    pub fn components_for_variance(&self, threshold: f64) -> usize {
        let total: f64 = self.eigenvalues.iter().sum();
        if total < 1e-300 {
            return 1;
        }
        let mut acc = 0.0;
        for (k, ev) in self.eigenvalues.iter().enumerate() {
            acc += ev;
            if acc / total >= threshold {
                return k + 1;
            }
        }
        self.eigenvalues.len()
    }
}

/// Principal feature analysis: selects a subset of *rows* (individual
/// series/features) that preserves `threshold` of the variance structure.
///
/// Rows of `data` are the candidate items, columns their representation.
/// Following Lu et al., items are clustered in the subspace of the first
/// `q` principal axes (with `q` chosen by explained variance) using a
/// small k-means, and the item closest to each cluster centroid is kept.
/// Returns the selected row indices in ascending order.
pub fn principal_feature_selection(data: &Matrix, threshold: f64) -> Result<Vec<usize>> {
    let n = data.rows();
    if n == 0 {
        return Err(MathError::Empty);
    }
    if n <= 2 {
        return Ok((0..n).collect());
    }
    // PFA operates on the transposed problem: each row is an item to keep or
    // drop; the covariance across items is p x p with p = n items, so we fit
    // PCA on the transpose and cluster the principal row loadings.
    let pca = Pca::fit(data)?;
    let q = pca.components_for_variance(threshold).max(1);
    let proj = pca.transform(data, q)?;
    // k-means with k = q + 1 clusters (Lu et al. recommend k >= q).
    let k = (q + 1).min(n);
    let assignments = kmeans_rows(&proj, k, 50);
    // Pick the row nearest each centroid.
    let mut selected = Vec::with_capacity(k);
    for c in 0..k {
        let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let dim = proj.cols();
        let mut centroid = vec![0.0; dim];
        for &i in &members {
            for (d, cv) in centroid.iter_mut().enumerate() {
                *cv += proj[(i, d)];
            }
        }
        for cv in centroid.iter_mut() {
            *cv /= members.len() as f64;
        }
        let best = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let da = sq_dist(proj.row(a), &centroid);
                let db = sq_dist(proj.row(b), &centroid);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty cluster");
        selected.push(best);
    }
    selected.sort_unstable();
    selected.dedup();
    Ok(selected)
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Deterministic k-means on the rows of `data` (centroids seeded evenly
/// across the row order, so results are reproducible without an RNG).
fn kmeans_rows(data: &Matrix, k: usize, max_iter: usize) -> Vec<usize> {
    let n = data.rows();
    let dim = data.cols();
    let k = k.min(n).max(1);
    let mut centroids: Vec<Vec<f64>> = (0..k).map(|c| data.row(c * n / k).to_vec()).collect();
    let mut assign = vec![0usize; n];
    for _ in 0..max_iter {
        let mut changed = false;
        for i in 0..n {
            let row = data.row(i);
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(row, &centroids[a])
                        .partial_cmp(&sq_dist(row, &centroids[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("k >= 1");
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assign[i]] += 1;
            for d in 0..dim {
                sums[assign[i]][d] += data[(i, d)];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dim {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pca_finds_dominant_direction() {
        // Points on the line y = 2x with tiny perpendicular noise.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                let eps = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![t + eps * 2.0, 2.0 * t - eps]
            })
            .collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&data).unwrap();
        // First component should be parallel to (1, 2)/sqrt(5).
        let c0 = pca.components.col(0);
        let norm = (c0[0] * c0[0] + c0[1] * c0[1]).sqrt();
        let cos = (c0[0] + 2.0 * c0[1]).abs() / (norm * 5.0_f64.sqrt());
        assert!(cos > 0.999, "cos {cos}");
        assert!(pca.explained_variance_ratio(1) > 0.99);
    }

    #[test]
    fn transform_centers_data() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 14.0], vec![5.0, 18.0]];
        let data = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&data).unwrap();
        let proj = pca.transform(&data, 2).unwrap();
        // Projections of centered data have zero mean.
        for c in 0..2 {
            let m = mean(&proj.col(c));
            assert!(m.abs() < 1e-9);
        }
    }

    #[test]
    fn components_for_variance_monotone() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, (i % 5) as f64, ((i * i) % 7) as f64])
            .collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&data).unwrap();
        let k50 = pca.components_for_variance(0.5);
        let k99 = pca.components_for_variance(0.99);
        assert!(k50 <= k99);
        assert!(k99 <= 3);
    }

    #[test]
    fn pfa_selects_fewer_items_than_input() {
        // 20 items, 4 redundancy groups -> selection should shrink a lot.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let g = (i % 4) as f64;
                vec![g, 2.0 * g, -g, g + 0.001 * i as f64]
            })
            .collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let sel = principal_feature_selection(&data, 0.9).unwrap();
        assert!(!sel.is_empty());
        assert!(sel.len() < 20);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pfa_tiny_inputs_select_everything() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(principal_feature_selection(&data, 0.9).unwrap(), vec![0, 1]);
    }
}

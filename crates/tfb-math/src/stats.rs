//! Descriptive statistics used across the benchmark: moments, quantiles,
//! correlation, and the normalizations of the TFB pipeline.

use crate::{MathError, Result};

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`). Returns 0.0 for slices of length < 1.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n - 1`). Returns 0.0 for slices of length < 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Covariance (population) between two equally long slices.
pub fn covariance(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            context: "covariance",
        });
    }
    if xs.is_empty() {
        return Err(MathError::Empty);
    }
    let mx = mean(xs);
    let my = mean(ys);
    Ok(xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64)
}

/// Pearson correlation coefficient between two equally long slices.
///
/// Returns 0.0 when either input has zero variance (the coefficient is
/// undefined there; 0.0 is the convention used by TFB's correlation
/// characteristic, which averages many pairwise coefficients).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    let cov = covariance(xs, ys)?;
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx < 1e-300 || sy < 1e-300 {
        return Ok(0.0);
    }
    Ok(cov / (sx * sy))
}

/// Median. Returns an error on empty input.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile (type-7, the numpy default), `q` in [0, 1].
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(MathError::Empty);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(MathError::InvalidArgument("quantile q must be in [0,1]"));
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Minimum of a slice (error on empty input).
pub fn min(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        })
        .ok_or(MathError::Empty)
}

/// Maximum of a slice (error on empty input).
pub fn max(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
        .ok_or(MathError::Empty)
}

/// Z-score normalization: `(x - mean) / std`.
///
/// A zero-variance series maps to all zeros rather than NaN, matching the
/// pipeline's behaviour on constant channels.
pub fn zscore(xs: &[f64]) -> Vec<f64> {
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-300 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - m) / s).collect()
}

/// Min-max normalization onto [0, 1]. A constant series maps to all zeros.
pub fn min_max_normalize(xs: &[f64]) -> Vec<f64> {
    let (lo, hi) = match (min(xs), max(xs)) {
        (Ok(lo), Ok(hi)) => (lo, hi),
        _ => return Vec::new(),
    };
    let range = hi - lo;
    if range < 1e-300 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / range).collect()
}

/// Skewness (population, Fisher definition). 0.0 for degenerate input.
pub fn skewness(xs: &[f64]) -> f64 {
    let s = std_dev(xs);
    if xs.len() < 2 || s < 1e-300 {
        return 0.0;
    }
    let m = mean(xs);
    let n = xs.len() as f64;
    xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n
}

/// Excess kurtosis (population). 0.0 for degenerate input.
pub fn kurtosis(xs: &[f64]) -> f64 {
    let s = std_dev(xs);
    if xs.len() < 2 || s < 1e-300 {
        return 0.0;
    }
    let m = mean(xs);
    let n = xs.len() as f64;
    xs.iter().map(|x| ((x - m) / s).powi(4)).sum::<f64>() / n - 3.0
}

/// Indices that would sort `xs` ascending (NaNs ordered last).
pub fn argsort(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Standard normal cumulative distribution function.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (absolute error < 1.5e-7), which is ample for test statistics.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert!(median(&[]).is_err());
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!(quantile(&xs, 1.5).is_err());
    }

    #[test]
    fn pearson_perfect_and_anti_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn zscore_has_zero_mean_unit_std() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let z = zscore(&xs);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_constant_is_zeros() {
        assert_eq!(zscore(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn min_max_normalize_bounds() {
        let v = min_max_normalize(&[2.0, 4.0, 6.0]);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn argsort_orders_indices() {
        assert_eq!(argsort(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn normal_cdf_symmetry_and_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn skewness_symmetric_is_zero() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-12);
    }

    #[test]
    fn covariance_dimension_mismatch() {
        assert!(covariance(&[1.0], &[1.0, 2.0]).is_err());
    }
}

//! Runtime-selected dense microkernels: dot, axpy, and the GEMM
//! k-tile update, each in a scalar reference form and a 4x-unrolled
//! form (compiled additionally with AVX2 enabled where the CPU has it).
//!
//! Every unrolled kernel performs *exactly the same floating-point
//! operations in exactly the same per-element order* as its scalar
//! reference — unrolling only widens the window the autovectorizer and
//! the out-of-order core see, it never reassociates a reduction. The
//! serial dot chain keeps one accumulator (its add-latency chain is the
//! algorithm); the axpy and GEMM updates are element-independent, so
//! unrolling and SIMD lanes change nothing about the result. That is
//! what lets callers switch paths at runtime while staying bit-identical
//! — the property `tests/kernel_props.rs` proves on random shapes.
//!
//! Selection: [`active`] reads `TFB_KERNEL` (`scalar` | `unrolled` |
//! `auto`, default `auto` = unrolled, with AVX2 when detected) once,
//! publishes the choice on the `math/kernel_path` gauge, and callers
//! record [`active_name`] in their run manifests so every benchmark
//! number is attributable to the kernel path that produced it.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the dispatchers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// The reference loops (the pre-microkernel code, kept verbatim).
    Scalar,
    /// 4x-unrolled kernels, baseline instruction set.
    Unrolled,
    /// 4x-unrolled kernels compiled with AVX2 enabled (x86-64 only,
    /// runtime-detected). Bit-identical to both other paths.
    UnrolledAvx2,
}

impl KernelPath {
    /// Stable name for manifests and benchmark JSON.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Unrolled => "unrolled",
            KernelPath::UnrolledAvx2 => "unrolled+avx2",
        }
    }

    fn code(self) -> u8 {
        match self {
            KernelPath::Scalar => 1,
            KernelPath::Unrolled => 2,
            KernelPath::UnrolledAvx2 => 3,
        }
    }

    fn from_code(code: u8) -> Option<KernelPath> {
        match code {
            1 => Some(KernelPath::Scalar),
            2 => Some(KernelPath::Unrolled),
            3 => Some(KernelPath::UnrolledAvx2),
            _ => None,
        }
    }
}

/// 0 = undecided; otherwise `KernelPath::code`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn detect() -> KernelPath {
    match std::env::var("TFB_KERNEL").as_deref() {
        Ok("scalar") => KernelPath::Scalar,
        Ok("unrolled") => KernelPath::Unrolled,
        _ => best_unrolled(),
    }
}

/// The widest unrolled path this CPU supports.
pub fn best_unrolled() -> KernelPath {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return KernelPath::UnrolledAvx2;
    }
    KernelPath::Unrolled
}

/// The kernel path in effect (decides on first call; one relaxed load
/// afterwards).
#[inline]
pub fn active() -> KernelPath {
    match KernelPath::from_code(ACTIVE.load(Ordering::Relaxed)) {
        Some(p) => p,
        None => init(),
    }
}

#[cold]
fn init() -> KernelPath {
    let path = detect();
    force(path);
    path
}

/// Overrides the kernel path (benchmarks and tests compare paths this
/// way; servers pick once at startup via `TFB_KERNEL`).
pub fn force(path: KernelPath) {
    ACTIVE.store(path.code(), Ordering::Relaxed);
    tfb_obs::gauge!("math/kernel_path").set(path.code() as f64);
}

/// Name of the active path — callers put this in run manifests.
pub fn active_name() -> &'static str {
    active().name()
}

// ---------------------------------------------------------------------
// dot: serial accumulator chain starting from `init`, no zero-skip.
// ---------------------------------------------------------------------

#[inline(always)]
fn dot_acc_scalar(init: f64, x: &[f64], y: &[f64]) -> f64 {
    let mut acc = init;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// One serial accumulator, loop body unrolled 4x: the products are
/// formed in the same order and added to the same single chain, so the
/// result is bit-identical to the scalar loop — the unroll only removes
/// branch and index overhead (the add chain itself is the latency
/// floor by design).
#[inline(always)]
fn dot_acc_unrolled(init: f64, x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = init;
    let mut k = 0;
    while k + 4 <= n {
        acc += x[k] * y[k];
        acc += x[k + 1] * y[k + 1];
        acc += x[k + 2] * y[k + 2];
        acc += x[k + 3] * y[k + 3];
        k += 4;
    }
    while k < n {
        acc += x[k] * y[k];
        k += 1;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_acc_avx2(init: f64, x: &[f64], y: &[f64]) -> f64 {
    dot_acc_unrolled(init, x, y)
}

/// `init + Σ x[i]*y[i]`, accumulated left to right in one serial chain
/// (the exact order of `iter().zip().map().sum()` seeded with `init`).
#[inline]
pub fn dot_acc(init: f64, x: &[f64], y: &[f64]) -> f64 {
    match active() {
        KernelPath::Scalar => dot_acc_scalar(init, x, y),
        KernelPath::Unrolled => dot_acc_unrolled(init, x, y),
        #[cfg(target_arch = "x86_64")]
        KernelPath::UnrolledAvx2 => unsafe { dot_acc_avx2(init, x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelPath::UnrolledAvx2 => dot_acc_unrolled(init, x, y),
    }
}

// ---------------------------------------------------------------------
// dot_skip: serial chain that skips x[i] == 0.0 terms (the GEMM
// zero-skip semantics: 0 * inf stays out of the sum).
// ---------------------------------------------------------------------

#[inline(always)]
fn dot_skip_scalar(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        if a == 0.0 {
            continue;
        }
        acc += a * b;
    }
    acc
}

#[inline(always)]
fn dot_skip_unrolled(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = 0.0;
    let mut k = 0;
    while k + 4 <= n {
        // Same chain, same skips, four loads per trip.
        if x[k] != 0.0 {
            acc += x[k] * y[k];
        }
        if x[k + 1] != 0.0 {
            acc += x[k + 1] * y[k + 1];
        }
        if x[k + 2] != 0.0 {
            acc += x[k + 2] * y[k + 2];
        }
        if x[k + 3] != 0.0 {
            acc += x[k + 3] * y[k + 3];
        }
        k += 4;
    }
    while k < n {
        if x[k] != 0.0 {
            acc += x[k] * y[k];
        }
        k += 1;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_skip_avx2(x: &[f64], y: &[f64]) -> f64 {
    dot_skip_unrolled(x, y)
}

/// `Σ x[i]*y[i]` with `x[i] == 0.0` terms skipped, one serial chain.
#[inline]
pub fn dot_skip(x: &[f64], y: &[f64]) -> f64 {
    match active() {
        KernelPath::Scalar => dot_skip_scalar(x, y),
        KernelPath::Unrolled => dot_skip_unrolled(x, y),
        #[cfg(target_arch = "x86_64")]
        KernelPath::UnrolledAvx2 => unsafe { dot_skip_avx2(x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelPath::UnrolledAvx2 => dot_skip_unrolled(x, y),
    }
}

// ---------------------------------------------------------------------
// axpy: out[i] += a * x[i]. Elements are independent, so any unroll or
// SIMD width is bit-identical by construction.
// ---------------------------------------------------------------------

#[inline(always)]
fn axpy_scalar(a: f64, x: &[f64], out: &mut [f64]) {
    for (o, &b) in out.iter_mut().zip(x) {
        *o += a * b;
    }
}

#[inline(always)]
fn axpy_unrolled(a: f64, x: &[f64], out: &mut [f64]) {
    let n = x.len().min(out.len());
    let (x, out) = (&x[..n], &mut out[..n]);
    let mut j = 0;
    while j + 4 <= n {
        out[j] += a * x[j];
        out[j + 1] += a * x[j + 1];
        out[j + 2] += a * x[j + 2];
        out[j + 3] += a * x[j + 3];
        j += 4;
    }
    while j < n {
        out[j] += a * x[j];
        j += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(a: f64, x: &[f64], out: &mut [f64]) {
    axpy_unrolled(a, x, out)
}

/// `out[i] += a * x[i]` over the common prefix of `x` and `out`.
#[inline]
pub fn axpy(a: f64, x: &[f64], out: &mut [f64]) {
    match active() {
        KernelPath::Scalar => axpy_scalar(a, x, out),
        KernelPath::Unrolled => axpy_unrolled(a, x, out),
        #[cfg(target_arch = "x86_64")]
        KernelPath::UnrolledAvx2 => unsafe { axpy_avx2(a, x, out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelPath::UnrolledAvx2 => axpy_unrolled(a, x, out),
    }
}

// ---------------------------------------------------------------------
// GEMM k-tile row update: out_row[j] += Σ_k lhs[k] * rhs[k*n + j],
// k ascending, skipping lhs[k] == 0.0 — one row of the blocked ikj
// kernel's inner work.
// ---------------------------------------------------------------------

#[inline(always)]
fn gemm_row_ktile_scalar(lhs: &[f64], rhs: &[f64], n: usize, out_row: &mut [f64]) {
    for (k, &a) in lhs.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let rhs_row = &rhs[k * n..(k + 1) * n];
        for (o, &b) in out_row.iter_mut().zip(rhs_row) {
            *o += a * b;
        }
    }
}

/// Register-blocked update: four `k` steps fused per pass over the
/// output row. Each output element still receives its `k` terms in
/// ascending order (`a0` then `a1` then `a2` then `a3`), so the fused
/// pass is bit-identical to four scalar axpys — it just loads the
/// output row once instead of four times. A block containing a zero
/// falls back to the per-`k` skip semantics.
#[inline(always)]
fn gemm_row_ktile_unrolled(lhs: &[f64], rhs: &[f64], n: usize, out_row: &mut [f64]) {
    let width = n.min(out_row.len());
    let out_row = &mut out_row[..width];
    let mut k = 0;
    while k + 4 <= lhs.len() {
        let (a0, a1, a2, a3) = (lhs[k], lhs[k + 1], lhs[k + 2], lhs[k + 3]);
        if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
            let b0 = &rhs[k * n..(k + 1) * n];
            let b1 = &rhs[(k + 1) * n..(k + 2) * n];
            let b2 = &rhs[(k + 2) * n..(k + 3) * n];
            let b3 = &rhs[(k + 3) * n..(k + 4) * n];
            for j in 0..out_row.len() {
                let mut o = out_row[j];
                o += a0 * b0[j];
                o += a1 * b1[j];
                o += a2 * b2[j];
                o += a3 * b3[j];
                out_row[j] = o;
            }
        } else {
            for (i, &a) in [a0, a1, a2, a3].iter().enumerate() {
                if a != 0.0 {
                    axpy_unrolled(a, &rhs[(k + i) * n..(k + i + 1) * n], out_row);
                }
            }
        }
        k += 4;
    }
    while k < lhs.len() {
        let a = lhs[k];
        if a != 0.0 {
            axpy_unrolled(a, &rhs[k * n..(k + 1) * n], out_row);
        }
        k += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_row_ktile_avx2(lhs: &[f64], rhs: &[f64], n: usize, out_row: &mut [f64]) {
    gemm_row_ktile_unrolled(lhs, rhs, n, out_row)
}

/// Accumulates one k-tile of `lhs_row * rhs` into `out_row`: `lhs` is
/// the row's k-tile slice, `rhs` the matching `lhs.len()` × `n` slab of
/// the right operand, row-major.
#[inline]
pub fn gemm_row_ktile(lhs: &[f64], rhs: &[f64], n: usize, out_row: &mut [f64]) {
    match active() {
        KernelPath::Scalar => gemm_row_ktile_scalar(lhs, rhs, n, out_row),
        KernelPath::Unrolled => gemm_row_ktile_unrolled(lhs, rhs, n, out_row),
        #[cfg(target_arch = "x86_64")]
        KernelPath::UnrolledAvx2 => unsafe { gemm_row_ktile_avx2(lhs, rhs, n, out_row) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelPath::UnrolledAvx2 => gemm_row_ktile_unrolled(lhs, rhs, n, out_row),
    }
}

/// Runs `f` with the kernel path forced to `path`, restoring the prior
/// selection afterwards. Benchmarks and the bit-identity property tests
/// compare paths through this; it is process-global, so concurrent
/// callers must not depend on different paths at once (results are
/// bit-identical either way — only timings differ).
pub fn with_path<T>(path: KernelPath, f: impl FnOnce() -> T) -> T {
    let prior = active();
    force(path);
    let out = f();
    force(prior);
    out
}

//! Reusable neural building blocks: linear layers, MLPs, single-head
//! self-attention, transformer encoder layers, and the fixed input
//! transforms (series decomposition, DFT features, Legendre projection)
//! used by the decomposition- and frequency-based models.

use crate::optim::{ParamId, ParamStore};
use crate::tape::{Tape, TensorRef};

/// A dense layer `y = x W + b`.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input feature count.
    pub fan_in: usize,
    /// Output feature count.
    pub fan_out: usize,
}

impl Linear {
    /// Allocates a dense layer in the store.
    pub fn new(store: &mut ParamStore, fan_in: usize, fan_out: usize) -> Linear {
        Linear {
            w: store.add(fan_in, fan_out),
            b: store.add_zeros(1, fan_out),
            fan_in,
            fan_out,
        }
    }

    /// Applies the layer to a `(rows, fan_in)` tensor.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: TensorRef) -> TensorRef {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        tape.add_row_broadcast(xw, b)
    }
}

/// A two-layer MLP with ReLU.
#[derive(Debug, Clone, Copy)]
pub struct Mlp {
    l1: Linear,
    l2: Linear,
}

impl Mlp {
    /// Allocates an MLP `fan_in -> hidden -> fan_out`.
    pub fn new(store: &mut ParamStore, fan_in: usize, hidden: usize, fan_out: usize) -> Mlp {
        Mlp {
            l1: Linear::new(store, fan_in, hidden),
            l2: Linear::new(store, hidden, fan_out),
        }
    }

    /// Forward pass.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: TensorRef) -> TensorRef {
        let h = self.l1.forward(tape, store, x);
        let h = tape.relu(h);
        self.l2.forward(tape, store, h)
    }
}

/// Single-head scaled dot-product self-attention over `(tokens, d)` input.
#[derive(Debug, Clone, Copy)]
pub struct SelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    d: usize,
}

impl SelfAttention {
    /// Allocates attention with model width `d`.
    pub fn new(store: &mut ParamStore, d: usize) -> SelfAttention {
        SelfAttention {
            wq: Linear::new(store, d, d),
            wk: Linear::new(store, d, d),
            wv: Linear::new(store, d, d),
            wo: Linear::new(store, d, d),
            d,
        }
    }

    /// Forward pass over `(tokens, d)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: TensorRef) -> TensorRef {
        let q = self.wq.forward(tape, store, x);
        let k = self.wk.forward(tape, store, x);
        let v = self.wv.forward(tape, store, x);
        let kt = tape.transpose(k);
        let scores = tape.matmul(q, kt);
        let scaled = tape.scale(scores, 1.0 / (self.d as f64).sqrt());
        let attn = tape.softmax_rows(scaled);
        let ctx = tape.matmul(attn, v);
        self.wo.forward(tape, store, ctx)
    }
}

/// Pre-norm transformer encoder layer: attention + MLP, both residual.
#[derive(Debug, Clone, Copy)]
pub struct EncoderLayer {
    attn: SelfAttention,
    ffn: Mlp,
    gain1: ParamId,
    gain2: ParamId,
}

impl EncoderLayer {
    /// Allocates an encoder layer of width `d` with FFN hidden size `2d`.
    pub fn new(store: &mut ParamStore, d: usize) -> EncoderLayer {
        EncoderLayer {
            attn: SelfAttention::new(store, d),
            ffn: Mlp::new(store, d, 2 * d, d),
            gain1: store.add_raw(vec![1.0; d], 1, d),
            gain2: store.add_raw(vec![1.0; d], 1, d),
        }
    }

    /// Forward pass over `(tokens, d)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: TensorRef) -> TensorRef {
        let n1 = tape.layer_norm_rows(x);
        let g1 = tape.param(store, self.gain1);
        let n1 = tape.mul_row_broadcast(n1, g1);
        let a = self.attn.forward(tape, store, n1);
        let x = tape.add(x, a);
        let n2 = tape.layer_norm_rows(x);
        let g2 = tape.param(store, self.gain2);
        let n2 = tape.mul_row_broadcast(n2, g2);
        let f = self.ffn.forward(tape, store, n2);
        tape.add(x, f)
    }
}

/// Moving-average series decomposition (DLinear / FEDformer style):
/// returns `(trend, seasonal)` with `trend + seasonal == input`.
pub fn decompose(window: &[f64], kernel: usize) -> (Vec<f64>, Vec<f64>) {
    let n = window.len();
    let k = kernel.clamp(1, n);
    let half = k / 2;
    let mut trend = Vec::with_capacity(n);
    for t in 0..n {
        // Replicate-padded centered mean, matching DLinear's AvgPool1d with
        // front/back padding.
        let mut acc = 0.0;
        for o in 0..k {
            let idx = (t + o).saturating_sub(half).min(n - 1);
            acc += window[idx];
        }
        trend.push(acc / k as f64);
    }
    let seasonal: Vec<f64> = window.iter().zip(&trend).map(|(x, t)| x - t).collect();
    (trend, seasonal)
}

/// Real DFT features: the first `modes` cosine and sine projections of the
/// window (a fixed, dimensionality-reducing frequency transform — the
/// "frequency enhanced" front end of the FEDformer miniature).
pub fn dft_features(window: &[f64], modes: usize) -> Vec<f64> {
    let n = window.len().max(1);
    let mut out = Vec::with_capacity(2 * modes);
    for m in 1..=modes {
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &x) in window.iter().enumerate() {
            let theta = std::f64::consts::TAU * (m * t) as f64 / n as f64;
            re += x * theta.cos();
            im -= x * theta.sin();
        }
        out.push(re / n as f64);
        out.push(im / n as f64);
    }
    out
}

/// Legendre polynomial projection of the window onto the first `k` basis
/// functions (the HiPPO-style memory of the FiLM miniature). Returns the
/// projection coefficients.
pub fn legendre_features(window: &[f64], k: usize) -> Vec<f64> {
    let n = window.len();
    if n == 0 {
        return vec![0.0; k];
    }
    // Evaluate P_0..P_{k-1} on the grid mapped to [-1, 1] via the
    // recurrence (m+1) P_{m+1}(x) = (2m+1) x P_m(x) - m P_{m-1}(x).
    let mut coeffs = vec![0.0; k];
    for (t, &y) in window.iter().enumerate() {
        let x = if n == 1 {
            0.0
        } else {
            2.0 * t as f64 / (n - 1) as f64 - 1.0
        };
        let mut p_prev = 1.0;
        let mut p_cur = x;
        for (m, c) in coeffs.iter_mut().enumerate() {
            let p = match m {
                0 => 1.0,
                1 => x,
                _ => {
                    let mm = (m - 1) as f64;
                    let next = ((2.0 * mm + 1.0) * x * p_cur - mm * p_prev) / (mm + 1.0);
                    p_prev = p_cur;
                    p_cur = next;
                    next
                }
            };
            // (2m+1)/2 is the L2 normalization weight on [-1, 1].
            *c += y * p * (2.0 * m as f64 + 1.0) / n as f64;
        }
    }
    coeffs
}

/// Per-window reversible instance normalization: returns the normalized
/// window plus `(mean, std)` to denormalize predictions.
pub fn revin_normalize(window: &[f64]) -> (Vec<f64>, f64, f64) {
    let n = window.len().max(1) as f64;
    let mean = window.iter().sum::<f64>() / n;
    let var = window.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let std = var.sqrt().max(1e-6);
    let normed = window.iter().map(|x| (x - mean) / std).collect();
    (normed, mean, std)
}

/// Inverse of [`revin_normalize`] applied to a forecast.
pub fn revin_denormalize(forecast: &mut [f64], mean: f64, std: f64) {
    for v in forecast.iter_mut() {
        *v = *v * std + mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_layer_shapes() {
        let mut store = ParamStore::new(1);
        let lin = Linear::new(&mut store, 4, 3);
        let mut tape = Tape::new();
        let x = tape.input(&[1.0; 8], 2, 4);
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (2, 3));
    }

    #[test]
    fn attention_preserves_shape() {
        let mut store = ParamStore::new(2);
        let attn = SelfAttention::new(&mut store, 8);
        let mut tape = Tape::new();
        let x = tape.input(&vec![0.1; 5 * 8], 5, 8);
        let y = attn.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (5, 8));
    }

    #[test]
    fn encoder_layer_trains_end_to_end() {
        // Verify gradients flow: one Adam step changes the output.
        let mut store = ParamStore::new(3);
        let enc = EncoderLayer::new(&mut store, 4);
        let head = Linear::new(&mut store, 4, 1);
        let eval = |store: &ParamStore| {
            let mut tape = Tape::new();
            let x = tape.input(&[0.5, -0.2, 0.3, 0.8, 0.1, 0.9, -0.5, 0.2], 2, 4);
            let h = enc.forward(&mut tape, store, x);
            let y = head.forward(&mut tape, store, h);
            let sq = tape.mul_elem(y, y);
            let l = tape.mean_all(sq);
            (tape, l)
        };
        let before = {
            let (tape, loss) = eval(&store);
            tape.value(loss)[0]
        };
        let mut adam = crate::optim::Adam::new(0.01);
        for _ in 0..20 {
            let (mut tape, loss) = eval(&store);
            tape.backward(loss);
            tape.param_grads(&mut store);
            adam.step(&mut store);
        }
        let (tape2, loss2) = eval(&store);
        let after = tape2.value(loss2)[0];
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn decompose_reconstructs_exactly() {
        let xs: Vec<f64> = (0..50)
            .map(|t| (t as f64 * 0.3).sin() + 0.1 * t as f64)
            .collect();
        let (trend, seasonal) = decompose(&xs, 25);
        for t in 0..50 {
            assert!((trend[t] + seasonal[t] - xs[t]).abs() < 1e-12);
        }
    }

    #[test]
    fn decompose_trend_is_smooth() {
        let xs: Vec<f64> = (0..60)
            .map(|t| 0.5 * t as f64 + 5.0 * (t as f64 * 1.3).sin())
            .collect();
        let (trend, _) = decompose(&xs, 25);
        // Trend differences should be far less volatile than the raw series.
        let raw_var: f64 = xs.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum();
        let trend_var: f64 = trend.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum();
        assert!(trend_var < raw_var / 4.0);
    }

    #[test]
    fn dft_features_pick_up_the_right_mode() {
        let xs: Vec<f64> = (0..64)
            .map(|t| (std::f64::consts::TAU * 4.0 * t as f64 / 64.0).cos())
            .collect();
        let f = dft_features(&xs, 8);
        // Mode 4 (index 2*(4-1) = 6) should dominate.
        let mag: Vec<f64> = f
            .chunks(2)
            .map(|c| (c[0] * c[0] + c[1] * c[1]).sqrt())
            .collect();
        let best = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 3);
    }

    #[test]
    fn legendre_features_capture_linear_trend() {
        let xs: Vec<f64> = (0..40).map(|t| 2.0 * t as f64 / 39.0 - 1.0).collect();
        let c = legendre_features(&xs, 4);
        // A pure linear ramp projects almost entirely onto P_1.
        assert!(c[1].abs() > 0.8, "{c:?}");
        assert!(c[0].abs() < 0.1 && c[2].abs() < 0.1);
    }

    #[test]
    fn revin_roundtrip() {
        let xs = vec![10.0, 12.0, 8.0, 11.0];
        let (normed, mean, std) = revin_normalize(&xs);
        let m: f64 = normed.iter().sum::<f64>() / 4.0;
        assert!(m.abs() < 1e-12);
        let mut back = normed.clone();
        revin_denormalize(&mut back, mean, std);
        for (a, b) in back.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

//! The sixteen miniature deep-learning forecasters plus a generic MLP.
//!
//! Each model keeps the architectural *inductive bias* of its namesake —
//! what the paper's Section 5.3 analysis attributes performance
//! differences to — at CPU-trainable size:
//!
//! | Kind | Bias kept |
//! |---|---|
//! | `NLinear` | linear map on a last-value-anchored window |
//! | `DLinear` | moving-average decomposition + two linear heads |
//! | `PatchTST` | patching + channel-independent self-attention |
//! | `Crossformer` | attention **across channel tokens** (channel-dependent) |
//! | `FEDformer` | frequency-domain filtering + decomposition |
//! | `Informer` | point-wise tokens + distilling (pooled) encoder |
//! | `Triformer` | patch attention with triangular (pooled) second stage |
//! | `Stationary` | per-window (de)standardization around attention |
//! | `TiDE` | dense encoder-decoder with linear skip |
//! | `NBeats` | residual backcast/forecast basis blocks |
//! | `NHiTS` | N-BEATS blocks at multiple pooling rates |
//! | `TimesNet` | period folding to 2-D + mixing |
//! | `MICN` | multi-scale causal convolution branches |
//! | `Tcn` | stacked dilated causal convolutions |
//! | `Rnn` | gated recurrence (GRU) |
//! | `FiLM` | Legendre (HiPPO) projection + frequency truncation |
//!
//! All models implement [`tfb_models::WindowForecaster`]. Channel-independent
//! models pool training windows across channels; `Crossformer` trains on
//! full multivariate windows.

use crate::blocks::{
    decompose, dft_features, legendre_features, revin_denormalize, revin_normalize, EncoderLayer,
    Linear, Mlp,
};
use crate::optim::{ParamId, ParamStore};
use crate::tape::{Tape, TensorRef};
use crate::train::{TrainConfig, Trainer};
use tfb_data::MultiSeries;
use tfb_math::matrix::Matrix;
use tfb_models::{ModelError, Result, WindowForecaster};

/// Which miniature architecture to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeepModelKind {
    /// Last-value-anchored linear model.
    NLinear,
    /// Decomposition + linear heads.
    DLinear,
    /// Patch transformer, channel independent.
    PatchTST,
    /// Cross-channel transformer.
    Crossformer,
    /// Frequency-enhanced decomposition model.
    FEDformer,
    /// Distilling point-wise transformer.
    Informer,
    /// Triangular two-stage patch attention.
    Triformer,
    /// Non-stationary (normalization-wrapped) transformer.
    Stationary,
    /// Dense encoder-decoder with skip.
    TiDE,
    /// Basis-expansion residual blocks.
    NBeats,
    /// Multi-rate basis-expansion blocks.
    NHiTS,
    /// Period-folding 2-D mixing.
    TimesNet,
    /// Multi-scale convolution.
    MICN,
    /// Dilated causal convolution stack.
    Tcn,
    /// Gated recurrent network.
    Rnn,
    /// Legendre-projection frequency model.
    FiLM,
    /// Plain two-layer MLP baseline.
    Mlp,
}

impl DeepModelKind {
    /// All sixteen paper baselines (excludes the extra `Mlp`).
    pub const PAPER_BASELINES: [DeepModelKind; 16] = [
        DeepModelKind::NLinear,
        DeepModelKind::DLinear,
        DeepModelKind::PatchTST,
        DeepModelKind::Crossformer,
        DeepModelKind::FEDformer,
        DeepModelKind::Informer,
        DeepModelKind::Triformer,
        DeepModelKind::Stationary,
        DeepModelKind::TiDE,
        DeepModelKind::NBeats,
        DeepModelKind::NHiTS,
        DeepModelKind::TimesNet,
        DeepModelKind::MICN,
        DeepModelKind::Tcn,
        DeepModelKind::Rnn,
        DeepModelKind::FiLM,
    ];

    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            DeepModelKind::NLinear => "NLinear",
            DeepModelKind::DLinear => "DLinear",
            DeepModelKind::PatchTST => "PatchTST",
            DeepModelKind::Crossformer => "Crossformer",
            DeepModelKind::FEDformer => "FEDformer",
            DeepModelKind::Informer => "Informer",
            DeepModelKind::Triformer => "Triformer",
            DeepModelKind::Stationary => "Stationary",
            DeepModelKind::TiDE => "TiDE",
            DeepModelKind::NBeats => "N-BEATS",
            DeepModelKind::NHiTS => "N-HiTS",
            DeepModelKind::TimesNet => "TimesNet",
            DeepModelKind::MICN => "MICN",
            DeepModelKind::Tcn => "TCN",
            DeepModelKind::Rnn => "RNN",
            DeepModelKind::FiLM => "FiLM",
            DeepModelKind::Mlp => "MLP",
        }
    }

    /// Inverse of [`label`](DeepModelKind::label): resolves a display
    /// name back to its kind (used when loading a model artifact).
    pub fn from_label(label: &str) -> Option<DeepModelKind> {
        DeepModelKind::PAPER_BASELINES
            .iter()
            .copied()
            .chain(std::iter::once(DeepModelKind::Mlp))
            .find(|k| k.label() == label)
    }

    /// The architecture family used by the Figure 9 family comparison.
    pub fn family(self) -> &'static str {
        match self {
            DeepModelKind::NLinear
            | DeepModelKind::DLinear
            | DeepModelKind::TiDE
            | DeepModelKind::NBeats
            | DeepModelKind::NHiTS
            | DeepModelKind::Mlp
            | DeepModelKind::FiLM => "Linear/MLP",
            DeepModelKind::PatchTST
            | DeepModelKind::Crossformer
            | DeepModelKind::FEDformer
            | DeepModelKind::Informer
            | DeepModelKind::Triformer
            | DeepModelKind::Stationary => "Transformer",
            DeepModelKind::TimesNet | DeepModelKind::MICN | DeepModelKind::Tcn => "CNN",
            DeepModelKind::Rnn => "RNN",
        }
    }

    /// Whether the model consumes all channels jointly.
    pub fn is_cross_channel(self) -> bool {
        matches!(self, DeepModelKind::Crossformer)
    }
}

/// Input preprocessing applied outside the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Preprocess {
    /// Raw window.
    None,
    /// Per-window standardization, undone on the forecast (RevIN).
    RevIn,
    /// Subtract the window's last value, add it back to the forecast.
    LastValue,
}

/// The architecture graph: per-kind parameter handles and blocks.
#[allow(clippy::large_enum_variant)] // parameter *handles* only; built once per model
enum Arch {
    NLinear {
        head: Linear,
    },
    DLinear {
        trend_head: Linear,
        seasonal_head: Linear,
        kernel: usize,
    },
    PatchLike {
        embed: Linear,
        pos: ParamId,
        enc1: EncoderLayer,
        enc2: Option<EncoderLayer>,
        /// Pool stride between the two encoder stages (Informer distilling,
        /// Triformer triangular shrink); 1 disables.
        pool: usize,
        head: Linear,
        patch: usize,
        tokens: usize,
    },
    Crossformer {
        embed: Linear,
        enc: EncoderLayer,
        head: Linear,
    },
    FedFormer {
        freq_mlp: Mlp,
        trend_head: Linear,
        modes: usize,
        kernel: usize,
    },
    Tide {
        skip: Linear,
        encoder: Mlp,
        decoder: Mlp,
    },
    Beats {
        /// (block MLP, backcast head, forecast head, pool stride)
        blocks: Vec<(Mlp, Linear, Linear, usize)>,
    },
    TimesNet {
        row_mix: ParamId,
        col_mix: ParamId,
        head: Linear,
        period: usize,
        rows: usize,
    },
    Micn {
        convs: Vec<(ParamId, usize)>,
        head: Mlp,
        channels: usize,
    },
    Tcn {
        convs: Vec<(ParamId, usize, usize)>,
        head: Linear,
        channels: usize,
    },
    Gru {
        wz: Linear,
        wr: Linear,
        wh: Linear,
        head: Linear,
        hidden: usize,
        steps: usize,
        stride: usize,
    },
    Film {
        mlp: Mlp,
        k: usize,
        modes: usize,
    },
    Mlp {
        mlp: Mlp,
    },
}

/// A deep forecaster: architecture + parameters + training configuration.
pub struct DeepModel {
    kind: DeepModelKind,
    lookback: usize,
    horizon: usize,
    store: ParamStore,
    arch: Arch,
    preprocess: Preprocess,
    /// Training configuration (public so studies can shrink budgets).
    pub config: TrainConfig,
    trained: bool,
    /// Channel count, fixed at training time for cross-channel models.
    dim: usize,
}

impl DeepModel {
    /// Builds an untrained model for the given look-back and horizon.
    /// Cross-channel models additionally need the channel count `dim`.
    pub fn new(kind: DeepModelKind, lookback: usize, horizon: usize, dim: usize) -> DeepModel {
        let mut store = ParamStore::new(kind_seed(kind));
        let l = lookback;
        let f = horizon;
        let d_model = 24usize;
        let preprocess = match kind {
            DeepModelKind::NLinear => Preprocess::LastValue,
            DeepModelKind::DLinear | DeepModelKind::FEDformer => Preprocess::None,
            _ => Preprocess::RevIn,
        };
        let arch = match kind {
            DeepModelKind::NLinear => Arch::NLinear {
                head: Linear::new(&mut store, l, f),
            },
            DeepModelKind::DLinear => Arch::DLinear {
                trend_head: Linear::new(&mut store, l, f),
                seasonal_head: Linear::new(&mut store, l, f),
                kernel: 25.min(l.max(1)),
            },
            DeepModelKind::PatchTST | DeepModelKind::Stationary => {
                let patch = if kind == DeepModelKind::PatchTST {
                    (l / 6).clamp(2, 16)
                } else {
                    // Stationary uses coarser point-group tokens.
                    (l / 16).clamp(1, 8)
                };
                let tokens = l.div_ceil(patch);
                Arch::PatchLike {
                    embed: Linear::new(&mut store, patch, d_model),
                    pos: store.add(tokens, d_model),
                    enc1: EncoderLayer::new(&mut store, d_model),
                    enc2: Some(EncoderLayer::new(&mut store, d_model)),
                    pool: 1,
                    head: Linear::new(&mut store, tokens * d_model, f),
                    patch,
                    tokens,
                }
            }
            DeepModelKind::Informer => {
                let patch = (l / 24).max(1);
                let tokens = l.div_ceil(patch);
                let pooled = tokens.div_ceil(2);
                Arch::PatchLike {
                    embed: Linear::new(&mut store, patch, d_model),
                    pos: store.add(tokens, d_model),
                    enc1: EncoderLayer::new(&mut store, d_model),
                    enc2: Some(EncoderLayer::new(&mut store, d_model)),
                    pool: 2,
                    head: Linear::new(&mut store, pooled * d_model, f),
                    patch,
                    tokens,
                }
            }
            DeepModelKind::Triformer => {
                let patch = (l / 8).clamp(2, 16);
                let tokens = l.div_ceil(patch);
                let pooled = tokens.div_ceil(3);
                Arch::PatchLike {
                    embed: Linear::new(&mut store, patch, d_model),
                    pos: store.add(tokens, d_model),
                    enc1: EncoderLayer::new(&mut store, d_model),
                    enc2: Some(EncoderLayer::new(&mut store, d_model)),
                    pool: 3,
                    head: Linear::new(&mut store, pooled * d_model, f),
                    patch,
                    tokens,
                }
            }
            DeepModelKind::Crossformer => Arch::Crossformer {
                embed: Linear::new(&mut store, l, d_model),
                enc: EncoderLayer::new(&mut store, d_model),
                head: Linear::new(&mut store, d_model, f),
            },
            DeepModelKind::FEDformer => {
                let modes = (l / 4).clamp(4, 16);
                Arch::FedFormer {
                    freq_mlp: Mlp::new(&mut store, 2 * modes, 2 * d_model, f),
                    trend_head: Linear::new(&mut store, l, f),
                    modes,
                    kernel: 25.min(l.max(1)),
                }
            }
            DeepModelKind::TiDE => Arch::Tide {
                skip: Linear::new(&mut store, l, f),
                encoder: Mlp::new(&mut store, l, 2 * d_model, d_model),
                decoder: Mlp::new(&mut store, d_model, 2 * d_model, f),
            },
            DeepModelKind::NBeats => {
                let blocks = (0..3)
                    .map(|_| {
                        (
                            Mlp::new(&mut store, l, 2 * d_model, d_model),
                            Linear::new(&mut store, d_model, l),
                            Linear::new(&mut store, d_model, f),
                            1usize,
                        )
                    })
                    .collect();
                Arch::Beats { blocks }
            }
            DeepModelKind::NHiTS => {
                let blocks = [1usize, 2, 4]
                    .iter()
                    .map(|&stride| {
                        let pooled = l.div_ceil(stride);
                        (
                            Mlp::new(&mut store, pooled, 2 * d_model, d_model),
                            Linear::new(&mut store, d_model, l),
                            Linear::new(&mut store, d_model, f),
                            stride,
                        )
                    })
                    .collect();
                Arch::Beats { blocks }
            }
            DeepModelKind::TimesNet => {
                let period = ((l as f64).sqrt().round() as usize).clamp(2, 24.min(l.max(2)));
                let rows = (l / period).max(1);
                Arch::TimesNet {
                    row_mix: store.add(rows, rows),
                    col_mix: store.add(period, period),
                    head: Linear::new(&mut store, rows * period, f),
                    period,
                    rows,
                }
            }
            DeepModelKind::MICN => {
                let channels = 8usize;
                let convs = [3usize, 5, 7]
                    .iter()
                    .map(|&k| (store.add(k, channels), k))
                    .collect();
                Arch::Micn {
                    convs,
                    head: Mlp::new(&mut store, 3 * channels + l.min(16), d_model, f),
                    channels,
                }
            }
            DeepModelKind::Tcn => {
                let channels = 12usize;
                let mut convs = Vec::new();
                let mut in_ch = 1usize;
                for &dil in &[1usize, 2, 4] {
                    convs.push((store.add(3 * in_ch, channels), 3usize, dil));
                    in_ch = channels;
                }
                Arch::Tcn {
                    convs,
                    head: Linear::new(&mut store, channels, f),
                    channels,
                }
            }
            DeepModelKind::Rnn => {
                let hidden = 24usize;
                let steps = l.min(32);
                let stride = l.div_ceil(steps);
                Arch::Gru {
                    wz: Linear::new(&mut store, hidden + 1, hidden),
                    wr: Linear::new(&mut store, hidden + 1, hidden),
                    wh: Linear::new(&mut store, hidden + 1, hidden),
                    head: Linear::new(&mut store, hidden, f),
                    hidden,
                    steps,
                    stride,
                }
            }
            DeepModelKind::FiLM => {
                let k = 16.min(l.max(2));
                let modes = (l / 4).clamp(2, 8);
                Arch::Film {
                    mlp: Mlp::new(&mut store, k + 2 * modes, 2 * d_model, f),
                    k,
                    modes,
                }
            }
            DeepModelKind::Mlp => Arch::Mlp {
                mlp: Mlp::new(&mut store, l, 2 * d_model, f),
            },
        };
        DeepModel {
            kind,
            lookback,
            horizon,
            store,
            arch,
            preprocess,
            config: TrainConfig::default(),
            trained: false,
            dim: if kind.is_cross_channel() {
                dim.max(1)
            } else {
                1
            },
        }
    }

    /// Which architecture this model instantiates.
    pub fn kind(&self) -> DeepModelKind {
        self.kind
    }

    /// Forward pass for one (preprocessed) input vector.
    ///
    /// Channel-independent models receive a single channel's window
    /// (`len == lookback`) and return `1 x horizon`; the cross-channel
    /// model receives a time-major multivariate window and returns
    /// `1 x horizon * dim` (time-major).
    pub(crate) fn forward(&self, tape: &mut Tape, input: &[f64]) -> TensorRef {
        run_forward(
            &self.arch,
            self.lookback,
            self.horizon,
            self.dim,
            tape,
            &self.store,
            input,
        )
    }
}

/// Architecture forward pass, store passed explicitly so the trainer can
/// hold the mutable store between passes.
fn run_forward(
    arch: &Arch,
    l: usize,
    f: usize,
    dim: usize,
    tape: &mut Tape,
    store: &ParamStore,
    input: &[f64],
) -> TensorRef {
    {
        match arch {
            Arch::NLinear { head } => {
                let x = tape.input(input, 1, l);
                head.forward(tape, store, x)
            }
            Arch::DLinear {
                trend_head,
                seasonal_head,
                kernel,
            } => {
                let (trend, seasonal) = decompose(input, *kernel);
                let xt = tape.input(&trend, 1, l);
                let xs = tape.input(&seasonal, 1, l);
                let yt = trend_head.forward(tape, store, xt);
                let ys = seasonal_head.forward(tape, store, xs);
                tape.add(yt, ys)
            }
            Arch::PatchLike {
                embed,
                pos,
                enc1,
                enc2,
                pool,
                head,
                patch,
                tokens,
                ..
            } => {
                // Right-align the window into whole patches (pad by
                // repeating the first value when l % patch != 0).
                let mut padded = Vec::with_capacity(tokens * patch);
                let missing = tokens * patch - l;
                padded.extend(std::iter::repeat_n(input[0], missing));
                padded.extend_from_slice(input);
                let x = tape.input(&padded, *tokens, *patch);
                let emb = embed.forward(tape, store, x);
                let pos_t = tape.param(store, *pos);
                let mut h = tape.add(emb, pos_t);
                h = enc1.forward(tape, store, h);
                if *pool > 1 {
                    h = tape.avg_pool_rows(h, *pool);
                }
                if let Some(enc2) = enc2 {
                    h = enc2.forward(tape, store, h);
                }
                let (hr, hc) = tape.shape(h);
                let flat = tape.reshape(h, 1, hr * hc);
                head.forward(tape, store, flat)
            }
            Arch::Crossformer { embed, enc, head } => {
                // input is time-major (l, dim): transpose to channel tokens.
                let x = tape.input(input, l, dim);
                let xt = tape.transpose(x); // (dim, l)
                let emb = embed.forward(tape, store, xt); // (dim, d)
                let h = enc.forward(tape, store, emb);
                let y = head.forward(tape, store, h); // (dim, f)
                                                      // Back to time-major 1 x (f * dim).
                let yt = tape.transpose(y); // (f, dim)
                tape.reshape(yt, 1, f * dim)
            }
            Arch::FedFormer {
                freq_mlp,
                trend_head,
                modes,
                kernel,
            } => {
                let (trend, seasonal) = decompose(input, *kernel);
                let freq = dft_features(&seasonal, *modes);
                let xf = tape.input(&freq, 1, 2 * modes);
                let ys = freq_mlp.forward(tape, store, xf);
                let xt = tape.input(&trend, 1, l);
                let yt = trend_head.forward(tape, store, xt);
                tape.add(ys, yt)
            }
            Arch::Tide {
                skip,
                encoder,
                decoder,
            } => {
                let x = tape.input(input, 1, l);
                let lin = skip.forward(tape, store, x);
                let h = encoder.forward(tape, store, x);
                let h = tape.relu(h);
                let dec = decoder.forward(tape, store, h);
                tape.add(lin, dec)
            }
            Arch::Beats { blocks } => {
                let mut residual = tape.input(input, 1, l);
                let mut forecast: Option<TensorRef> = None;
                for (mlp, backcast, fcast, stride) in blocks {
                    let block_in = if *stride > 1 {
                        let as_rows = tape.reshape(residual, l, 1);
                        let pooled = tape.avg_pool_rows(as_rows, *stride);
                        let (pr, _) = tape.shape(pooled);
                        tape.reshape(pooled, 1, pr)
                    } else {
                        residual
                    };
                    let h = mlp.forward(tape, store, block_in);
                    let h = tape.relu(h);
                    let b = backcast.forward(tape, store, h);
                    let fo = fcast.forward(tape, store, h);
                    residual = tape.sub(residual, b);
                    forecast = Some(match forecast {
                        None => fo,
                        Some(acc) => tape.add(acc, fo),
                    });
                }
                forecast.expect("at least one block")
            }
            Arch::TimesNet {
                row_mix,
                col_mix,
                head,
                period,
                rows,
            } => {
                // Fold the most recent rows*period values into 2-D.
                let take = rows * period;
                let tail = &input[l - take..];
                let x = tape.input(tail, *rows, *period);
                let a = tape.param(store, *row_mix);
                let b = tape.param(store, *col_mix);
                let ax = tape.matmul(a, x);
                let axb = tape.matmul(ax, b);
                let mixed = tape.relu(axb);
                // Residual connection keeps the identity path.
                let res = tape.add(mixed, x);
                let flat = tape.reshape(res, 1, take);
                head.forward(tape, store, flat)
            }
            Arch::Micn {
                convs,
                head,
                channels,
            } => {
                let x = tape.input(input, l, 1);
                let mut feats: Option<TensorRef> = None;
                for (w, kernel) in convs {
                    let wt = tape.param(store, *w);
                    let c = tape.causal_conv1d(x, wt, *kernel, 1);
                    let c = tape.relu(c);
                    // Global average over time -> 1 x channels.
                    let pooled = tape.avg_pool_rows(c, l);
                    let pooled = tape.reshape(pooled, 1, *channels);
                    feats = Some(match feats {
                        None => pooled,
                        Some(acc) => tape.concat_cols(acc, pooled),
                    });
                }
                // Keep the most recent raw values as local context.
                let recent_n = l.min(16);
                let recent = tape.input(&input[l - recent_n..], 1, recent_n);
                let all = tape.concat_cols(feats.expect("branches"), recent);
                head.forward(tape, store, all)
            }
            Arch::Tcn {
                convs,
                head,
                channels,
            } => {
                let mut h = tape.input(input, l, 1);
                for (w, kernel, dilation) in convs {
                    let wt = tape.param(store, *w);
                    h = tape.causal_conv1d(h, wt, *kernel, *dilation);
                    h = tape.relu(h);
                }
                // Select the final timestep's features via a selector row.
                let mut sel = vec![0.0; l];
                sel[l - 1] = 1.0;
                let s = tape.input(&sel, 1, l);
                let last = tape.matmul(s, h); // 1 x channels
                let last = tape.reshape(last, 1, *channels);
                head.forward(tape, store, last)
            }
            Arch::Gru {
                wz,
                wr,
                wh,
                head,
                hidden,
                steps,
                stride,
            } => {
                // Downsample the window to `steps` inputs.
                let mut h = tape.input(&vec![0.0; *hidden], 1, *hidden);
                for s in 0..*steps {
                    let start = s * stride;
                    let end = ((s + 1) * stride).min(l);
                    if start >= end {
                        break;
                    }
                    let xval = input[start..end].iter().sum::<f64>() / (end - start) as f64;
                    let xt = tape.input(&[xval], 1, 1);
                    let hx = tape.concat_cols(h, xt);
                    let z = wz.forward(tape, store, hx);
                    let z = tape.sigmoid(z);
                    let r = wr.forward(tape, store, hx);
                    let r = tape.sigmoid(r);
                    let rh = tape.mul_elem(r, h);
                    let rhx = tape.concat_cols(rh, xt);
                    let cand = wh.forward(tape, store, rhx);
                    let cand = tape.tanh(cand);
                    // h = (1 - z) * h + z * cand = h + z * (cand - h)
                    let diff = tape.sub(cand, h);
                    let upd = tape.mul_elem(z, diff);
                    h = tape.add(h, upd);
                }
                head.forward(tape, store, h)
            }
            Arch::Film { mlp, k, modes } => {
                let mut feats = legendre_features(input, *k);
                feats.extend(dft_features(input, *modes));
                let x = tape.input(&feats, 1, k + 2 * modes);
                mlp.forward(tape, store, x)
            }
            Arch::Mlp { mlp } => {
                let x = tape.input(input, 1, l);
                mlp.forward(tape, store, x)
            }
        }
    }
}

/// Batched forward for the pure row-map architectures.
///
/// Every row of `inputs` is one preprocessed channel window; row `r` of the
/// output is bit-identical to running [`run_forward`] on row `r` alone,
/// because every tape op these graphs use (matmul against shared weights
/// with ascending-`k` accumulation, row-broadcast bias, elementwise
/// add/sub/relu) treats rows independently in the same per-element order.
/// Returns `None` for architectures whose graphs are not a row map (patch
/// token layouts, attention, convolution stacks, recurrences, pooled
/// N-HiTS blocks) — those keep per-window inference.
fn run_forward_batch(
    arch: &Arch,
    l: usize,
    tape: &mut Tape,
    store: &ParamStore,
    inputs: Vec<f64>,
) -> Option<TensorRef> {
    debug_assert_eq!(inputs.len() % l.max(1), 0);
    let b = inputs.len() / l.max(1);
    match arch {
        Arch::NLinear { head } => {
            let x = tape.input_owned(inputs, b, l);
            Some(head.forward(tape, store, x))
        }
        Arch::DLinear {
            trend_head,
            seasonal_head,
            kernel,
        } => {
            let mut trends = Vec::with_capacity(b * l);
            let mut seasonals = Vec::with_capacity(b * l);
            for w in inputs.chunks_exact(l) {
                let (t, s) = decompose(w, *kernel);
                trends.extend_from_slice(&t);
                seasonals.extend_from_slice(&s);
            }
            let xt = tape.input_owned(trends, b, l);
            let xs = tape.input_owned(seasonals, b, l);
            let yt = trend_head.forward(tape, store, xt);
            let ys = seasonal_head.forward(tape, store, xs);
            Some(tape.add(yt, ys))
        }
        Arch::FedFormer {
            freq_mlp,
            trend_head,
            modes,
            kernel,
        } => {
            let mut freqs = Vec::with_capacity(b * 2 * modes);
            let mut trends = Vec::with_capacity(b * l);
            for w in inputs.chunks_exact(l) {
                let (t, s) = decompose(w, *kernel);
                freqs.extend(dft_features(&s, *modes));
                trends.extend_from_slice(&t);
            }
            let xf = tape.input_owned(freqs, b, 2 * modes);
            let ys = freq_mlp.forward(tape, store, xf);
            let xt = tape.input_owned(trends, b, l);
            let yt = trend_head.forward(tape, store, xt);
            Some(tape.add(ys, yt))
        }
        Arch::Tide {
            skip,
            encoder,
            decoder,
        } => {
            let x = tape.input_owned(inputs, b, l);
            let lin = skip.forward(tape, store, x);
            let h = encoder.forward(tape, store, x);
            let h = tape.relu(h);
            let dec = decoder.forward(tape, store, h);
            Some(tape.add(lin, dec))
        }
        Arch::Beats { blocks } if blocks.iter().all(|(_, _, _, stride)| *stride == 1) => {
            let mut residual = tape.input_owned(inputs, b, l);
            let mut forecast: Option<TensorRef> = None;
            for (mlp, backcast, fcast, _) in blocks {
                let h = mlp.forward(tape, store, residual);
                let h = tape.relu(h);
                let bk = backcast.forward(tape, store, h);
                let fo = fcast.forward(tape, store, h);
                residual = tape.sub(residual, bk);
                forecast = Some(match forecast {
                    None => fo,
                    Some(acc) => tape.add(acc, fo),
                });
            }
            forecast
        }
        Arch::Film { mlp, k, modes } => {
            let mut feats = Vec::with_capacity(b * (k + 2 * modes));
            for w in inputs.chunks_exact(l) {
                feats.extend(legendre_features(w, *k));
                feats.extend(dft_features(w, *modes));
            }
            let x = tape.input_owned(feats, b, k + 2 * modes);
            Some(mlp.forward(tape, store, x))
        }
        Arch::Mlp { mlp } => {
            let x = tape.input_owned(inputs, b, l);
            Some(mlp.forward(tape, store, x))
        }
        _ => None,
    }
}

impl DeepModel {
    /// Applies the model's preprocessing to an (input, target) pair.
    /// Returns the transformed pair plus the denormalization closure state.
    fn preprocess_pair(&self, input: &[f64], target: &[f64]) -> (Vec<f64>, Vec<f64>) {
        match self.preprocess {
            Preprocess::None => (input.to_vec(), target.to_vec()),
            Preprocess::RevIn => {
                let (normed, mean, std) = revin_normalize(input);
                let t = target.iter().map(|v| (v - mean) / std).collect();
                (normed, t)
            }
            Preprocess::LastValue => {
                let last = *input.last().expect("nonempty window");
                (
                    input.iter().map(|v| v - last).collect(),
                    target.iter().map(|v| v - last).collect(),
                )
            }
        }
    }

    fn preprocess_input(&self, input: &[f64]) -> (Vec<f64>, f64, f64) {
        match self.preprocess {
            Preprocess::None => (input.to_vec(), 0.0, 1.0),
            Preprocess::RevIn => {
                let (normed, mean, std) = revin_normalize(input);
                (normed, mean, std)
            }
            Preprocess::LastValue => {
                let last = *input.last().expect("nonempty window");
                (input.iter().map(|v| v - last).collect(), last, 1.0)
            }
        }
    }

    /// Builds (input, target) training pairs from a training split.
    fn training_pairs(&self, train: &MultiSeries) -> Result<tfb_data::window::LagSamples> {
        let l = self.lookback;
        let f = self.horizon;
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        if self.kind.is_cross_channel() {
            let n = train.len();
            if n < l + f {
                return Err(ModelError::InsufficientData("train split too short"));
            }
            let dim = train.dim();
            for s in 0..=(n - l - f) {
                let raw_in = &train.values()[s * dim..(s + l) * dim];
                let raw_tg = &train.values()[(s + l) * dim..(s + l + f) * dim];
                // RevIN per channel.
                let mut inp = vec![0.0; l * dim];
                let mut tgt = vec![0.0; f * dim];
                for c in 0..dim {
                    let ch_in: Vec<f64> = (0..l).map(|t| raw_in[t * dim + c]).collect();
                    let ch_tg: Vec<f64> = (0..f).map(|t| raw_tg[t * dim + c]).collect();
                    let (ni, nt) = self.preprocess_pair(&ch_in, &ch_tg);
                    for t in 0..l {
                        inp[t * dim + c] = ni[t];
                    }
                    for t in 0..f {
                        tgt[t * dim + c] = nt[t];
                    }
                }
                inputs.push(inp);
                targets.push(tgt);
            }
        } else {
            let (xs, ys) =
                tfb_models::tabular::pooled_lag_samples(train, l, f, self.config.max_samples)?;
            for (x, y) in xs.iter().zip(&ys) {
                let (i, t) = self.preprocess_pair(x, y);
                inputs.push(i);
                targets.push(t);
            }
        }
        if inputs.is_empty() {
            return Err(ModelError::InsufficientData("no training windows"));
        }
        Ok((inputs, targets))
    }
}

impl DeepModel {
    /// The channel count fixed at training time (1 for channel-
    /// independent models).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Owned copies of every parameter tensor with its shape, in
    /// registration order — what a model artifact persists.
    pub fn export_tensors(&self) -> Vec<(Vec<f64>, usize, usize)> {
        self.store
            .tensors()
            .into_iter()
            .map(|(v, r, c)| (v.to_vec(), r, c))
            .collect()
    }

    /// Rebuilds a trained model from tensors exported by
    /// [`export_tensors`](DeepModel::export_tensors). Architecture
    /// construction is deterministic in `(kind, lookback, horizon)`, so
    /// the registration sequence matches the exporting model's; any
    /// count or shape mismatch (a corrupt or mislabeled artifact) is a
    /// structured error, not a panic.
    pub fn from_tensors(
        kind: DeepModelKind,
        lookback: usize,
        horizon: usize,
        dim: usize,
        tensors: &[(Vec<f64>, usize, usize)],
    ) -> std::result::Result<DeepModel, String> {
        let mut model = DeepModel::new(kind, lookback, horizon, dim);
        model.store.load_tensors(tensors)?;
        model.trained = true;
        Ok(model)
    }
}

fn kind_seed(kind: DeepModelKind) -> u64 {
    // Stable per-architecture seeds keep runs reproducible.
    DeepModelKind::PAPER_BASELINES
        .iter()
        .position(|&k| k == kind)
        .unwrap_or(16) as u64
        + 1000
}

impl WindowForecaster for DeepModel {
    fn name(&self) -> &'static str {
        self.kind.label()
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn train(&mut self, train: &MultiSeries) -> Result<()> {
        if self.kind.is_cross_channel() {
            self.dim = train.dim();
        }
        // Rebuild the parameters so training is idempotent: retraining the
        // same instance starts from the same seeded initialization instead
        // of continuing from the previous run's weights. (This also resizes
        // cross-channel shapes when the data's dim differs from the
        // constructor's.)
        let rebuilt = DeepModel::new(self.kind, self.lookback, self.horizon, self.dim);
        self.store = rebuilt.store;
        self.arch = rebuilt.arch;
        let (inputs, targets) = self.training_pairs(train)?;
        let trainer = Trainer::new(self.config);
        let arch = &self.arch;
        let (l, f, dim) = (self.lookback, self.horizon, self.dim);
        trainer.fit(&mut self.store, &inputs, &targets, |tape, store, input| {
            run_forward(arch, l, f, dim, tape, store, input)
        })?;
        self.trained = true;
        Ok(())
    }

    fn predict(&self, window: &[f64], dim: usize) -> Result<Vec<f64>> {
        if !self.trained {
            return Err(ModelError::NotTrained);
        }
        let l = self.lookback;
        let f = self.horizon;
        if self.kind.is_cross_channel() {
            if dim != self.dim {
                return Err(ModelError::InvalidParameter("dim differs from training"));
            }
            // RevIN per channel on the multivariate window.
            let mut inp = vec![0.0; l * dim];
            let mut stats = Vec::with_capacity(dim);
            for c in 0..dim {
                let ch: Vec<f64> = (0..l).map(|t| window[t * dim + c]).collect();
                let (n, mean, std) = self.preprocess_input(&ch);
                for t in 0..l {
                    inp[t * dim + c] = n[t];
                }
                stats.push((mean, std));
            }
            let mut tape = Tape::new();
            let out = self.forward(&mut tape, &inp);
            let mut y = tape.value(out).to_vec();
            for (i, v) in y.iter_mut().enumerate() {
                let (mean, std) = stats[i % dim];
                *v = *v * std + mean;
            }
            debug_assert_eq!(y.len(), f * dim);
            Ok(y)
        } else {
            let channels = tfb_models::window_channels(window, dim);
            let mut per_channel = Vec::with_capacity(dim);
            for ch in &channels {
                if ch.len() != l {
                    return Err(ModelError::InvalidParameter("window length != lookback"));
                }
                let (inp, mean, std) = self.preprocess_input(ch);
                let mut tape = Tape::new();
                let out = self.forward(&mut tape, &inp);
                let mut y = tape.value(out).to_vec();
                match self.preprocess {
                    Preprocess::None => {}
                    Preprocess::RevIn => revin_denormalize(&mut y, mean, std),
                    Preprocess::LastValue => {
                        for v in y.iter_mut() {
                            *v += mean;
                        }
                    }
                }
                per_channel.push(y);
            }
            Ok(tfb_models::interleave_channels(&per_channel))
        }
    }

    /// Batches all windows (and channels) through a single tape when the
    /// architecture is a pure row map; other architectures fall back to
    /// per-window [`predict`]. Either way the results are bit-identical to
    /// per-window inference.
    fn predict_batch(&self, windows: &Matrix, dim: usize) -> Result<Matrix> {
        if !self.trained {
            return Err(ModelError::NotTrained);
        }
        let l = self.lookback;
        let f = self.horizon;
        if dim == 0 || windows.cols() != l * dim {
            return Err(ModelError::InvalidParameter("window length != lookback"));
        }
        let n = windows.rows();
        let fallback = || -> Result<Matrix> {
            let mut out = Matrix::zeros(n, f * dim);
            for r in 0..n {
                let y = self.predict(windows.row(r), dim)?;
                out.data_mut()[r * f * dim..(r + 1) * f * dim].copy_from_slice(&y);
            }
            Ok(out)
        };
        if self.kind.is_cross_channel() || n == 0 {
            return fallback();
        }
        // Channel-independent: each (window, channel) pair becomes one
        // batch row, preprocessed exactly as predict() would.
        let mut inputs = Vec::with_capacity(n * dim * l);
        let mut stats = Vec::with_capacity(n * dim);
        for r in 0..n {
            let w = windows.row(r);
            for c in 0..dim {
                let ch: Vec<f64> = (0..l).map(|t| w[t * dim + c]).collect();
                let (inp, mean, std) = self.preprocess_input(&ch);
                inputs.extend_from_slice(&inp);
                stats.push((mean, std));
            }
        }
        let mut tape = Tape::new();
        let Some(out_t) = run_forward_batch(&self.arch, l, &mut tape, &self.store, inputs) else {
            return fallback();
        };
        let y = tape.value(out_t);
        debug_assert_eq!(y.len(), n * dim * f);
        let mut out = Matrix::zeros(n, f * dim);
        for r in 0..n {
            for c in 0..dim {
                let (mean, std) = stats[r * dim + c];
                let row = &y[(r * dim + c) * f..(r * dim + c + 1) * f];
                for (h, &v) in row.iter().enumerate() {
                    out[(r, h * dim + c)] = match self.preprocess {
                        Preprocess::None => v,
                        Preprocess::RevIn => v * std + mean,
                        Preprocess::LastValue => v + mean,
                    };
                }
            }
        }
        Ok(out)
    }

    fn parameter_count(&self) -> usize {
        self.store.parameter_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};

    fn sine_series(n: usize, period: f64) -> MultiSeries {
        let xs: Vec<f64> = (0..n)
            .map(|t| (std::f64::consts::TAU * t as f64 / period).sin())
            .collect();
        MultiSeries::from_channels("s", Frequency::Hourly, Domain::Energy, &[xs]).unwrap()
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 0.01,
            max_samples: 256,
            patience: 10,
            val_fraction: 0.2,
            seed: 0,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn every_kind_builds_trains_and_predicts() {
        let s = sine_series(160, 12.0);
        for kind in DeepModelKind::PAPER_BASELINES
            .iter()
            .copied()
            .chain([DeepModelKind::Mlp])
        {
            let mut m = DeepModel::new(kind, 24, 6, 1);
            m.config = quick_config();
            m.config.epochs = 3;
            m.train(&s)
                .unwrap_or_else(|e| panic!("{kind:?} train: {e}"));
            let window: Vec<f64> = (0..24)
                .map(|t| (std::f64::consts::TAU * (136 + t) as f64 / 12.0).sin())
                .collect();
            let f = m
                .predict(&window, 1)
                .unwrap_or_else(|e| panic!("{kind:?} predict: {e}"));
            assert_eq!(f.len(), 6, "{kind:?}");
            assert!(f.iter().all(|v| v.is_finite()), "{kind:?}: {f:?}");
            assert!(m.parameter_count() > 0, "{kind:?}");
        }
    }

    #[test]
    fn nlinear_learns_sine_continuation() {
        let s = sine_series(400, 16.0);
        let mut m = DeepModel::new(DeepModelKind::NLinear, 32, 8, 1);
        m.config = quick_config();
        m.config.epochs = 80;
        m.train(&s).unwrap();
        let window: Vec<f64> = (368..400)
            .map(|t| (std::f64::consts::TAU * t as f64 / 16.0).sin())
            .collect();
        let f = m.predict(&window, 1).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = (std::f64::consts::TAU * (400 + h) as f64 / 16.0).sin();
            assert!((v - expect).abs() < 0.25, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn nlinear_transfers_to_shifted_levels() {
        // The LastValue anchor makes NLinear robust to level shifts.
        let s = sine_series(300, 16.0);
        let mut m = DeepModel::new(DeepModelKind::NLinear, 32, 4, 1);
        m.config = quick_config();
        m.config.epochs = 60;
        m.train(&s).unwrap();
        let window: Vec<f64> = (268..300)
            .map(|t| 50.0 + (std::f64::consts::TAU * t as f64 / 16.0).sin())
            .collect();
        let f = m.predict(&window, 1).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expect = 50.0 + (std::f64::consts::TAU * (300 + h) as f64 / 16.0).sin();
            assert!((v - expect).abs() < 0.6, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn crossformer_consumes_multivariate_windows() {
        let n = 200;
        let base: Vec<f64> = (0..n)
            .map(|t| (std::f64::consts::TAU * t as f64 / 10.0).sin())
            .collect();
        let other: Vec<f64> = base.iter().map(|v| 2.0 * v + 1.0).collect();
        let s = MultiSeries::from_channels("m", Frequency::Hourly, Domain::Traffic, &[base, other])
            .unwrap();
        let mut m = DeepModel::new(DeepModelKind::Crossformer, 20, 5, 2);
        m.config = quick_config();
        m.config.epochs = 5;
        m.train(&s).unwrap();
        let window = s.values()[(180 - 20) * 2..180 * 2].to_vec();
        let f = m.predict(&window, 2).unwrap();
        assert_eq!(f.len(), 10);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn predict_before_train_errors() {
        let m = DeepModel::new(DeepModelKind::Mlp, 8, 2, 1);
        assert!(matches!(
            m.predict(&[0.0; 8], 1),
            Err(ModelError::NotTrained)
        ));
    }

    #[test]
    fn batched_prediction_is_bit_identical_to_per_window() {
        // Covers every batched graph plus one per-window fallback (N-HiTS
        // pools between blocks, so it keeps single-window inference).
        let kinds = [
            DeepModelKind::NLinear,
            DeepModelKind::DLinear,
            DeepModelKind::FEDformer,
            DeepModelKind::TiDE,
            DeepModelKind::NBeats,
            DeepModelKind::FiLM,
            DeepModelKind::Mlp,
            DeepModelKind::NHiTS,
        ];
        let s = sine_series(160, 12.0);
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                (0..24)
                    .map(|t| {
                        (std::f64::consts::TAU * (i * 7 + t) as f64 / 12.0).sin() + 0.05 * i as f64
                    })
                    .collect()
            })
            .collect();
        let windows = Matrix::from_rows(&rows).unwrap();
        for kind in kinds {
            let mut m = DeepModel::new(kind, 24, 6, 1);
            m.config = quick_config();
            m.config.epochs = 2;
            m.train(&s).unwrap();
            let batched = m.predict_batch(&windows, 1).unwrap();
            assert_eq!(batched.rows(), 10);
            assert_eq!(batched.cols(), 6);
            for (r, w) in rows.iter().enumerate() {
                let single = m.predict(w, 1).unwrap();
                assert_eq!(batched.row(r), single.as_slice(), "{kind:?} window {r}");
            }
        }
    }

    #[test]
    fn batched_prediction_handles_multichannel_windows() {
        let n = 200;
        let a: Vec<f64> = (0..n)
            .map(|t| (std::f64::consts::TAU * t as f64 / 10.0).sin())
            .collect();
        let b: Vec<f64> = a.iter().map(|v| 2.0 * v + 1.0).collect();
        let s =
            MultiSeries::from_channels("m", Frequency::Hourly, Domain::Traffic, &[a, b]).unwrap();
        let mut m = DeepModel::new(DeepModelKind::DLinear, 20, 5, 2);
        m.config = quick_config();
        m.config.epochs = 2;
        m.train(&s).unwrap();
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|i| s.values()[i * 6 * 2..(i * 6 + 20) * 2].to_vec())
            .collect();
        let windows = Matrix::from_rows(&rows).unwrap();
        let batched = m.predict_batch(&windows, 2).unwrap();
        for (r, w) in rows.iter().enumerate() {
            let single = m.predict(w, 2).unwrap();
            assert_eq!(batched.row(r), single.as_slice(), "window {r}");
        }
    }

    #[test]
    fn families_are_assigned() {
        assert_eq!(DeepModelKind::PatchTST.family(), "Transformer");
        assert_eq!(DeepModelKind::Tcn.family(), "CNN");
        assert_eq!(DeepModelKind::NLinear.family(), "Linear/MLP");
        assert_eq!(DeepModelKind::Rnn.family(), "RNN");
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = DeepModelKind::PAPER_BASELINES
            .iter()
            .map(|k| k.label())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 16);
    }
}

//! A minimal define-by-run reverse-mode autodiff engine over 2-D tensors.
//!
//! Every forward pass builds a fresh [`Tape`]; [`Tape::backward`] walks the
//! nodes in reverse, and [`Tape::param_grads`] hands the accumulated
//! parameter gradients back to the [`crate::optim::ParamStore`]. Tensors
//! are dense row-major `f64` matrices — large enough for the miniature
//! forecasters, small enough to audit.

use crate::optim::{ParamId, ParamStore};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorRef(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    MulElem(usize, usize),
    Scale(usize, f64),
    AddRowBroadcast(usize, usize),
    MulRowBroadcast(usize, usize),
    Relu(usize),
    Tanh(usize),
    Sigmoid(usize),
    SoftmaxRows(usize),
    Transpose(usize),
    MeanAll(usize),
    ConcatCols(usize, usize),
    LayerNormRows(usize),
    AvgPoolRows(usize, usize),
    CausalConv1d {
        x: usize,
        w: usize,
        kernel: usize,
        dilation: usize,
    },
    Reshape(usize),
}

struct Node {
    value: Vec<f64>,
    grad: Vec<f64>,
    rows: usize,
    cols: usize,
    op: Op,
    param: Option<ParamId>,
}

/// The tape: an arena of nodes built during the forward pass.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Tape {
        Tape { nodes: Vec::new() }
    }

    fn push(&mut self, value: Vec<f64>, rows: usize, cols: usize, op: Op) -> TensorRef {
        debug_assert_eq!(value.len(), rows * cols);
        // Gradient buffers are allocated lazily by `backward`; forward-only
        // tapes (inference) never pay for them.
        self.nodes.push(Node {
            grad: Vec::new(),
            value,
            rows,
            cols,
            op,
            param: None,
        });
        TensorRef(self.nodes.len() - 1)
    }

    /// Loads a parameter onto the tape (gradients flow back to the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> TensorRef {
        let (value, rows, cols) = store.get(id);
        let r = self.push(value.to_vec(), rows, cols, Op::Leaf);
        self.nodes[r.0].param = Some(id);
        r
    }

    /// Loads constant input data (no gradient).
    pub fn input(&mut self, data: &[f64], rows: usize, cols: usize) -> TensorRef {
        self.push(data.to_vec(), rows, cols, Op::Leaf)
    }

    /// Loads constant input data by taking ownership of the buffer —
    /// [`Tape::input`] without the copy, for batch-sized operands.
    pub fn input_owned(&mut self, data: Vec<f64>, rows: usize, cols: usize) -> TensorRef {
        self.push(data, rows, cols, Op::Leaf)
    }

    /// Shape of a tensor.
    pub fn shape(&self, t: TensorRef) -> (usize, usize) {
        (self.nodes[t.0].rows, self.nodes[t.0].cols)
    }

    /// Value of a tensor.
    pub fn value(&self, t: TensorRef) -> &[f64] {
        &self.nodes[t.0].value
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: TensorRef, b: TensorRef) -> TensorRef {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ac, br, "matmul shape mismatch: {ar}x{ac} * {br}x{bc}");
        // Forward values go through the shared blocked GEMM (row-parallel
        // for large batches). Its per-element reduction runs over `k` in
        // ascending order with the same zero-skip as the historical ikj
        // loop here, so single-row and batched forwards agree to the last
        // bit at any thread count.
        let mut out = vec![0.0; ar * bc];
        tfb_math::matrix::par_gemm(
            &self.nodes[a.0].value,
            ar,
            ac,
            &self.nodes[b.0].value,
            bc,
            &mut out,
        );
        self.push(out, ar, bc, Op::MatMul(a.0, b.0))
    }

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: TensorRef, b: TensorRef) -> TensorRef {
        let (r, c) = self.assert_same_shape(a, b, "add");
        let v: Vec<f64> = self.nodes[a.0]
            .value
            .iter()
            .zip(&self.nodes[b.0].value)
            .map(|(x, y)| x + y)
            .collect();
        self.push(v, r, c, Op::Add(a.0, b.0))
    }

    /// Elementwise difference (same shape).
    pub fn sub(&mut self, a: TensorRef, b: TensorRef) -> TensorRef {
        let (r, c) = self.assert_same_shape(a, b, "sub");
        let v: Vec<f64> = self.nodes[a.0]
            .value
            .iter()
            .zip(&self.nodes[b.0].value)
            .map(|(x, y)| x - y)
            .collect();
        self.push(v, r, c, Op::Sub(a.0, b.0))
    }

    /// Elementwise product (same shape).
    pub fn mul_elem(&mut self, a: TensorRef, b: TensorRef) -> TensorRef {
        let (r, c) = self.assert_same_shape(a, b, "mul_elem");
        let v: Vec<f64> = self.nodes[a.0]
            .value
            .iter()
            .zip(&self.nodes[b.0].value)
            .map(|(x, y)| x * y)
            .collect();
        self.push(v, r, c, Op::MulElem(a.0, b.0))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: TensorRef, s: f64) -> TensorRef {
        let (r, c) = self.shape(a);
        let v: Vec<f64> = self.nodes[a.0].value.iter().map(|x| x * s).collect();
        self.push(v, r, c, Op::Scale(a.0, s))
    }

    /// Adds a `1 x cols` row vector to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: TensorRef, bias: TensorRef) -> TensorRef {
        let (r, c) = self.shape(a);
        let (br, bc) = self.shape(bias);
        assert!(br == 1 && bc == c, "bias must be 1 x cols");
        let mut v = self.nodes[a.0].value.clone();
        let bv = &self.nodes[bias.0].value;
        for row in v.chunks_exact_mut(c) {
            for (x, b) in row.iter_mut().zip(bv) {
                *x += b;
            }
        }
        self.push(v, r, c, Op::AddRowBroadcast(a.0, bias.0))
    }

    /// Multiplies every row of `a` elementwise by a `1 x cols` row vector.
    pub fn mul_row_broadcast(&mut self, a: TensorRef, gain: TensorRef) -> TensorRef {
        let (r, c) = self.shape(a);
        let (gr, gc) = self.shape(gain);
        assert!(gr == 1 && gc == c, "gain must be 1 x cols");
        let mut v = self.nodes[a.0].value.clone();
        let gv = &self.nodes[gain.0].value;
        for row in v.chunks_exact_mut(c) {
            for (x, g) in row.iter_mut().zip(gv) {
                *x *= g;
            }
        }
        self.push(v, r, c, Op::MulRowBroadcast(a.0, gain.0))
    }

    /// ReLU.
    pub fn relu(&mut self, a: TensorRef) -> TensorRef {
        let (r, c) = self.shape(a);
        let v: Vec<f64> = self.nodes[a.0].value.iter().map(|x| x.max(0.0)).collect();
        self.push(v, r, c, Op::Relu(a.0))
    }

    /// Tanh.
    pub fn tanh(&mut self, a: TensorRef) -> TensorRef {
        let (r, c) = self.shape(a);
        let v: Vec<f64> = self.nodes[a.0].value.iter().map(|x| x.tanh()).collect();
        self.push(v, r, c, Op::Tanh(a.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: TensorRef) -> TensorRef {
        let (r, c) = self.shape(a);
        let v: Vec<f64> = self.nodes[a.0]
            .value
            .iter()
            .map(|x| 1.0 / (1.0 + (-x).exp()))
            .collect();
        self.push(v, r, c, Op::Sigmoid(a.0))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: TensorRef) -> TensorRef {
        let (r, c) = self.shape(a);
        let mut v = self.nodes[a.0].value.clone();
        for row in v.chunks_mut(c) {
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        self.push(v, r, c, Op::SoftmaxRows(a.0))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: TensorRef) -> TensorRef {
        let (r, c) = self.shape(a);
        let av = &self.nodes[a.0].value;
        let mut v = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                v[j * r + i] = av[i * c + j];
            }
        }
        self.push(v, c, r, Op::Transpose(a.0))
    }

    /// Mean over all elements (returns a 1x1 tensor; the usual loss head).
    pub fn mean_all(&mut self, a: TensorRef) -> TensorRef {
        let n = self.nodes[a.0].value.len() as f64;
        let m = self.nodes[a.0].value.iter().sum::<f64>() / n;
        self.push(vec![m], 1, 1, Op::MeanAll(a.0))
    }

    /// Concatenates columns: `[a | b]` (same row count).
    pub fn concat_cols(&mut self, a: TensorRef, b: TensorRef) -> TensorRef {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ar, br, "concat_cols row mismatch");
        let mut v = Vec::with_capacity(ar * (ac + bc));
        for i in 0..ar {
            v.extend_from_slice(&self.nodes[a.0].value[i * ac..(i + 1) * ac]);
            v.extend_from_slice(&self.nodes[b.0].value[i * bc..(i + 1) * bc]);
        }
        self.push(v, ar, ac + bc, Op::ConcatCols(a.0, b.0))
    }

    /// Row-wise layer normalization (no affine; compose with
    /// [`Tape::mul_row_broadcast`] / [`Tape::add_row_broadcast`] for one).
    pub fn layer_norm_rows(&mut self, a: TensorRef) -> TensorRef {
        let (r, c) = self.shape(a);
        let mut v = self.nodes[a.0].value.clone();
        for row in v.chunks_mut(c) {
            let mean = row.iter().sum::<f64>() / c as f64;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / c as f64;
            let inv = 1.0 / (var + 1e-5).sqrt();
            for x in row.iter_mut() {
                *x = (*x - mean) * inv;
            }
        }
        self.push(v, r, c, Op::LayerNormRows(a.0))
    }

    /// Averages consecutive groups of `stride` rows (rows not divisible by
    /// the stride keep a smaller final group).
    pub fn avg_pool_rows(&mut self, a: TensorRef, stride: usize) -> TensorRef {
        assert!(stride >= 1, "stride must be >= 1");
        let (r, c) = self.shape(a);
        let out_rows = r.div_ceil(stride);
        let mut v = vec![0.0; out_rows * c];
        let av = &self.nodes[a.0].value;
        for g in 0..out_rows {
            let start = g * stride;
            let end = (start + stride).min(r);
            for row in start..end {
                for j in 0..c {
                    v[g * c + j] += av[row * c + j];
                }
            }
            let k = (end - start) as f64;
            for j in 0..c {
                v[g * c + j] /= k;
            }
        }
        self.push(v, out_rows, c, Op::AvgPoolRows(a.0, stride))
    }

    /// Causal dilated 1-D convolution. `x` is `(seq, in_ch)`, `w` is
    /// `(kernel * in_ch, out_ch)`; output is `(seq, out_ch)` with zero
    /// padding on the left.
    pub fn causal_conv1d(
        &mut self,
        x: TensorRef,
        w: TensorRef,
        kernel: usize,
        dilation: usize,
    ) -> TensorRef {
        let (seq, in_ch) = self.shape(x);
        let (wr, out_ch) = self.shape(w);
        assert_eq!(wr, kernel * in_ch, "conv weight shape");
        assert!(dilation >= 1);
        let xv = &self.nodes[x.0].value;
        let wv = &self.nodes[w.0].value;
        let mut v = vec![0.0; seq * out_ch];
        for t in 0..seq {
            for k in 0..kernel {
                let offset = k * dilation;
                if offset > t {
                    continue;
                }
                let src = t - offset;
                for ic in 0..in_ch {
                    let xval = xv[src * in_ch + ic];
                    if xval == 0.0 {
                        continue;
                    }
                    let wrow = &wv[(k * in_ch + ic) * out_ch..(k * in_ch + ic + 1) * out_ch];
                    let orow = &mut v[t * out_ch..(t + 1) * out_ch];
                    for (o, &ww) in orow.iter_mut().zip(wrow) {
                        *o += xval * ww;
                    }
                }
            }
        }
        self.push(
            v,
            seq,
            out_ch,
            Op::CausalConv1d {
                x: x.0,
                w: w.0,
                kernel,
                dilation,
            },
        )
    }

    /// Reinterprets the row-major data with a new shape (same element
    /// count); gradients pass through unchanged.
    pub fn reshape(&mut self, a: TensorRef, rows: usize, cols: usize) -> TensorRef {
        let (r, c) = self.shape(a);
        assert_eq!(r * c, rows * cols, "reshape element count mismatch");
        let v = self.nodes[a.0].value.clone();
        self.push(v, rows, cols, Op::Reshape(a.0))
    }

    fn assert_same_shape(&self, a: TensorRef, b: TensorRef, ctx: &str) -> (usize, usize) {
        let sa = self.shape(a);
        let sb = self.shape(b);
        assert_eq!(sa, sb, "{ctx}: shape mismatch {sa:?} vs {sb:?}");
        sa
    }

    /// Runs backpropagation from `loss` (must be 1x1) and returns nothing;
    /// gradients are available via [`Tape::param_grads`].
    pub fn backward(&mut self, loss: TensorRef) {
        assert_eq!(self.shape(loss), (1, 1), "loss must be scalar");
        for n in self.nodes.iter_mut() {
            if n.grad.len() == n.value.len() {
                n.grad.iter_mut().for_each(|g| *g = 0.0);
            } else {
                n.grad = vec![0.0; n.value.len()];
            }
        }
        self.nodes[loss.0].grad[0] = 1.0;
        for idx in (0..self.nodes.len()).rev() {
            let op = self.nodes[idx].op.clone();
            let grad = self.nodes[idx].grad.clone();
            if grad.iter().all(|&g| g == 0.0) {
                continue;
            }
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (ar, ac) = (self.nodes[a].rows, self.nodes[a].cols);
                    let bc = self.nodes[b].cols;
                    // dA = dOut * B^T ; dB = A^T * dOut
                    let bv = self.nodes[b].value.clone();
                    let av = self.nodes[a].value.clone();
                    {
                        let ga = &mut self.nodes[a].grad;
                        for i in 0..ar {
                            for k in 0..ac {
                                let mut acc = 0.0;
                                for j in 0..bc {
                                    acc += grad[i * bc + j] * bv[k * bc + j];
                                }
                                ga[i * ac + k] += acc;
                            }
                        }
                    }
                    {
                        let gb = &mut self.nodes[b].grad;
                        for k in 0..ac {
                            for j in 0..bc {
                                let mut acc = 0.0;
                                for i in 0..ar {
                                    acc += av[i * ac + k] * grad[i * bc + j];
                                }
                                gb[k * bc + j] += acc;
                            }
                        }
                    }
                }
                Op::Add(a, b) => {
                    for (g, &d) in self.nodes[a].grad.iter_mut().zip(&grad) {
                        *g += d;
                    }
                    for (g, &d) in self.nodes[b].grad.iter_mut().zip(&grad) {
                        *g += d;
                    }
                }
                Op::Sub(a, b) => {
                    for (g, &d) in self.nodes[a].grad.iter_mut().zip(&grad) {
                        *g += d;
                    }
                    for (g, &d) in self.nodes[b].grad.iter_mut().zip(&grad) {
                        *g -= d;
                    }
                }
                Op::MulElem(a, b) => {
                    let bv = self.nodes[b].value.clone();
                    let av = self.nodes[a].value.clone();
                    for ((g, &d), &x) in self.nodes[a].grad.iter_mut().zip(&grad).zip(&bv) {
                        *g += d * x;
                    }
                    for ((g, &d), &x) in self.nodes[b].grad.iter_mut().zip(&grad).zip(&av) {
                        *g += d * x;
                    }
                }
                Op::Scale(a, s) => {
                    for (g, &d) in self.nodes[a].grad.iter_mut().zip(&grad) {
                        *g += d * s;
                    }
                }
                Op::AddRowBroadcast(a, bias) => {
                    let c = self.nodes[idx].cols;
                    for (g, &d) in self.nodes[a].grad.iter_mut().zip(&grad) {
                        *g += d;
                    }
                    let gb = &mut self.nodes[bias].grad;
                    for (i, &d) in grad.iter().enumerate() {
                        gb[i % c] += d;
                    }
                }
                Op::MulRowBroadcast(a, gain) => {
                    let c = self.nodes[idx].cols;
                    let gv = self.nodes[gain].value.clone();
                    let av = self.nodes[a].value.clone();
                    for (i, &d) in grad.iter().enumerate() {
                        self.nodes[a].grad[i] += d * gv[i % c];
                    }
                    for (i, &d) in grad.iter().enumerate() {
                        self.nodes[gain].grad[i % c] += d * av[i];
                    }
                }
                Op::Relu(a) => {
                    let av = self.nodes[a].value.clone();
                    for ((g, &d), &x) in self.nodes[a].grad.iter_mut().zip(&grad).zip(&av) {
                        if x > 0.0 {
                            *g += d;
                        }
                    }
                }
                Op::Tanh(a) => {
                    let yv = self.nodes[idx].value.clone();
                    for ((g, &d), &y) in self.nodes[a].grad.iter_mut().zip(&grad).zip(&yv) {
                        *g += d * (1.0 - y * y);
                    }
                }
                Op::Sigmoid(a) => {
                    let yv = self.nodes[idx].value.clone();
                    for ((g, &d), &y) in self.nodes[a].grad.iter_mut().zip(&grad).zip(&yv) {
                        *g += d * y * (1.0 - y);
                    }
                }
                Op::SoftmaxRows(a) => {
                    let c = self.nodes[idx].cols;
                    let yv = self.nodes[idx].value.clone();
                    let ga = &mut self.nodes[a].grad;
                    for (row_i, (yrow, drow)) in yv.chunks(c).zip(grad.chunks(c)).enumerate() {
                        let dot: f64 = yrow.iter().zip(drow).map(|(y, d)| y * d).sum();
                        for j in 0..c {
                            ga[row_i * c + j] += yrow[j] * (drow[j] - dot);
                        }
                    }
                }
                Op::Transpose(a) => {
                    let (r, c) = (self.nodes[idx].rows, self.nodes[idx].cols);
                    let ga = &mut self.nodes[a].grad;
                    for i in 0..r {
                        for j in 0..c {
                            ga[j * r + i] += grad[i * c + j];
                        }
                    }
                }
                Op::MeanAll(a) => {
                    let n = self.nodes[a].value.len() as f64;
                    let d = grad[0] / n;
                    for g in self.nodes[a].grad.iter_mut() {
                        *g += d;
                    }
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.nodes[a].cols;
                    let bc = self.nodes[b].cols;
                    let rows = self.nodes[idx].rows;
                    for i in 0..rows {
                        for j in 0..ac {
                            self.nodes[a].grad[i * ac + j] += grad[i * (ac + bc) + j];
                        }
                        for j in 0..bc {
                            self.nodes[b].grad[i * bc + j] += grad[i * (ac + bc) + ac + j];
                        }
                    }
                }
                Op::LayerNormRows(a) => {
                    let c = self.nodes[idx].cols;
                    let av = self.nodes[a].value.clone();
                    let ga = &mut self.nodes[a].grad;
                    for (row_i, (arow, drow)) in av.chunks(c).zip(grad.chunks(c)).enumerate() {
                        let mean = arow.iter().sum::<f64>() / c as f64;
                        let var =
                            arow.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / c as f64;
                        let inv = 1.0 / (var + 1e-5).sqrt();
                        let xhat: Vec<f64> = arow.iter().map(|x| (x - mean) * inv).collect();
                        let dsum: f64 = drow.iter().sum();
                        let dxhat_dot: f64 = drow.iter().zip(&xhat).map(|(d, x)| d * x).sum();
                        for j in 0..c {
                            ga[row_i * c + j] +=
                                inv / c as f64 * (c as f64 * drow[j] - dsum - xhat[j] * dxhat_dot);
                        }
                    }
                }
                Op::AvgPoolRows(a, stride) => {
                    let (r, c) = (self.nodes[a].rows, self.nodes[a].cols);
                    let ga = &mut self.nodes[a].grad;
                    let out_rows = r.div_ceil(stride);
                    for g in 0..out_rows {
                        let start = g * stride;
                        let end = (start + stride).min(r);
                        let k = (end - start) as f64;
                        for row in start..end {
                            for j in 0..c {
                                ga[row * c + j] += grad[g * c + j] / k;
                            }
                        }
                    }
                }
                Op::Reshape(a) => {
                    for (g, &d) in self.nodes[a].grad.iter_mut().zip(&grad) {
                        *g += d;
                    }
                }
                Op::CausalConv1d {
                    x,
                    w,
                    kernel,
                    dilation,
                } => {
                    let (seq, in_ch) = (self.nodes[x].rows, self.nodes[x].cols);
                    let out_ch = self.nodes[idx].cols;
                    let xv = self.nodes[x].value.clone();
                    let wv = self.nodes[w].value.clone();
                    for t in 0..seq {
                        for k in 0..kernel {
                            let offset = k * dilation;
                            if offset > t {
                                continue;
                            }
                            let src = t - offset;
                            for ic in 0..in_ch {
                                let wbase = (k * in_ch + ic) * out_ch;
                                let mut gx = 0.0;
                                for oc in 0..out_ch {
                                    let d = grad[t * out_ch + oc];
                                    gx += d * wv[wbase + oc];
                                    self.nodes[w].grad[wbase + oc] += d * xv[src * in_ch + ic];
                                }
                                self.nodes[x].grad[src * in_ch + ic] += gx;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Accumulates the gradients of parameter leaves into the store.
    ///
    /// A forward-only tape (no [`Tape::backward`] call) has no gradient
    /// buffers and contributes nothing.
    pub fn param_grads(&self, store: &mut ParamStore) {
        for n in &self.nodes {
            if let Some(id) = n.param {
                if n.grad.is_empty() {
                    continue;
                }
                store.accumulate_grad(id, &n.grad);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::ParamStore;

    /// Finite-difference gradient check for a scalar function of one
    /// parameter tensor.
    fn grad_check(
        init: Vec<f64>,
        rows: usize,
        cols: usize,
        f: impl Fn(&mut Tape, TensorRef) -> TensorRef,
    ) {
        let mut store = ParamStore::new(0);
        let id = store.add_raw(init.clone(), rows, cols);
        // Analytic gradient.
        let mut tape = Tape::new();
        let p = tape.param(&store, id);
        let loss = f(&mut tape, p);
        tape.backward(loss);
        tape.param_grads(&mut store);
        let analytic = store.grad(id).to_vec();
        // Numerical gradient.
        let eps = 1e-6;
        for i in 0..init.len() {
            let eval = |store: &ParamStore| {
                let mut t = Tape::new();
                let p = t.param(store, id);
                let l = f(&mut t, p);
                t.value(l)[0]
            };
            store.perturb(id, i, eps);
            let up = eval(&store);
            store.perturb(id, i, -2.0 * eps);
            let down = eval(&store);
            store.perturb(id, i, eps);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "element {i}: analytic {} vs numeric {numeric}",
                analytic[i]
            );
        }
    }

    #[test]
    fn grad_matmul_mean() {
        grad_check(vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.7], 2, 3, |t, p| {
            let x = t.input(&[1.0, 2.0, -1.0, 0.5, 1.5, -0.5], 3, 2);
            let y = t.matmul(x, p);
            let sq = t.mul_elem(y, y);
            t.mean_all(sq)
        });
    }

    #[test]
    fn grad_softmax_rows() {
        grad_check(vec![0.1, 0.9, -0.4, 0.2], 2, 2, |t, p| {
            let s = t.softmax_rows(p);
            let target = t.input(&[1.0, 0.0, 0.0, 1.0], 2, 2);
            let d = t.sub(s, target);
            let sq = t.mul_elem(d, d);
            t.mean_all(sq)
        });
    }

    #[test]
    fn grad_layer_norm() {
        grad_check(vec![0.3, 1.2, -0.8, 0.5, 0.1, 2.0], 2, 3, |t, p| {
            let n = t.layer_norm_rows(p);
            let w = t.input(&[1.0, 2.0, 3.0, -1.0, 0.5, 1.5], 2, 3);
            let prod = t.mul_elem(n, w);
            t.mean_all(prod)
        });
    }

    #[test]
    fn grad_activations() {
        for act in 0..3usize {
            grad_check(vec![0.4, -0.9, 1.3, -0.2], 2, 2, move |t, p| {
                let a = match act {
                    0 => t.relu(p),
                    1 => t.tanh(p),
                    _ => t.sigmoid(p),
                };
                let sq = t.mul_elem(a, a);
                t.mean_all(sq)
            });
        }
    }

    #[test]
    fn grad_broadcasts() {
        grad_check(vec![0.5, -0.3], 1, 2, |t, p| {
            let x = t.input(&[1.0, 2.0, 3.0, 4.0], 2, 2);
            let y = t.add_row_broadcast(x, p);
            let z = t.mul_row_broadcast(y, p);
            let sq = t.mul_elem(z, z);
            t.mean_all(sq)
        });
    }

    #[test]
    fn grad_causal_conv() {
        grad_check(vec![0.3, -0.5, 0.8, 0.2], 2, 2, |t, p| {
            // x: seq 4, 1 channel; w: kernel 2 * in 1 = 2 rows, out 2.
            let x = t.input(&[1.0, -1.0, 2.0, 0.5], 4, 1);
            let y = t.causal_conv1d(x, p, 2, 1);
            let sq = t.mul_elem(y, y);
            t.mean_all(sq)
        });
    }

    #[test]
    fn grad_avg_pool_and_concat_and_transpose() {
        grad_check(vec![0.2, 0.7, -0.4, 1.1, 0.9, -0.6], 3, 2, |t, p| {
            let pooled = t.avg_pool_rows(p, 2); // 2 x 2
            let tr = t.transpose(pooled); // 2 x 2
            let cat = t.concat_cols(pooled, tr); // 2 x 4
            let sq = t.mul_elem(cat, cat);
            t.mean_all(sq)
        });
    }

    #[test]
    fn conv_is_causal() {
        let mut store = ParamStore::new(0);
        let id = store.add_raw(vec![1.0, 0.0], 2, 1); // kernel 2, identity on current step
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let x = tape.input(&[1.0, 2.0, 3.0], 3, 1);
        let y = tape.causal_conv1d(x, w, 2, 1);
        // Kernel index 0 multiplies the current step, index 1 the previous.
        assert_eq!(tape.value(y), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.input(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], 2, 3);
        let s = tape.softmax_rows(x);
        for row in tape.value(s).chunks(3) {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn avg_pool_handles_remainder() {
        let mut tape = Tape::new();
        let x = tape.input(&[1.0, 2.0, 3.0, 4.0, 5.0], 5, 1);
        let p = tape.avg_pool_rows(x, 2);
        assert_eq!(tape.shape(p), (3, 1));
        assert_eq!(tape.value(p), &[1.5, 3.5, 5.0]);
    }
}

//! From-scratch neural substrate and miniature deep-learning forecasters.
//!
//! The paper evaluates sixteen PyTorch deep-learning baselines on an A800
//! GPU — a software/hardware gate this offline reproduction replaces with
//! *architecturally faithful miniatures* trained on CPU (see DESIGN.md):
//! the same inductive biases (linear heads, decomposition, patching,
//! channel-independent vs. cross-channel attention, frequency filtering,
//! period folding, dilated convolution, recurrence, basis expansion), at
//! sizes a laptop trains in seconds.
//!
//! The substrate is a small define-by-run reverse-mode autodiff engine
//! ([`tape`]) over 2-D tensors, an Adam optimizer ([`optim`]), reusable
//! blocks ([`blocks`]) and a training loop with early stopping
//! ([`train`]). The models live in [`models`] and all implement
//! [`tfb_models::WindowForecaster`], so the benchmark pipeline treats them
//! exactly like the machine-learning methods.

// Dense numeric kernels index by position on purpose: the index
// arithmetic *is* the algorithm (GEMM, filters, recursions), and iterator
// rewrites obscure it.
#![allow(clippy::needless_range_loop)]
pub mod blocks;
pub mod models;
pub mod optim;
pub mod tape;
pub mod train;

pub use models::{DeepModel, DeepModelKind};
pub use optim::{Adam, ParamStore};
pub use tape::{Tape, TensorRef};
pub use train::{TrainConfig, Trainer};

//! Parameter storage and the Adam optimizer (the paper trains all deep
//! models with Adam and L2 loss).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Handle to a parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(usize);

struct Param {
    value: Vec<f64>,
    grad: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
    rows: usize,
    cols: usize,
}

/// Owns every trainable tensor of a model plus the Adam moments.
pub struct ParamStore {
    params: Vec<Param>,
    rng: StdRng,
}

impl ParamStore {
    /// Creates an empty store with a seeded initializer RNG.
    pub fn new(seed: u64) -> ParamStore {
        ParamStore {
            params: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Adds a tensor with Glorot-uniform initialization.
    pub fn add(&mut self, rows: usize, cols: usize) -> ParamId {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let value: Vec<f64> = (0..rows * cols)
            .map(|_| self.rng.gen_range(-limit..limit))
            .collect();
        self.add_raw(value, rows, cols)
    }

    /// Adds a zero-initialized tensor (biases).
    pub fn add_zeros(&mut self, rows: usize, cols: usize) -> ParamId {
        self.add_raw(vec![0.0; rows * cols], rows, cols)
    }

    /// Adds a tensor with explicit initial values.
    pub fn add_raw(&mut self, value: Vec<f64>, rows: usize, cols: usize) -> ParamId {
        assert_eq!(value.len(), rows * cols);
        self.params.push(Param {
            grad: vec![0.0; value.len()],
            m: vec![0.0; value.len()],
            v: vec![0.0; value.len()],
            value,
            rows,
            cols,
        });
        ParamId(self.params.len() - 1)
    }

    /// Value and shape of a parameter.
    pub fn get(&self, id: ParamId) -> (&[f64], usize, usize) {
        let p = &self.params[id.0];
        (&p.value, p.rows, p.cols)
    }

    /// Current gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &[f64] {
        &self.params[id.0].grad
    }

    /// Adds `delta` into the parameter's gradient buffer.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &[f64]) {
        for (g, d) in self.params[id.0].grad.iter_mut().zip(delta) {
            *g += d;
        }
    }

    /// Zeroes every gradient buffer.
    pub fn zero_grads(&mut self) {
        for p in self.params.iter_mut() {
            p.grad.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// Adds `eps` to one element (used by gradient checks).
    pub fn perturb(&mut self, id: ParamId, index: usize, eps: f64) {
        self.params[id.0].value[index] += eps;
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Global L2 norm of the accumulated gradients (the quantity the
    /// clipper bounds and the health probes report).
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .flat_map(|p| p.grad.iter())
            .map(|g| g * g)
            .sum::<f64>()
            .sqrt()
    }

    /// Snapshot of all values (for early-stopping restore).
    pub fn snapshot(&self) -> Vec<Vec<f64>> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Restores a snapshot taken with [`ParamStore::snapshot`].
    pub fn restore(&mut self, snap: &[Vec<f64>]) {
        assert_eq!(snap.len(), self.params.len());
        for (p, s) in self.params.iter_mut().zip(snap) {
            p.value.copy_from_slice(s);
        }
    }

    /// Every parameter tensor with its shape, in registration order —
    /// the serialization view a model artifact persists.
    pub fn tensors(&self) -> Vec<(&[f64], usize, usize)> {
        self.params
            .iter()
            .map(|p| (p.value.as_slice(), p.rows, p.cols))
            .collect()
    }

    /// Loads tensors exported by [`ParamStore::tensors`] into a store
    /// with an identical registration sequence. Errors (rather than
    /// panics) on any count or shape mismatch, so a corrupt artifact
    /// surfaces as a structured failure.
    pub fn load_tensors(&mut self, tensors: &[(Vec<f64>, usize, usize)]) -> Result<(), String> {
        if tensors.len() != self.params.len() {
            return Err(format!(
                "parameter count mismatch: artifact has {}, model expects {}",
                tensors.len(),
                self.params.len()
            ));
        }
        for (i, (p, (value, rows, cols))) in self.params.iter().zip(tensors).enumerate() {
            if p.rows != *rows || p.cols != *cols || value.len() != rows * cols {
                return Err(format!(
                    "tensor {i} shape mismatch: artifact {rows}x{cols} ({} values), \
                     model expects {}x{}",
                    value.len(),
                    p.rows,
                    p.cols
                ));
            }
        }
        for (p, (value, _, _)) in self.params.iter_mut().zip(tensors) {
            p.value.copy_from_slice(value);
        }
        Ok(())
    }
}

/// Adam optimizer state.
#[derive(Debug, Clone, Copy)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    /// Gradient-clipping threshold on the global L2 norm (0 disables).
    pub clip: f64,
    t: u64,
}

impl Adam {
    /// Adam with the usual defaults and the given learning rate.
    pub fn new(lr: f64) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 5.0,
            t: 0,
        }
    }

    /// Applies one update step from the accumulated gradients and zeroes
    /// them.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        // Global-norm clipping.
        if self.clip > 0.0 {
            let norm = store.grad_norm();
            if norm > self.clip {
                let s = self.clip / norm;
                for p in store.params.iter_mut() {
                    p.grad.iter_mut().for_each(|g| *g *= s);
                }
            }
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in store.params.iter_mut() {
            for i in 0..p.value.len() {
                let g = p.grad[i];
                p.m[i] = self.beta1 * p.m[i] + (1.0 - self.beta1) * g;
                p.v[i] = self.beta2 * p.v[i] + (1.0 - self.beta2) * g * g;
                let mhat = p.m[i] / bc1;
                let vhat = p.v[i] / bc2;
                p.value[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
                p.grad[i] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // Minimize mean((p - target)^2) for a 2x2 parameter.
        let mut store = ParamStore::new(1);
        let id = store.add_raw(vec![5.0, -3.0, 2.0, 8.0], 2, 2);
        let target = [1.0, 1.0, 1.0, 1.0];
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            let mut tape = Tape::new();
            let p = tape.param(&store, id);
            let t = tape.input(&target, 2, 2);
            let d = tape.sub(p, t);
            let sq = tape.mul_elem(d, d);
            let loss = tape.mean_all(sq);
            tape.backward(loss);
            tape.param_grads(&mut store);
            adam.step(&mut store);
        }
        for (v, t) in store.get(id).0.iter().zip(&target) {
            assert!((v - t).abs() < 0.01, "{v} vs {t}");
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut store = ParamStore::new(2);
        let id = store.add(3, 3);
        let snap = store.snapshot();
        store.perturb(id, 0, 10.0);
        assert_ne!(store.get(id).0[0], snap[0][0]);
        store.restore(&snap);
        assert_eq!(store.get(id).0[0], snap[0][0]);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new(3);
        let id = store.add_zeros(1, 2);
        store.accumulate_grad(id, &[1e9, -1e9]);
        let mut adam = Adam::new(0.1);
        adam.step(&mut store);
        let v = store.get(id).0;
        assert!(v.iter().all(|x| x.abs() <= 0.2), "{v:?}");
    }

    #[test]
    fn parameter_count_sums_tensors() {
        let mut store = ParamStore::new(4);
        store.add(2, 3);
        store.add_zeros(1, 4);
        assert_eq!(store.parameter_count(), 10);
    }

    #[test]
    fn glorot_init_is_bounded() {
        let mut store = ParamStore::new(5);
        let id = store.add(100, 100);
        let limit = (6.0 / 200.0_f64).sqrt();
        assert!(store.get(id).0.iter().all(|v| v.abs() <= limit));
    }
}

//! Mini-batch training with Adam, L2 loss and validation-based early
//! stopping — the training protocol of the paper's experimental setup
//! (Section 5.1.2), scaled to CPU.

use crate::optim::{Adam, ParamStore};
use crate::tape::{Tape, TensorRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tfb_models::{ModelError, Result};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Cap on training windows (pooled across channels).
    pub max_samples: usize,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Fraction of samples (the most recent ones) held out for validation.
    pub val_fraction: f64,
    /// Shuffling seed.
    pub seed: u64,
    /// Divergence detector: a validation loss above `divergence_factor ×`
    /// the rolling best counts as a diverging epoch.
    pub divergence_factor: f64,
    /// Consecutive diverging epochs before the cell aborts with a
    /// structured health event (merely-stale epochs below the factor
    /// threshold are left to early stopping).
    pub divergence_window: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 40,
            batch_size: 32,
            lr: 5e-3,
            max_samples: 2_000,
            patience: 6,
            val_fraction: 0.2,
            seed: 0,
            divergence_factor: 1e3,
            divergence_window: 5,
        }
    }
}

/// Runs the training loop over (input, target) pairs with a user-supplied
/// forward function.
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer { config }
    }

    /// Fits the parameters in `store`. `forward` maps one input vector to a
    /// `1 x target_len` tensor; the loss is the MSE against the target.
    ///
    /// Returns the best validation loss reached.
    pub fn fit(
        &self,
        store: &mut ParamStore,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        forward: impl Fn(&mut Tape, &ParamStore, &[f64]) -> TensorRef,
    ) -> Result<f64> {
        let cfg = self.config;
        let n = inputs.len();
        if n == 0 || targets.len() != n {
            return Err(ModelError::InsufficientData("no training pairs"));
        }
        // Chronological validation split: the most recent windows validate.
        let n_val = ((n as f64 * cfg.val_fraction) as usize).min(n - 1);
        let n_train = n - n_val;
        let mut order: Vec<usize> = (0..n_train).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut adam = Adam::new(cfg.lr);
        let mut best_val = f64::INFINITY;
        let mut best_snapshot = store.snapshot();
        let mut stale = 0usize;
        let mut diverging = 0usize;
        let n_batches = n_train.div_ceil(cfg.batch_size.max(1)).max(1);
        for epoch in 0..cfg.epochs.max(1) {
            let epoch_span = tfb_obs::span!("epoch");
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for (b, batch) in order.chunks(cfg.batch_size.max(1)).enumerate() {
                store.zero_grads();
                for &i in batch {
                    let mut tape = Tape::new();
                    let pred = forward(&mut tape, store, &inputs[i]);
                    let (pr, pc) = tape.shape(pred);
                    debug_assert_eq!(pr * pc, targets[i].len(), "forward output shape");
                    let t = tape.input(&targets[i], pr, pc);
                    let d = tape.sub(pred, t);
                    let sq = tape.mul_elem(d, d);
                    let scaled = tape.scale(sq, 1.0 / batch.len() as f64);
                    let loss = tape.mean_all(scaled);
                    tape.backward(loss);
                    tape.param_grads(store);
                }
                // Gradient-norm gauge, sampled once per epoch (last
                // batch, pre-clipping). Only computed while a run is
                // recording, so forecasts never depend on the probe.
                if b + 1 == n_batches && tfb_obs::enabled() {
                    let gn = store.grad_norm();
                    tfb_obs::record_grad_norm(gn);
                    tfb_obs::gauge!("nn/grad_norm").set(gn);
                }
                adam.step(store);
            }
            // Validation (falls back to training loss when no hold-out).
            let eval_range: Vec<usize> = if n_val > 0 {
                (n_train..n).collect()
            } else {
                (0..n_train.min(64)).collect()
            };
            let mut val_loss = 0.0;
            for &i in &eval_range {
                let mut tape = Tape::new();
                let pred = forward(&mut tape, store, &inputs[i]);
                let p = tape.value(pred);
                let mse: f64 = p
                    .iter()
                    .zip(&targets[i])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    / p.len() as f64;
                val_loss += mse;
            }
            val_loss /= eval_range.len().max(1) as f64;
            epoch_span
                .record("epoch", epoch as f64)
                .record("val_loss", val_loss)
                .close();
            tfb_obs::histogram!("nn/epoch_val_loss").record(val_loss);
            // NaN/Inf sentinel: a non-finite loss means the weights are
            // already poisoned — abort the cell instead of reporting a
            // silently-wrong forecast.
            if !val_loss.is_finite() {
                tfb_obs::health_event(tfb_obs::HealthKind::Nan, "non-finite validation loss");
                return Err(ModelError::Numerical(format!(
                    "non-finite validation loss at epoch {epoch}"
                )));
            }
            // Divergence detector: a loss far above the rolling best for
            // several consecutive epochs is a runaway, not a plateau.
            if best_val.is_finite() && val_loss > cfg.divergence_factor * best_val.max(1e-9) {
                diverging += 1;
                if diverging >= cfg.divergence_window.max(1) {
                    tfb_obs::health_event(
                        tfb_obs::HealthKind::Diverged,
                        "validation loss diverged from rolling best",
                    );
                    return Err(ModelError::Numerical(format!(
                        "diverged: val loss {val_loss:.3e} > {}x best {best_val:.3e} \
                         for {diverging} epochs",
                        cfg.divergence_factor
                    )));
                }
            } else {
                diverging = 0;
            }
            if val_loss < best_val - 1e-9 {
                best_val = val_loss;
                best_snapshot = store.snapshot();
                stale = 0;
            } else {
                stale += 1;
                if stale > cfg.patience {
                    break;
                }
            }
        }
        store.restore(&best_snapshot);
        Ok(best_val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::Linear;

    fn make_linear_problem(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        // y = [2*x0 - x1, x0 + x1]
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 7) as f64 / 7.0, (i % 5) as f64 / 5.0])
            .collect();
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| vec![2.0 * x[0] - x[1], x[0] + x[1]])
            .collect();
        (inputs, targets)
    }

    #[test]
    fn trainer_fits_a_linear_map() {
        let (inputs, targets) = make_linear_problem(200);
        let mut store = ParamStore::new(1);
        let lin = Linear::new(&mut store, 2, 2);
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 16,
            lr: 0.05,
            patience: 50,
            ..TrainConfig::default()
        };
        let best = Trainer::new(cfg)
            .fit(&mut store, &inputs, &targets, |tape, store, input| {
                let x = tape.input(input, 1, 2);
                lin.forward(tape, store, x)
            })
            .unwrap();
        assert!(best < 1e-3, "val loss {best}");
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        // With an absurd learning rate late training diverges; the restore
        // must keep the best-epoch weights.
        let (inputs, targets) = make_linear_problem(100);
        let mut store = ParamStore::new(2);
        let lin = Linear::new(&mut store, 2, 2);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 8,
            lr: 0.05,
            patience: 3,
            ..TrainConfig::default()
        };
        let best = Trainer::new(cfg)
            .fit(&mut store, &inputs, &targets, |tape, store, input| {
                let x = tape.input(input, 1, 2);
                lin.forward(tape, store, x)
            })
            .unwrap();
        // Evaluate at the restored weights: must match the reported best.
        let mut loss = 0.0;
        let n_train = 80;
        for i in n_train..100 {
            let mut tape = Tape::new();
            let x = tape.input(&inputs[i], 1, 2);
            let y = lin.forward(&mut tape, &store, x);
            let p = tape.value(y);
            loss += p
                .iter()
                .zip(&targets[i])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / 2.0;
        }
        loss /= 20.0;
        assert!((loss - best).abs() < 1e-9, "{loss} vs {best}");
    }

    #[test]
    fn nan_targets_abort_with_numerical_error() {
        // NaN targets poison the gradients, then the weights, then the
        // validation loss: the sentinel must abort instead of returning a
        // "fitted" model.
        let (inputs, mut targets) = make_linear_problem(100);
        for t in targets.iter_mut() {
            t[0] = f64::NAN;
        }
        let mut store = ParamStore::new(1);
        let lin = Linear::new(&mut store, 2, 2);
        let r = Trainer::new(TrainConfig::default()).fit(
            &mut store,
            &inputs,
            &targets,
            |tape, store, input| {
                let x = tape.input(input, 1, 2);
                lin.forward(tape, store, x)
            },
        );
        match r {
            Err(ModelError::Numerical(msg)) => assert!(msg.contains("non-finite"), "{msg}"),
            other => panic!("expected Numerical abort, got {other:?}"),
        }
    }

    #[test]
    fn divergence_detector_aborts_runaway_training() {
        // A near-zero divergence factor makes every post-best epoch count
        // as diverging; with window 1 and huge patience the detector must
        // fire (patience would otherwise run the full epoch budget).
        let (inputs, targets) = make_linear_problem(100);
        let mut store = ParamStore::new(2);
        let lin = Linear::new(&mut store, 2, 2);
        let cfg = TrainConfig {
            epochs: 50,
            patience: 1000,
            divergence_factor: 1e-12,
            divergence_window: 1,
            ..TrainConfig::default()
        };
        let r = Trainer::new(cfg).fit(&mut store, &inputs, &targets, |tape, store, input| {
            let x = tape.input(input, 1, 2);
            lin.forward(tape, store, x)
        });
        match r {
            Err(ModelError::Numerical(msg)) => assert!(msg.contains("diverged"), "{msg}"),
            other => panic!("expected divergence abort, got {other:?}"),
        }
    }

    #[test]
    fn empty_inputs_error() {
        let mut store = ParamStore::new(3);
        let r = Trainer::new(TrainConfig::default()).fit(&mut store, &[], &[], |tape, _, input| {
            tape.input(input, 1, 1)
        });
        assert!(r.is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (inputs, targets) = make_linear_problem(60);
        let run = || {
            let mut store = ParamStore::new(7);
            let lin = Linear::new(&mut store, 2, 2);
            let cfg = TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            };
            Trainer::new(cfg)
                .fit(&mut store, &inputs, &targets, |tape, store, input| {
                    let x = tape.input(input, 1, 2);
                    lin.forward(tape, store, x)
                })
                .unwrap()
        };
        assert_eq!(run(), run());
    }
}

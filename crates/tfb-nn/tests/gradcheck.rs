//! Randomized finite-difference gradient checks over composite graphs —
//! the strongest guarantee the autodiff tape can give: for random inputs
//! and random parameter values, every analytic gradient matches the
//! numerical one.

#![allow(clippy::needless_range_loop)] // finite-difference loops index two buffers

use proptest::prelude::*;
use tfb_nn::{ParamStore, Tape, TensorRef};

/// Builds a small composite network: dense -> relu -> layernorm -> dense ->
/// softmax -> mse against a fixed target.
fn forward(
    tape: &mut Tape,
    store: &ParamStore,
    w1: tfb_nn::optim::ParamId,
    w2: tfb_nn::optim::ParamId,
    input: &[f64],
) -> TensorRef {
    let x = tape.input(input, 1, 4);
    let p1 = tape.param(store, w1);
    let h = tape.matmul(x, p1);
    let h = tape.relu(h);
    let h = tape.layer_norm_rows(h);
    let p2 = tape.param(store, w2);
    let y = tape.matmul(h, p2);
    let s = tape.softmax_rows(y);
    let target = tape.input(&[0.7, 0.2, 0.1], 1, 3);
    let d = tape.sub(s, target);
    let sq = tape.mul_elem(d, d);
    tape.mean_all(sq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn composite_graph_gradients_match_finite_differences(
        w1_init in proptest::collection::vec(-1.0_f64..1.0, 4 * 5),
        w2_init in proptest::collection::vec(-1.0_f64..1.0, 5 * 3),
        input in proptest::collection::vec(-2.0_f64..2.0, 4),
    ) {
        let mut store = ParamStore::new(0);
        let w1 = store.add_raw(w1_init, 4, 5);
        let w2 = store.add_raw(w2_init, 5, 3);
        // Analytic gradients.
        let mut tape = Tape::new();
        let loss = forward(&mut tape, &store, w1, w2, &input);
        tape.backward(loss);
        tape.param_grads(&mut store);
        let analytic1 = store.grad(w1).to_vec();
        let analytic2 = store.grad(w2).to_vec();
        // Numerical gradients.
        let eps = 1e-6;
        for (id, analytic, len) in [(w1, &analytic1, 20usize), (w2, &analytic2, 15)] {
            for i in 0..len {
                let eval = |store: &ParamStore| {
                    let mut t = Tape::new();
                    let l = forward(&mut t, store, w1, w2, &input);
                    t.value(l)[0]
                };
                store.perturb(id, i, eps);
                let up = eval(&store);
                store.perturb(id, i, -2.0 * eps);
                let down = eval(&store);
                store.perturb(id, i, eps);
                let numeric = (up - down) / (2.0 * eps);
                // ReLU kinks make gradients one-sided exactly at 0; skip
                // comparisons where the finite difference straddles a kink.
                let diff = (analytic[i] - numeric).abs();
                prop_assert!(
                    diff < 1e-4 * (1.0 + numeric.abs()) || diff < 5e-4,
                    "param {i}: analytic {} vs numeric {numeric}",
                    analytic[i]
                );
            }
        }
    }

    #[test]
    fn conv_and_pool_gradients_match(
        w_init in proptest::collection::vec(-1.0_f64..1.0, 3 * 2),
        input in proptest::collection::vec(-2.0_f64..2.0, 8),
    ) {
        let mut store = ParamStore::new(1);
        let w = store.add_raw(w_init, 3, 2); // kernel 3, in 1, out 2
        let run = |tape: &mut Tape, store: &ParamStore| {
            let x = tape.input(&input, 8, 1);
            let wp = tape.param(store, w);
            let c = tape.causal_conv1d(x, wp, 3, 2);
            let c = tape.tanh(c);
            let p = tape.avg_pool_rows(c, 3);
            let sq = tape.mul_elem(p, p);
            tape.mean_all(sq)
        };
        let mut tape = Tape::new();
        let loss = run(&mut tape, &store);
        tape.backward(loss);
        tape.param_grads(&mut store);
        let analytic = store.grad(w).to_vec();
        let eps = 1e-6;
        for i in 0..6 {
            let eval = |store: &ParamStore| {
                let mut t = Tape::new();
                let l = run(&mut t, store);
                t.value(l)[0]
            };
            store.perturb(w, i, eps);
            let up = eval(&store);
            store.perturb(w, i, -2.0 * eps);
            let down = eval(&store);
            store.perturb(w, i, eps);
            let numeric = (up - down) / (2.0 * eps);
            prop_assert!(
                (analytic[i] - numeric).abs() < 1e-5 * (1.0 + numeric.abs()) + 1e-7,
                "weight {i}: analytic {} vs numeric {numeric}",
                analytic[i]
            );
        }
    }
}

//! Reproducibility guarantees for the deep models: training is seeded and
//! idempotent, so a rerun produces bit-identical forecasts.

use tfb_data::{Domain, Frequency, MultiSeries};
use tfb_models::WindowForecaster;
use tfb_nn::{DeepModel, DeepModelKind, TrainConfig};

fn sine(n: usize) -> MultiSeries {
    let xs: Vec<f64> = (0..n)
        .map(|t| (std::f64::consts::TAU * t as f64 / 12.0).sin() + 0.02 * t as f64)
        .collect();
    MultiSeries::from_channels("d", Frequency::Hourly, Domain::Energy, &[xs]).unwrap()
}

fn quick() -> TrainConfig {
    TrainConfig {
        epochs: 4,
        max_samples: 150,
        ..TrainConfig::default()
    }
}

#[test]
fn two_fresh_models_produce_identical_forecasts() {
    let s = sine(200);
    let window: Vec<f64> = s.channel(0)[200 - 24..].to_vec();
    for kind in [
        DeepModelKind::PatchTST,
        DeepModelKind::Tcn,
        DeepModelKind::NBeats,
    ] {
        let run = || {
            let mut m = DeepModel::new(kind, 24, 6, 1);
            m.config = quick();
            m.train(&s).unwrap();
            m.predict(&window, 1).unwrap()
        };
        assert_eq!(run(), run(), "{kind:?} not deterministic");
    }
}

#[test]
fn retraining_the_same_instance_is_idempotent() {
    let s = sine(200);
    let window: Vec<f64> = s.channel(0)[200 - 24..].to_vec();
    let mut m = DeepModel::new(DeepModelKind::FEDformer, 24, 6, 1);
    m.config = quick();
    m.train(&s).unwrap();
    let first = m.predict(&window, 1).unwrap();
    m.train(&s).unwrap();
    let second = m.predict(&window, 1).unwrap();
    assert_eq!(first, second, "retrain must restart from the seeded init");
}

#[test]
fn different_architectures_have_different_seeds_and_outputs() {
    let s = sine(200);
    let window: Vec<f64> = s.channel(0)[200 - 24..].to_vec();
    let forecast = |kind| {
        let mut m = DeepModel::new(kind, 24, 6, 1);
        m.config = quick();
        m.train(&s).unwrap();
        m.predict(&window, 1).unwrap()
    };
    let a = forecast(DeepModelKind::Mlp);
    let b = forecast(DeepModelKind::TiDE);
    assert_ne!(a, b);
}

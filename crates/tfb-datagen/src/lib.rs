//! Seeded synthetic dataset generation for the TFB reproduction.
//!
//! The original benchmark distributes 25 real multivariate datasets and an
//! archive of 8,068 curated univariate series. Those are a data gate this
//! offline reproduction cannot cross, so this crate generates *synthetic
//! stand-ins with controlled characteristics*: every dataset profile in
//! [`profiles`] mirrors its real counterpart's published shape (length,
//! dimension, frequency, split ratio — Table 5 of the paper) and dials in
//! the characteristics (trend, seasonality, shifting, transition,
//! correlation, stationarity) that the paper reports as driving method
//! performance on that dataset.
//!
//! Everything is deterministic given a seed: the same profile and scale
//! always produce bit-identical data.

// Dense numeric kernels index by position on purpose: the index
// arithmetic *is* the algorithm (GEMM, filters, recursions), and iterator
// rewrites obscure it.
#![allow(clippy::needless_range_loop)]
pub mod components;
pub mod profiles;
pub mod univariate;

pub use components::{SeriesBuilder, TrendKind};
pub use profiles::{all_profiles, profile_by_name, DatasetProfile, Scale};
pub use univariate::{UnivariateArchive, UnivariateSpec};

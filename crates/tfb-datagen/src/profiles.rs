//! The 25 multivariate dataset profiles of Table 5.
//!
//! Each profile records the real dataset's published shape (length,
//! dimension, frequency, split) and a generation recipe that dials in the
//! characteristics the paper reports for it: FRED-MD gets the strongest
//! trend, Electricity the strongest seasonality, PEMS08 the strongest
//! transition, NYSE the most severe shifting, PEMS-BAY the highest
//! cross-channel correlation, Solar the most stationary behaviour, the
//! exchange/stock datasets unit-root random walks, and so on (Section 5.2.3
//! and Figure 8 of the paper).

use crate::components::{correlated_channels, SeriesBuilder, TrendKind};
use tfb_data::{Domain, Frequency, MultiSeries, SplitRatio};

/// How much of the real dataset's size to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Maximum series length (paper lengths reach 57,600).
    pub max_len: usize,
    /// Maximum channel count (paper dims reach 2,000).
    pub max_dim: usize,
}

impl Scale {
    /// Full paper-sized data.
    pub const FULL: Scale = Scale {
        max_len: usize::MAX,
        max_dim: usize::MAX,
    };

    /// The default laptop-scale reduction used by the tests and benches:
    /// lengths capped at 3,000 points and dimensions at 8 channels. The
    /// relative comparisons the paper draws survive this reduction; see
    /// DESIGN.md.
    pub const DEFAULT: Scale = Scale {
        max_len: 3_000,
        max_dim: 8,
    };

    /// An even smaller scale for quick tests.
    pub const TINY: Scale = Scale {
        max_len: 600,
        max_dim: 4,
    };
}

/// The generation recipe for one dataset profile.
#[derive(Debug, Clone)]
pub struct Recipe {
    /// Trend of the shared latent factors.
    pub trend: TrendKind,
    /// (period, amplitude) seasonal harmonics of the latent factors. The
    /// period is expressed in steps of the dataset's own frequency.
    pub seasonal: Vec<(usize, f64)>,
    /// Level shifts (fraction, jump) applied to the latent factors.
    pub shifts: Vec<(f64, f64)>,
    /// AR(1) coefficient of the latent factor noise (1.0 = random walk).
    pub ar: f64,
    /// Noise standard deviation of the latent factors.
    pub noise: f64,
    /// Cross-channel correlation strength in [0, 1].
    pub correlation: f64,
    /// Number of latent factors the channels mix.
    pub factors: usize,
    /// Idiosyncratic per-channel noise level.
    pub channel_noise: f64,
    /// AR(1) coefficient of the idiosyncratic channel noise (1.0 = random
    /// walk, matching unit-root factors).
    pub idio_ar: f64,
    /// Optional volatility regimes (len, multiplier) for transition-heavy
    /// datasets.
    pub regimes: Option<(usize, f64)>,
}

/// A multivariate dataset profile mirroring one row of Table 5.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Application domain.
    pub domain: Domain,
    /// Sampling frequency.
    pub frequency: Frequency,
    /// Published length (time points).
    pub paper_len: usize,
    /// Published channel count.
    pub paper_dim: usize,
    /// Published chronological split.
    pub split: SplitRatio,
    /// Forecasting horizons the paper evaluates for this dataset.
    pub horizons: [usize; 4],
    /// Look-back windows the paper tests for this dataset.
    pub lookbacks: &'static [usize],
    /// Generation recipe.
    pub recipe: Recipe,
    /// Base RNG seed (fixed per profile for reproducibility).
    pub seed: u64,
}

/// Horizons for the seven short datasets (FRED-MD, NASDAQ, NYSE, NN5, ILI,
/// Covid-19, Wike2000).
pub const SHORT_HORIZONS: [usize; 4] = [24, 36, 48, 60];
/// Horizons for the long datasets.
pub const LONG_HORIZONS: [usize; 4] = [96, 192, 336, 720];
/// Look-backs for the short datasets.
pub const SHORT_LOOKBACKS: &[usize] = &[36, 104];
/// Look-backs for the long datasets.
pub const LONG_LOOKBACKS: &[usize] = &[96, 336, 512];

impl DatasetProfile {
    /// Effective length under `scale`.
    pub fn len(&self, scale: Scale) -> usize {
        self.paper_len.min(scale.max_len)
    }

    /// Effective dimension under `scale`.
    pub fn dim(&self, scale: Scale) -> usize {
        self.paper_dim.min(scale.max_dim)
    }

    /// Generates the dataset at the given scale, deterministically.
    pub fn generate(&self, scale: Scale) -> MultiSeries {
        let len = self.len(scale);
        let dim = self.dim(scale);
        let r = &self.recipe;
        // Latent factors share the profile's structural components.
        let mut factors = Vec::with_capacity(r.factors);
        for f in 0..r.factors {
            let mut b = SeriesBuilder::new(len, self.seed.wrapping_add(f as u64))
                .trend(r.trend)
                .ar(r.ar)
                .noise(r.noise);
            for &(period, amp) in &r.seasonal {
                // Keep the period feasible under heavy length reduction.
                let p = period.min(len / 4).max(2);
                b = b.seasonal(p, amp);
            }
            for &(frac, jump) in &r.shifts {
                b = b.level_shift(frac, jump);
            }
            if let Some((rlen, rvol)) = r.regimes {
                b = b.regimes(rlen.min(len / 4).max(1), rvol);
            }
            factors.push(b.build());
        }
        let channels = correlated_channels(
            &factors,
            dim,
            r.correlation,
            r.channel_noise,
            r.idio_ar,
            self.seed.wrapping_mul(7919).wrapping_add(1),
        );
        MultiSeries::from_channels(self.name, self.frequency, self.domain, &channels)
            .expect("profile generation cannot produce empty data")
    }
}

macro_rules! profile {
    ($name:literal, $domain:ident, $freq:ident, $len:literal, $dim:literal,
     $split:expr, $horizons:expr, $lookbacks:expr, $seed:literal, $recipe:expr) => {
        DatasetProfile {
            name: $name,
            domain: Domain::$domain,
            frequency: Frequency::$freq,
            paper_len: $len,
            paper_dim: $dim,
            split: $split,
            horizons: $horizons,
            lookbacks: $lookbacks,
            recipe: $recipe,
            seed: $seed,
        }
    };
}

/// All 25 multivariate dataset profiles of Table 5.
pub fn all_profiles() -> Vec<DatasetProfile> {
    use SplitRatio as SR;
    let traffic = |corr: f64, regimes| Recipe {
        trend: TrendKind::None,
        seasonal: vec![(288, 3.0), (2016, 1.0)],
        shifts: vec![],
        ar: 0.6,
        noise: 0.6,
        correlation: corr,
        factors: 3,
        channel_noise: 0.4,
        idio_ar: 0.5,
        regimes,
    };
    let ett = |shift: f64| Recipe {
        trend: TrendKind::Piecewise {
            slopes: [0.004, -0.002, 0.003],
        },
        seasonal: vec![(24, 1.5), (168, 0.6)],
        shifts: vec![(0.55, shift)],
        ar: 0.75,
        noise: 0.7,
        correlation: 0.55,
        factors: 3,
        channel_noise: 0.5,
        idio_ar: 0.5,
        regimes: None,
    };
    let walk = |shift_frac: f64, jump: f64, noise: f64| Recipe {
        trend: TrendKind::None,
        seasonal: vec![],
        shifts: vec![(shift_frac, jump)],
        ar: 1.0,
        noise,
        correlation: 0.55,
        factors: 2,
        channel_noise: noise,
        idio_ar: 1.0,
        regimes: None,
    };
    vec![
        profile!(
            "METR-LA",
            Traffic,
            FiveMinutes,
            34272,
            207,
            SR::R712,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            101,
            traffic(0.80, None)
        ),
        profile!(
            "PEMS-BAY",
            Traffic,
            FiveMinutes,
            52116,
            325,
            SR::R712,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            102,
            traffic(0.97, None)
        ),
        profile!(
            "PEMS04",
            Traffic,
            FiveMinutes,
            16992,
            307,
            SR::R622,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            103,
            traffic(0.85, None)
        ),
        profile!(
            "PEMS08",
            Traffic,
            FiveMinutes,
            17856,
            170,
            SR::R622,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            104,
            traffic(0.85, Some((600, 2.5)))
        ),
        profile!(
            "Traffic",
            Traffic,
            Hourly,
            17544,
            862,
            SR::R712,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            105,
            Recipe {
                seasonal: vec![(24, 3.0), (168, 1.2)],
                ..traffic(0.75, None)
            }
        ),
        profile!(
            "ETTh1",
            Electricity,
            Hourly,
            14400,
            7,
            SR::R622,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            106,
            ett(1.5)
        ),
        profile!(
            "ETTh2",
            Electricity,
            Hourly,
            14400,
            7,
            SR::R622,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            107,
            ett(4.0)
        ),
        profile!(
            "ETTm1",
            Electricity,
            FifteenMinutes,
            57600,
            7,
            SR::R622,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            108,
            Recipe {
                seasonal: vec![(96, 1.5), (672, 0.6)],
                ..ett(1.5)
            }
        ),
        profile!(
            "ETTm2",
            Electricity,
            FifteenMinutes,
            57600,
            7,
            SR::R622,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            109,
            Recipe {
                seasonal: vec![(96, 1.5), (672, 0.6)],
                ..ett(3.0)
            }
        ),
        profile!(
            "Electricity",
            Electricity,
            Hourly,
            26304,
            321,
            SR::R712,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            110,
            Recipe {
                trend: TrendKind::None,
                seasonal: vec![(24, 4.0), (168, 1.5)],
                shifts: vec![],
                ar: 0.5,
                noise: 0.35,
                correlation: 0.7,
                factors: 3,
                channel_noise: 0.35,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "Solar",
            Energy,
            TenMinutes,
            52560,
            137,
            SR::R622,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            111,
            Recipe {
                trend: TrendKind::None,
                seasonal: vec![(144, 4.0)],
                shifts: vec![],
                ar: 0.3,
                noise: 0.25,
                correlation: 0.8,
                factors: 2,
                channel_noise: 0.25,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "Wind",
            Energy,
            FifteenMinutes,
            48673,
            7,
            SR::R712,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            112,
            Recipe {
                trend: TrendKind::None,
                seasonal: vec![(96, 0.5)],
                shifts: vec![(0.4, 1.2)],
                ar: 0.9,
                noise: 1.1,
                correlation: 0.4,
                factors: 2,
                channel_noise: 0.9,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "Weather",
            Environment,
            TenMinutes,
            52696,
            21,
            SR::R712,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            113,
            Recipe {
                trend: TrendKind::None,
                seasonal: vec![(144, 2.0), (1008, 0.8)],
                shifts: vec![],
                ar: 0.85,
                noise: 0.6,
                correlation: 0.55,
                factors: 3,
                channel_noise: 0.5,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "AQShunyi",
            Environment,
            Hourly,
            35064,
            11,
            SR::R622,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            114,
            Recipe {
                trend: TrendKind::None,
                seasonal: vec![(24, 1.2), (720, 2.0)],
                shifts: vec![],
                ar: 0.8,
                noise: 0.8,
                correlation: 0.6,
                factors: 3,
                channel_noise: 0.6,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "AQWan",
            Environment,
            Hourly,
            35064,
            11,
            SR::R622,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            115,
            Recipe {
                trend: TrendKind::None,
                seasonal: vec![(24, 1.1), (720, 1.8)],
                shifts: vec![],
                ar: 0.8,
                noise: 0.85,
                correlation: 0.6,
                factors: 3,
                channel_noise: 0.6,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "ZafNoo",
            Nature,
            ThirtyMinutes,
            19225,
            11,
            SR::R712,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            116,
            Recipe {
                trend: TrendKind::None,
                seasonal: vec![(48, 1.8)],
                shifts: vec![],
                ar: 0.7,
                noise: 0.7,
                correlation: 0.5,
                factors: 2,
                channel_noise: 0.6,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "CzeLan",
            Nature,
            ThirtyMinutes,
            19934,
            11,
            SR::R712,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            117,
            Recipe {
                trend: TrendKind::None,
                seasonal: vec![(48, 2.0)],
                shifts: vec![],
                ar: 0.65,
                noise: 0.65,
                correlation: 0.55,
                factors: 2,
                channel_noise: 0.55,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "FRED-MD",
            Economic,
            Monthly,
            728,
            107,
            SR::R712,
            SHORT_HORIZONS,
            SHORT_LOOKBACKS,
            118,
            Recipe {
                trend: TrendKind::Linear { slope: 0.08 },
                seasonal: vec![(12, 0.3)],
                shifts: vec![],
                ar: 0.6,
                noise: 0.4,
                correlation: 0.65,
                factors: 3,
                channel_noise: 0.35,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "Exchange",
            Economic,
            Daily,
            7588,
            8,
            SR::R712,
            LONG_HORIZONS,
            LONG_LOOKBACKS,
            119,
            walk(0.6, 0.8, 0.25)
        ),
        profile!(
            "NASDAQ",
            Stock,
            Daily,
            1244,
            5,
            SR::R712,
            SHORT_HORIZONS,
            SHORT_LOOKBACKS,
            120,
            walk(0.5, 1.5, 0.35)
        ),
        profile!(
            "NYSE",
            Stock,
            Daily,
            1243,
            5,
            SR::R712,
            SHORT_HORIZONS,
            SHORT_LOOKBACKS,
            121,
            Recipe {
                shifts: vec![(0.35, 4.0), (0.7, -3.0)],
                ..walk(0.5, 0.0, 0.35)
            }
        ),
        profile!(
            "NN5",
            Banking,
            Daily,
            791,
            111,
            SR::R712,
            SHORT_HORIZONS,
            SHORT_LOOKBACKS,
            122,
            Recipe {
                trend: TrendKind::None,
                seasonal: vec![(7, 2.5)],
                shifts: vec![],
                ar: 0.4,
                noise: 0.8,
                correlation: 0.5,
                factors: 3,
                channel_noise: 0.7,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "ILI",
            Health,
            Weekly,
            966,
            7,
            SR::R712,
            SHORT_HORIZONS,
            SHORT_LOOKBACKS,
            123,
            Recipe {
                trend: TrendKind::Linear { slope: 0.003 },
                seasonal: vec![(52, 3.0)],
                shifts: vec![],
                ar: 0.7,
                noise: 0.5,
                correlation: 0.75,
                factors: 2,
                channel_noise: 0.4,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "Covid-19",
            Health,
            Daily,
            1392,
            948,
            SR::R712,
            SHORT_HORIZONS,
            SHORT_LOOKBACKS,
            124,
            Recipe {
                trend: TrendKind::Exponential {
                    rate: 0.004,
                    amp: 1.0
                },
                seasonal: vec![(7, 0.6)],
                shifts: vec![(0.5, 3.0)],
                ar: 0.8,
                noise: 0.5,
                correlation: 0.7,
                factors: 2,
                channel_noise: 0.4,
                idio_ar: 0.5,
                regimes: None,
            }
        ),
        profile!(
            "Wike2000",
            Web,
            Daily,
            792,
            2000,
            SR::R712,
            SHORT_HORIZONS,
            SHORT_LOOKBACKS,
            125,
            Recipe {
                trend: TrendKind::None,
                seasonal: vec![(7, 1.2)],
                shifts: vec![(0.6, 2.0)],
                ar: 0.5,
                noise: 1.4,
                correlation: 0.35,
                factors: 4,
                channel_noise: 1.2,
                idio_ar: 0.5,
                regimes: Some((150, 3.0)),
            }
        ),
    ]
}

/// Looks up a profile by its paper name (case-sensitive).
pub fn profile_by_name(name: &str) -> Option<DatasetProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_25_profiles() {
        assert_eq!(all_profiles().len(), 25);
    }

    #[test]
    fn paper_shapes_match_table5() {
        let p = profile_by_name("ETTh1").unwrap();
        assert_eq!(p.paper_len, 14400);
        assert_eq!(p.paper_dim, 7);
        assert_eq!(p.split, SplitRatio::R622);
        let p = profile_by_name("Wike2000").unwrap();
        assert_eq!(p.paper_dim, 2000);
        assert_eq!(p.horizons, SHORT_HORIZONS);
        let p = profile_by_name("PEMS-BAY").unwrap();
        assert_eq!(p.paper_len, 52116);
        assert_eq!(p.horizons, LONG_HORIZONS);
    }

    #[test]
    fn names_are_unique() {
        let profiles = all_profiles();
        let mut names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn generation_respects_scale_caps() {
        let p = profile_by_name("Traffic").unwrap();
        let s = p.generate(Scale::TINY);
        assert_eq!(s.len(), 600);
        assert_eq!(s.dim(), 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile_by_name("ILI").unwrap();
        let a = p.generate(Scale::TINY);
        let b = p.generate(Scale::TINY);
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn full_scale_short_datasets_have_paper_length() {
        let p = profile_by_name("FRED-MD").unwrap();
        let s = p.generate(Scale::FULL);
        assert_eq!(s.len(), 728);
        assert_eq!(s.dim(), 107);
    }

    #[test]
    fn profiles_cover_all_ten_domains() {
        let profiles = all_profiles();
        for d in Domain::ALL {
            assert!(
                profiles.iter().any(|p| p.domain == d),
                "missing domain {d:?}"
            );
        }
    }

    #[test]
    fn generated_values_are_finite() {
        for p in all_profiles() {
            let s = p.generate(Scale::TINY);
            assert!(
                s.values().iter().all(|v| v.is_finite()),
                "{} produced non-finite values",
                p.name
            );
        }
    }
}

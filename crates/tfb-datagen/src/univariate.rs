//! The univariate archive mirroring Table 4 of the paper.
//!
//! The real archive curates 8,068 series from 16 open-source collections
//! across seven frequency groups, each with its own forecasting horizon.
//! This generator reproduces the archive's published structure — the
//! per-frequency series counts, horizons and length regimes — with
//! synthetic series drawn from six characteristic archetypes (trending,
//! seasonal, trend+seasonal, shifting, transition-heavy, stationary noise)
//! so that the archive spans the same characteristic space the paper's
//! Figure 5 documents.

use crate::components::{SeriesBuilder, TrendKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tfb_data::{Domain, Frequency, UniSeries};

/// Per-frequency specification: one row of Table 4.
#[derive(Debug, Clone, Copy)]
pub struct UnivariateSpec {
    /// Frequency group.
    pub frequency: Frequency,
    /// Number of series in the full-size archive.
    pub full_count: usize,
    /// Forecasting horizon `F` used by the fixed-forecast evaluation.
    pub horizon: usize,
    /// Series length range (inclusive) for this group.
    pub len_range: (usize, usize),
}

/// The seven frequency groups of Table 4 with their published counts and
/// horizons. Length regimes follow the `|TS| < 300` column: yearly and
/// quarterly series are short, hourly series are all ≥ 300 points.
pub const SPECS: [UnivariateSpec; 7] = [
    UnivariateSpec {
        frequency: Frequency::Yearly,
        full_count: 1500,
        horizon: 6,
        len_range: (30, 80),
    },
    UnivariateSpec {
        frequency: Frequency::Quarterly,
        full_count: 1514,
        horizon: 8,
        len_range: (40, 160),
    },
    UnivariateSpec {
        frequency: Frequency::Monthly,
        full_count: 1674,
        horizon: 18,
        len_range: (80, 500),
    },
    UnivariateSpec {
        frequency: Frequency::Weekly,
        full_count: 805,
        horizon: 13,
        len_range: (120, 900),
    },
    UnivariateSpec {
        frequency: Frequency::Daily,
        full_count: 1484,
        horizon: 14,
        len_range: (120, 800),
    },
    UnivariateSpec {
        frequency: Frequency::Hourly,
        full_count: 706,
        horizon: 48,
        len_range: (400, 1008),
    },
    UnivariateSpec {
        frequency: Frequency::Other,
        full_count: 385,
        horizon: 8,
        len_range: (60, 400),
    },
];

/// Total series count of the full archive (8,068 in the paper).
pub fn full_archive_size() -> usize {
    SPECS.iter().map(|s| s.full_count).sum()
}

/// A generated univariate archive.
#[derive(Debug, Clone)]
pub struct UnivariateArchive {
    /// The series, ordered by frequency group then index.
    pub series: Vec<UniSeries>,
}

/// The six characteristic archetypes series are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Archetype {
    Trending,
    Seasonal,
    TrendSeasonal,
    Shifting,
    Transition,
    Stationary,
}

const ARCHETYPES: [Archetype; 6] = [
    Archetype::Trending,
    Archetype::Seasonal,
    Archetype::TrendSeasonal,
    Archetype::Shifting,
    Archetype::Transition,
    Archetype::Stationary,
];

/// Domains rotate across the archive to mimic the "dozens of domains" of
/// the 16 source collections.
const DOMAINS: [Domain; 11] = [
    Domain::Economic,
    Domain::Traffic,
    Domain::Energy,
    Domain::Health,
    Domain::Web,
    Domain::Banking,
    Domain::Stock,
    Domain::Environment,
    Domain::Nature,
    Domain::Electricity,
    Domain::Other,
];

impl UnivariateArchive {
    /// Generates the archive with counts divided by `divisor` (use 1 for
    /// the full 8,068-series archive; the default studies use 20, which
    /// yields ~400 series — large enough for stable per-characteristic
    /// aggregates, small enough to evaluate 21 methods in CI).
    pub fn generate(divisor: usize, seed: u64) -> UnivariateArchive {
        let divisor = divisor.max(1);
        let mut series = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for (gi, spec) in SPECS.iter().enumerate() {
            let count = (spec.full_count / divisor).max(3);
            for i in 0..count {
                let archetype = ARCHETYPES[i % ARCHETYPES.len()];
                let domain = DOMAINS[(i / ARCHETYPES.len()) % DOMAINS.len()];
                let len = rng.gen_range(spec.len_range.0..=spec.len_range.1);
                // Make sure every series supports its evaluation windows:
                // fixed forecasting uses H = 1.25 F of history plus F.
                let min_len = (spec.horizon as f64 * 2.5).ceil() as usize + 8;
                let len = len.max(min_len);
                let series_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((gi * 100_000 + i) as u64);
                let values = build_archetype(archetype, spec.frequency, len, series_seed);
                let name = format!("{}{:04}", freq_prefix(spec.frequency), i);
                series.push(
                    UniSeries::new(name, spec.frequency, domain, values)
                        .expect("generated series is nonempty"),
                );
            }
        }
        UnivariateArchive { series }
    }

    /// Number of series in the archive.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The forecasting horizon for a series, per its frequency group
    /// (Table 4's `F` column).
    pub fn horizon_for(frequency: Frequency) -> usize {
        SPECS
            .iter()
            .find(|s| s.frequency == frequency)
            .map(|s| s.horizon)
            .unwrap_or(8)
    }
}

fn freq_prefix(f: Frequency) -> &'static str {
    match f {
        Frequency::Yearly => "Y",
        Frequency::Quarterly => "Q",
        Frequency::Monthly => "M",
        Frequency::Weekly => "W",
        Frequency::Daily => "D",
        Frequency::Hourly => "H",
        _ => "O",
    }
}

fn build_archetype(a: Archetype, freq: Frequency, len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let period = freq.default_period().clamp(2, (len / 3).max(2));
    let base = SeriesBuilder::new(len, seed);
    let b = match a {
        Archetype::Trending => base
            .trend(TrendKind::Linear {
                slope: rng.gen_range(0.05..0.3),
            })
            .ar(0.5)
            .noise(rng.gen_range(0.5..1.5)),
        Archetype::Seasonal => base
            .seasonal(period, rng.gen_range(2.0..5.0))
            .ar(0.3)
            .noise(rng.gen_range(0.3..0.8)),
        Archetype::TrendSeasonal => base
            .trend(TrendKind::Linear {
                slope: rng.gen_range(0.05..0.2),
            })
            .seasonal(period, rng.gen_range(1.5..4.0))
            .ar(0.4)
            .noise(rng.gen_range(0.3..0.8)),
        Archetype::Shifting => base
            .level_shift(rng.gen_range(0.3..0.7), rng.gen_range(4.0..10.0))
            .ar(0.9)
            .noise(rng.gen_range(0.4..1.0)),
        Archetype::Transition => base
            .seasonal(period, rng.gen_range(1.0..2.0))
            .regimes((len / 5).max(2), rng.gen_range(2.0..4.0))
            .ar(0.6)
            .noise(rng.gen_range(0.4..1.0)),
        Archetype::Stationary => base.ar(rng.gen_range(0.0..0.4)).noise(1.0),
    };
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_archive_counts_match_table4() {
        assert_eq!(full_archive_size(), 8068);
    }

    #[test]
    fn horizons_match_table4() {
        assert_eq!(UnivariateArchive::horizon_for(Frequency::Yearly), 6);
        assert_eq!(UnivariateArchive::horizon_for(Frequency::Quarterly), 8);
        assert_eq!(UnivariateArchive::horizon_for(Frequency::Monthly), 18);
        assert_eq!(UnivariateArchive::horizon_for(Frequency::Weekly), 13);
        assert_eq!(UnivariateArchive::horizon_for(Frequency::Daily), 14);
        assert_eq!(UnivariateArchive::horizon_for(Frequency::Hourly), 48);
        assert_eq!(UnivariateArchive::horizon_for(Frequency::Other), 8);
    }

    #[test]
    fn scaled_archive_has_all_groups() {
        let a = UnivariateArchive::generate(40, 7);
        for spec in &SPECS {
            let count = a
                .series
                .iter()
                .filter(|s| s.frequency == spec.frequency)
                .count();
            assert!(count >= 3, "{:?} underrepresented", spec.frequency);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = UnivariateArchive::generate(100, 7);
        let b = UnivariateArchive::generate(100, 7);
        assert_eq!(a.series.len(), b.series.len());
        for (x, y) in a.series.iter().zip(&b.series) {
            assert_eq!(x.values, y.values);
        }
    }

    #[test]
    fn every_series_supports_its_evaluation_window() {
        let a = UnivariateArchive::generate(40, 7);
        for s in &a.series {
            let f = UnivariateArchive::horizon_for(s.frequency);
            let h = (f as f64 * 1.25).ceil() as usize;
            assert!(
                s.len() >= h + f,
                "{} too short: {} < {}",
                s.name,
                s.len(),
                h + f
            );
        }
    }

    #[test]
    fn series_values_are_finite() {
        let a = UnivariateArchive::generate(100, 3);
        for s in &a.series {
            assert!(s.values.iter().all(|v| v.is_finite()), "{}", s.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let a = UnivariateArchive::generate(50, 7);
        let mut names: Vec<&str> = a.series.iter().map(|s| s.name.as_str()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}

//! Composable generators for the building blocks of real time series:
//! trend, multi-harmonic seasonality, level shifts, regime transitions,
//! autoregressive noise and random walks.
//!
//! [`SeriesBuilder`] layers these components additively, exactly matching
//! the decomposition `X = T + S + R` that underlies the paper's trend and
//! seasonality characteristics — which makes the generated characteristics
//! controllable by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the trend component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrendKind {
    /// `slope * t`, the FRED-MD-style steady growth.
    Linear {
        /// Growth per step, in units of the noise scale.
        slope: f64,
    },
    /// `amp * ((1 + rate)^t - 1)`, compounding growth.
    Exponential {
        /// Per-step growth rate (small, e.g. 1e-4).
        rate: f64,
        /// Overall amplitude.
        amp: f64,
    },
    /// Piecewise linear with direction changes at the given break fractions.
    Piecewise {
        /// Slope segments; breaks are evenly spaced.
        slopes: [f64; 3],
    },
    /// No trend.
    None,
}

/// Builds one univariate component stack deterministically from a seed.
///
/// ```
/// use tfb_datagen::{SeriesBuilder, TrendKind};
///
/// // 200 points of daily-style data: upward trend + weekly cycle + AR noise.
/// let series = SeriesBuilder::new(200, 42)
///     .trend(TrendKind::Linear { slope: 0.1 })
///     .seasonal(7, 2.0)
///     .ar(0.5)
///     .noise(0.8)
///     .build();
/// assert_eq!(series.len(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct SeriesBuilder {
    len: usize,
    trend: TrendKind,
    /// (period, amplitude) pairs; amplitudes in noise-scale units.
    harmonics: Vec<(usize, f64)>,
    /// (position fraction in (0,1), jump size) level shifts.
    shifts: Vec<(f64, f64)>,
    /// AR(1) coefficient of the noise; 0 = white noise, 1 = random walk.
    ar: f64,
    /// Noise standard deviation.
    noise: f64,
    /// Regime switching: alternate between calm and scaled-volatility
    /// regimes every `regime_len` steps (0 disables).
    regime_len: usize,
    /// Volatility multiplier of the "loud" regime.
    regime_vol: f64,
    seed: u64,
}

impl SeriesBuilder {
    /// Starts a builder for a series of `len` points with the given seed.
    pub fn new(len: usize, seed: u64) -> Self {
        SeriesBuilder {
            len,
            trend: TrendKind::None,
            harmonics: Vec::new(),
            shifts: Vec::new(),
            ar: 0.0,
            noise: 1.0,
            regime_len: 0,
            regime_vol: 1.0,
            seed,
        }
    }

    /// Sets the trend component.
    pub fn trend(mut self, t: TrendKind) -> Self {
        self.trend = t;
        self
    }

    /// Adds a sinusoidal seasonal component.
    pub fn seasonal(mut self, period: usize, amplitude: f64) -> Self {
        if period >= 2 && amplitude != 0.0 {
            self.harmonics.push((period, amplitude));
        }
        self
    }

    /// Adds a level shift at `at_frac` of the series (e.g. 0.5 = midpoint).
    pub fn level_shift(mut self, at_frac: f64, jump: f64) -> Self {
        self.shifts.push((at_frac.clamp(0.0, 1.0), jump));
        self
    }

    /// Sets the AR(1) coefficient of the noise process (clamped to [0, 1]).
    /// 1.0 yields a unit-root random walk (non-stationary).
    pub fn ar(mut self, phi: f64) -> Self {
        self.ar = phi.clamp(0.0, 1.0);
        self
    }

    /// Sets the noise standard deviation.
    pub fn noise(mut self, sigma: f64) -> Self {
        self.noise = sigma.max(0.0);
        self
    }

    /// Enables volatility regime switching.
    pub fn regimes(mut self, regime_len: usize, vol_multiplier: f64) -> Self {
        self.regime_len = regime_len;
        self.regime_vol = vol_multiplier.max(0.0);
        self
    }

    /// Generates the series.
    pub fn build(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.len;
        let mut out = vec![0.0; n];
        // Trend.
        match self.trend {
            TrendKind::None => {}
            TrendKind::Linear { slope } => {
                for (t, v) in out.iter_mut().enumerate() {
                    *v += slope * t as f64;
                }
            }
            TrendKind::Exponential { rate, amp } => {
                for (t, v) in out.iter_mut().enumerate() {
                    *v += amp * ((1.0 + rate).powf(t as f64) - 1.0);
                }
            }
            TrendKind::Piecewise { slopes } => {
                let seg = (n / 3).max(1);
                let mut level = 0.0;
                for (t, v) in out.iter_mut().enumerate() {
                    let slope = slopes[(t / seg).min(2)];
                    level += slope;
                    *v += level;
                }
            }
        }
        // Seasonality: sum of harmonics with seeded phases.
        for &(period, amp) in &self.harmonics {
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            for (t, v) in out.iter_mut().enumerate() {
                let theta = std::f64::consts::TAU * t as f64 / period as f64 + phase;
                *v += amp * theta.sin();
            }
        }
        // Level shifts.
        for &(frac, jump) in &self.shifts {
            let at = ((n as f64 * frac) as usize).min(n.saturating_sub(1));
            for v in out.iter_mut().skip(at) {
                *v += jump;
            }
        }
        // AR(1) noise with optional volatility regimes.
        let mut state = 0.0_f64;
        for (t, v) in out.iter_mut().enumerate() {
            let vol = if self.regime_len > 0 && (t / self.regime_len) % 2 == 1 {
                self.regime_vol
            } else {
                1.0
            };
            let eps: f64 = gaussian(&mut rng) * self.noise * vol;
            state = self.ar * state + eps;
            *v += state;
        }
        out
    }
}

/// Standard normal sample via Box–Muller (keeps us independent of
/// `rand_distr`, which is not in the approved dependency set).
pub fn gaussian(rng: &mut StdRng) -> f64 {
    // Avoid log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Mixes `k` latent factor series into `dim` observed channels with a
/// target cross-channel correlation strength in [0, 1]:
/// `channel_c = strength * factor_mix + (1 - strength) * idiosyncratic`.
///
/// `strength` near 1 produces highly correlated channels (PEMS-BAY-like),
/// near 0 nearly independent ones. The idiosyncratic component follows an
/// AR(1) with coefficient `idio_ar`; pass 1.0 for random-walk factors so
/// both components live on the same scale (otherwise a shared unit-root
/// factor dominates any stationary noise and the channels end up almost
/// perfectly correlated regardless of `strength`).
pub fn correlated_channels(
    factors: &[Vec<f64>],
    dim: usize,
    strength: f64,
    noise: f64,
    idio_ar: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    assert!(!factors.is_empty(), "need at least one latent factor");
    let n = factors[0].len();
    assert!(
        factors.iter().all(|f| f.len() == n),
        "factor length mismatch"
    );
    let strength = strength.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut channels = Vec::with_capacity(dim);
    for _c in 0..dim {
        // Random convex-ish mixing weights over the factors.
        let mut weights: Vec<f64> = (0..factors.len())
            .map(|_| rng.gen_range(0.2..1.0))
            .collect();
        let wsum: f64 = weights.iter().sum();
        for w in weights.iter_mut() {
            *w /= wsum;
        }
        let scale: f64 = rng.gen_range(0.5..2.0);
        let offset: f64 = rng.gen_range(-1.0..1.0);
        let mut ch = Vec::with_capacity(n);
        let mut idio_state = 0.0_f64;
        let phi = idio_ar.clamp(0.0, 1.0);
        for t in 0..n {
            let common: f64 = factors.iter().zip(&weights).map(|(f, w)| f[t] * w).sum();
            idio_state = phi * idio_state + gaussian(&mut rng) * noise;
            ch.push(offset + scale * (strength * common + (1.0 - strength) * idio_state));
        }
        channels.push(ch);
    }
    channels
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_math::stats::{mean, pearson, std_dev};

    #[test]
    fn builder_is_deterministic() {
        let a = SeriesBuilder::new(200, 42)
            .trend(TrendKind::Linear { slope: 0.1 })
            .seasonal(24, 2.0)
            .ar(0.5)
            .build();
        let b = SeriesBuilder::new(200, 42)
            .trend(TrendKind::Linear { slope: 0.1 })
            .seasonal(24, 2.0)
            .ar(0.5)
            .build();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SeriesBuilder::new(100, 1).noise(1.0).build();
        let b = SeriesBuilder::new(100, 2).noise(1.0).build();
        assert_ne!(a, b);
    }

    #[test]
    fn linear_trend_dominates_mean_growth() {
        let xs = SeriesBuilder::new(1000, 7)
            .trend(TrendKind::Linear { slope: 1.0 })
            .noise(0.5)
            .build();
        let early = mean(&xs[..100]);
        let late = mean(&xs[900..]);
        assert!(late - early > 700.0, "growth {}", late - early);
    }

    #[test]
    fn level_shift_moves_the_level() {
        let xs = SeriesBuilder::new(400, 3)
            .level_shift(0.5, 50.0)
            .noise(1.0)
            .build();
        let before = mean(&xs[..200]);
        let after = mean(&xs[200..]);
        assert!(after - before > 40.0);
    }

    #[test]
    fn seasonal_component_has_expected_amplitude() {
        let xs = SeriesBuilder::new(480, 5)
            .seasonal(24, 3.0)
            .noise(0.0)
            .build();
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        assert!((hi - 3.0).abs() < 0.05);
        assert!((lo + 3.0).abs() < 0.05);
    }

    #[test]
    fn random_walk_variance_grows() {
        let xs = SeriesBuilder::new(2000, 11).ar(1.0).noise(1.0).build();
        let early_sd = std_dev(&xs[..200]);
        let all_sd = std_dev(&xs);
        assert!(all_sd > 1.3 * early_sd, "{all_sd} vs {early_sd}");
    }

    #[test]
    fn regimes_modulate_volatility() {
        let xs = SeriesBuilder::new(2000, 13)
            .regimes(500, 5.0)
            .noise(1.0)
            .build();
        let calm = std_dev(&xs[..500]);
        let loud = std_dev(&xs[500..1000]);
        assert!(loud > 2.5 * calm, "{loud} vs {calm}");
    }

    #[test]
    fn correlated_channels_hit_target_strength_ordering() {
        let factor = SeriesBuilder::new(1500, 17)
            .seasonal(48, 2.0)
            .ar(0.8)
            .build();
        let strong = correlated_channels(std::slice::from_ref(&factor), 4, 0.95, 0.3, 0.5, 1);
        let weak = correlated_channels(&[factor], 4, 0.05, 0.3, 0.5, 1);
        let avg_corr = |chs: &Vec<Vec<f64>>| {
            let mut acc = 0.0;
            let mut cnt = 0;
            for i in 0..chs.len() {
                for j in (i + 1)..chs.len() {
                    acc += pearson(&chs[i], &chs[j]).unwrap();
                    cnt += 1;
                }
            }
            acc / cnt as f64
        };
        let strong_corr = avg_corr(&strong);
        let weak_corr = avg_corr(&weak);
        assert!(strong_corr > 0.8, "strong {strong_corr}");
        assert!(weak_corr < 0.5, "weak {weak_corr}");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(99);
        let xs: Vec<f64> = (0..20000).map(|_| gaussian(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.05);
        assert!((std_dev(&xs) - 1.0).abs() < 0.05);
    }
}

//! Dependency-free JSON for the benchmark's three serialization points:
//! the dataset-repository manifest, the benchmark configuration file, and
//! the machine-readable benchmark reports (`BENCH_*.json`).
//!
//! The surface is deliberately small: a [`JsonValue`] tree, a strict
//! recursive-descent parser, and a pretty printer whose layout matches
//! `serde_json::to_string_pretty` (two-space indent) so previously
//! committed artifacts stay diff-stable.

use std::fmt;

/// A parsed JSON document.
///
/// Objects preserve insertion order so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

/// Parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for parsing.
pub type Result<T> = std::result::Result<T, JsonError>;

impl JsonValue {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<JsonValue> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Pretty string with two-space indentation and a trailing newline-free
    /// layout matching `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Compact single-line form.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            JsonValue::Array(_) => out.push_str("[]"),
            JsonValue::Object(_) => out.push_str("{}"),
            other => other.write_compact(out),
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::String(s)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> JsonValue {
        JsonValue::Number(n)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> JsonValue {
        JsonValue::Number(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Appends `n` to `out` exactly as [`JsonValue::compact`] would — the
/// serve hot path uses this to stream numbers into a reused response
/// buffer without building a [`JsonValue`] tree first.
pub fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char> {
        // self.pos is at 'u'.
        self.pos += 1;
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        if (0xD800..0xDC00).contains(&code) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let hex2 = self
                    .bytes
                    .get(self.pos..self.pos + 4)
                    .ok_or_else(|| self.err("truncated surrogate pair"))?;
                let text2 =
                    std::str::from_utf8(hex2).map_err(|_| self.err("invalid surrogate pair"))?;
                let low = u32::from_str_radix(text2, 16)
                    .map_err(|_| self.err("invalid surrogate pair"))?;
                self.pos += 4;
                let combined = 0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                return char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-1.5e2").unwrap(),
            JsonValue::Number(-150.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(|c| c.as_str()), Some("x"));
        let arr = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(|b| b.as_bool()), Some(false));
    }

    #[test]
    fn pretty_roundtrips() {
        let text = r#"{"datasets": ["ILI", "NASDAQ"], "horizons": [24, 36], "nested": {"stride": 1}, "empty": [], "ratio": 0.7}"#;
        let v = JsonValue::parse(text).unwrap();
        let pretty = v.pretty();
        assert_eq!(JsonValue::parse(&pretty).unwrap(), v);
        assert!(
            pretty.contains("  \"datasets\": [\n    \"ILI\""),
            "{pretty}"
        );
        assert!(pretty.contains("\"empty\": []"));
    }

    #[test]
    fn compact_roundtrips() {
        let v = JsonValue::parse(r#"{"a":[1,true,null],"b":"s"}"#).unwrap();
        assert_eq!(JsonValue::parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        let v = JsonValue::Object(vec![
            ("n".into(), JsonValue::Number(24.0)),
            ("f".into(), JsonValue::Number(0.5)),
        ]);
        let s = v.compact();
        assert_eq!(s, r#"{"n":24,"f":0.5}"#);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            JsonValue::parse(r#""é😀""#).unwrap(),
            JsonValue::String("é😀".into())
        );
    }

    #[test]
    fn ordering_is_preserved() {
        let v = JsonValue::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }
}

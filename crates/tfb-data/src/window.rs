//! Look-back/horizon windowing.
//!
//! A forecasting *sample* is a pair (look-back window of `lookback` time
//! points, target horizon of `horizon` time points). The sampler walks a
//! series with a configurable stride and never discards the final samples —
//! dropping them is exactly the unfairness Table 2 of the paper documents
//! (that behaviour lives in [`crate::batch`] behind an explicit opt-in).

use crate::series::MultiSeries;
use crate::{DataError, Result};

/// One forecasting sample: indices into the source series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Start of the look-back region (inclusive).
    pub input_start: usize,
    /// End of the look-back region == start of the target region.
    pub boundary: usize,
    /// End of the target region (exclusive).
    pub target_end: usize,
}

impl Window {
    /// Look-back length.
    pub fn lookback(&self) -> usize {
        self.boundary - self.input_start
    }

    /// Horizon length.
    pub fn horizon(&self) -> usize {
        self.target_end - self.boundary
    }
}

/// Enumerates forecasting samples over a series.
#[derive(Debug, Clone)]
pub struct WindowSampler {
    len: usize,
    lookback: usize,
    horizon: usize,
    stride: usize,
}

impl WindowSampler {
    /// Creates a sampler over a series of length `len`.
    ///
    /// Fails when `lookback + horizon > len` (no sample fits) or any
    /// parameter is zero.
    pub fn new(len: usize, lookback: usize, horizon: usize, stride: usize) -> Result<Self> {
        if lookback == 0 || horizon == 0 || stride == 0 {
            return Err(DataError::InvalidRange("window parameters must be > 0"));
        }
        if lookback + horizon > len {
            return Err(DataError::InvalidRange(
                "series shorter than lookback + horizon",
            ));
        }
        Ok(WindowSampler {
            len,
            lookback,
            horizon,
            stride,
        })
    }

    /// Number of samples this sampler yields.
    pub fn count(&self) -> usize {
        (self.len - self.lookback - self.horizon) / self.stride + 1
    }

    /// The `i`-th sample.
    pub fn window(&self, i: usize) -> Window {
        let input_start = i * self.stride;
        Window {
            input_start,
            boundary: input_start + self.lookback,
            target_end: input_start + self.lookback + self.horizon,
        }
    }

    /// Iterates over all samples in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = Window> + '_ {
        (0..self.count()).map(|i| self.window(i))
    }

    /// Extracts the look-back block of a sample as a flat time-major vector.
    pub fn input_block(&self, series: &MultiSeries, w: Window) -> Vec<f64> {
        let dim = series.dim();
        series.values()[w.input_start * dim..w.boundary * dim].to_vec()
    }

    /// Extracts the target block of a sample as a flat time-major vector.
    pub fn target_block(&self, series: &MultiSeries, w: Window) -> Vec<f64> {
        let dim = series.dim();
        series.values()[w.boundary * dim..w.target_end * dim].to_vec()
    }
}

/// Pooled (features, targets) sample pairs produced by [`lag_matrix`].
pub type LagSamples = (Vec<Vec<f64>>, Vec<Vec<f64>>);

/// Builds the (features, targets) design for autoregressive tabular models:
/// each row concatenates `lookback` lagged values of one channel, and the
/// target is the next `horizon` values of that channel.
///
/// Returns `(features, targets)` where `features[i]` has length `lookback`
/// and `targets[i]` has length `horizon`. Univariate helper used by the ML
/// models (LR, RF, XGB) in channel-independent mode.
pub fn lag_matrix(series: &[f64], lookback: usize, horizon: usize) -> Result<LagSamples> {
    if lookback == 0 || horizon == 0 {
        return Err(DataError::InvalidRange("lag_matrix parameters must be > 0"));
    }
    if series.len() < lookback + horizon {
        return Err(DataError::InvalidRange(
            "series shorter than lookback + horizon",
        ));
    }
    let samples = series.len() - lookback - horizon + 1;
    let mut xs = Vec::with_capacity(samples);
    let mut ys = Vec::with_capacity(samples);
    for s in 0..samples {
        xs.push(series[s..s + lookback].to_vec());
        ys.push(series[s + lookback..s + lookback + horizon].to_vec());
    }
    Ok((xs, ys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Domain, Frequency};

    fn series(n: usize, dim: usize) -> MultiSeries {
        let chans: Vec<Vec<f64>> = (0..dim)
            .map(|c| (0..n).map(|t| (t * 10 + c) as f64).collect())
            .collect();
        MultiSeries::from_channels("s", Frequency::Hourly, Domain::Traffic, &chans).unwrap()
    }

    #[test]
    fn sampler_counts_follow_paper_example() {
        // Figure 4: test series of length 2880, horizon 336, lookback 512
        // yields 2033 samples at stride 1.
        let s = WindowSampler::new(2880, 512, 336, 1).unwrap();
        assert_eq!(s.count(), 2880 - 512 - 336 + 1);
        assert_eq!(s.count(), 2033);
    }

    #[test]
    fn windows_are_contiguous_and_strided() {
        let s = WindowSampler::new(20, 4, 2, 3).unwrap();
        let w0 = s.window(0);
        assert_eq!((w0.input_start, w0.boundary, w0.target_end), (0, 4, 6));
        let w1 = s.window(1);
        assert_eq!(w1.input_start, 3);
        assert_eq!(w0.lookback(), 4);
        assert_eq!(w0.horizon(), 2);
    }

    #[test]
    fn last_window_fits_exactly() {
        let s = WindowSampler::new(10, 3, 2, 1).unwrap();
        let last = s.window(s.count() - 1);
        assert_eq!(last.target_end, 10);
    }

    #[test]
    fn sampler_rejects_impossible_configs() {
        assert!(WindowSampler::new(5, 4, 2, 1).is_err());
        assert!(WindowSampler::new(10, 0, 2, 1).is_err());
        assert!(WindowSampler::new(10, 2, 0, 1).is_err());
        assert!(WindowSampler::new(10, 2, 2, 0).is_err());
    }

    #[test]
    fn blocks_extract_correct_values() {
        let m = series(10, 2);
        let s = WindowSampler::new(10, 3, 2, 1).unwrap();
        let w = s.window(1);
        let input = s.input_block(&m, w);
        // times 1,2,3 with channels interleaved: 10,11,20,21,30,31
        assert_eq!(input, vec![10.0, 11.0, 20.0, 21.0, 30.0, 31.0]);
        let target = s.target_block(&m, w);
        assert_eq!(target, vec![40.0, 41.0, 50.0, 51.0]);
    }

    #[test]
    fn lag_matrix_shapes_and_values() {
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let (f, t) = lag_matrix(&xs, 3, 2).unwrap();
        assert_eq!(f.len(), 4);
        assert_eq!(f[0], vec![0.0, 1.0, 2.0]);
        assert_eq!(t[0], vec![3.0, 4.0]);
        assert_eq!(f[3], vec![3.0, 4.0, 5.0]);
        assert_eq!(t[3], vec![6.0, 7.0]);
    }

    #[test]
    fn lag_matrix_rejects_short_series() {
        assert!(lag_matrix(&[1.0, 2.0], 2, 2).is_err());
    }
}

//! Time-series containers and the data-handling primitives of the TFB
//! pipeline's *data layer*: chronological splits (7:1:2 and 6:2:2),
//! normalization fitted on the training region only, look-back/horizon
//! windowing, batching (with the optional — and deliberately unfair —
//! "drop last" trick kept around solely for the Table 2 ablation), and the
//! standardized wide CSV format used by the original benchmark.

pub mod batch;
pub mod csvfmt;
pub mod impute;
pub mod normalize;
pub mod repository;
pub mod series;
pub mod split;
pub mod window;

pub use batch::{BatchIter, Batching};
pub use impute::{impute, Imputation};
pub use normalize::{NormStats, Normalization, Normalizer};
pub use series::{Domain, Frequency, MultiSeries, UniSeries};
pub use split::{ChronoSplit, SplitRatio};
pub use window::{Window, WindowSampler};

/// Errors produced by the data layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A series was empty where data is required.
    Empty,
    /// Window/split parameters do not fit the series length.
    InvalidRange(&'static str),
    /// Shapes of multivariate inputs disagree.
    ShapeMismatch(&'static str),
    /// A CSV document could not be parsed.
    Parse(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Empty => write!(f, "empty series"),
            DataError::InvalidRange(what) => write!(f, "invalid range: {what}"),
            DataError::ShapeMismatch(what) => write!(f, "shape mismatch: {what}"),
            DataError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

/// Result alias for the data layer.
pub type Result<T> = std::result::Result<T, DataError>;

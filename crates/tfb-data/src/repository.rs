//! On-disk dataset repository in the standardized format.
//!
//! The paper's data layer is "a repository of univariate and multivariate
//! time series … uniformly structured according to a standardized format".
//! This module persists a collection as one CSV per dataset plus a JSON
//! manifest carrying the metadata the CSV body cannot (name, domain,
//! frequency, split), and loads it back.

use crate::csvfmt;
use crate::series::{Domain, Frequency, MultiSeries};
use crate::split::SplitRatio;
use crate::{DataError, Result};
use std::path::Path;
use tfb_json::JsonValue;

/// Manifest entry for one stored dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Dataset name (also the CSV file stem).
    pub name: String,
    /// Application domain.
    pub domain: Domain,
    /// Sampling frequency.
    pub frequency: Frequency,
    /// Chronological split ratio.
    pub split: SplitRatio,
    /// Number of time points (for validation on load).
    pub len: usize,
    /// Number of channels (for validation on load).
    pub dim: usize,
}

/// The repository manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// One entry per stored dataset.
    pub datasets: Vec<ManifestEntry>,
}

const MANIFEST_NAME: &str = "manifest.json";

impl ManifestEntry {
    fn to_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("name".into(), JsonValue::from(self.name.as_str())),
            ("domain".into(), JsonValue::from(self.domain.name())),
            ("frequency".into(), JsonValue::from(self.frequency.name())),
            (
                "split".into(),
                JsonValue::Object(vec![
                    ("train".into(), JsonValue::from(self.split.train)),
                    ("val".into(), JsonValue::from(self.split.val)),
                    ("test".into(), JsonValue::from(self.split.test)),
                ]),
            ),
            ("len".into(), JsonValue::from(self.len)),
            ("dim".into(), JsonValue::from(self.dim)),
        ])
    }

    fn from_value(v: &JsonValue) -> Result<ManifestEntry> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| DataError::Parse(format!("manifest entry missing '{key}'")))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| DataError::Parse("'name' must be a string".into()))?
            .to_string();
        let domain_name = field("domain")?
            .as_str()
            .ok_or_else(|| DataError::Parse("'domain' must be a string".into()))?;
        let domain = Domain::parse_name(domain_name)
            .ok_or_else(|| DataError::Parse(format!("unknown domain '{domain_name}'")))?;
        let freq_name = field("frequency")?
            .as_str()
            .ok_or_else(|| DataError::Parse("'frequency' must be a string".into()))?;
        let frequency = Frequency::parse_name(freq_name)
            .ok_or_else(|| DataError::Parse(format!("unknown frequency '{freq_name}'")))?;
        let split_v = field("split")?;
        let fraction = |key: &str| {
            split_v
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| DataError::Parse(format!("split missing fraction '{key}'")))
        };
        let split = SplitRatio {
            train: fraction("train")?,
            val: fraction("val")?,
            test: fraction("test")?,
        };
        let len = field("len")?
            .as_usize()
            .ok_or_else(|| DataError::Parse("'len' must be an integer".into()))?;
        let dim = field("dim")?
            .as_usize()
            .ok_or_else(|| DataError::Parse("'dim' must be an integer".into()))?;
        Ok(ManifestEntry {
            name,
            domain,
            frequency,
            split,
            len,
            dim,
        })
    }
}

impl Manifest {
    /// Serializes the manifest to pretty JSON.
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![(
            "datasets".into(),
            JsonValue::Array(self.datasets.iter().map(ManifestEntry::to_value).collect()),
        )])
        .pretty()
    }

    /// Parses a manifest from JSON.
    pub fn from_json(text: &str) -> Result<Manifest> {
        let doc = JsonValue::parse(text).map_err(|e| DataError::Parse(e.to_string()))?;
        let datasets = doc
            .get("datasets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| DataError::Parse("manifest missing 'datasets' array".into()))?
            .iter()
            .map(ManifestEntry::from_value)
            .collect::<Result<Vec<_>>>()?;
        Ok(Manifest { datasets })
    }
}

/// Writes a collection of (series, split) pairs into `dir`.
pub fn save(dir: &Path, datasets: &[(&MultiSeries, SplitRatio)]) -> Result<()> {
    std::fs::create_dir_all(dir).map_err(io_err)?;
    let mut manifest = Manifest::default();
    for (series, split) in datasets {
        let path = dir.join(format!("{}.csv", sanitize(&series.name)));
        std::fs::write(&path, csvfmt::to_csv(series)).map_err(io_err)?;
        manifest.datasets.push(ManifestEntry {
            name: series.name.clone(),
            domain: series.domain,
            frequency: series.frequency,
            split: *split,
            len: series.len(),
            dim: series.dim(),
        });
    }
    std::fs::write(dir.join(MANIFEST_NAME), manifest.to_json()).map_err(io_err)?;
    Ok(())
}

/// Loads every dataset listed in the manifest of `dir`.
pub fn load(dir: &Path) -> Result<Vec<(MultiSeries, SplitRatio)>> {
    let text = std::fs::read_to_string(dir.join(MANIFEST_NAME)).map_err(io_err)?;
    let manifest = Manifest::from_json(&text)?;
    let mut out = Vec::with_capacity(manifest.datasets.len());
    for entry in &manifest.datasets {
        let path = dir.join(format!("{}.csv", sanitize(&entry.name)));
        let body = std::fs::read_to_string(&path).map_err(io_err)?;
        let series = csvfmt::from_csv(&body, entry.name.clone(), entry.frequency, entry.domain)?;
        if series.len() != entry.len || series.dim() != entry.dim {
            return Err(DataError::Parse(format!(
                "{}: stored shape {}x{} does not match manifest {}x{}",
                entry.name,
                series.len(),
                series.dim(),
                entry.len,
                entry.dim
            )));
        }
        out.push((series, entry.split));
    }
    Ok(out)
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn io_err(e: std::io::Error) -> DataError {
    DataError::Parse(format!("io: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tfb_repo_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(name: &str) -> MultiSeries {
        MultiSeries::from_channels(
            name,
            Frequency::Hourly,
            Domain::Energy,
            &[vec![1.0, 2.5, -3.0], vec![0.5, 0.25, 0.125]],
        )
        .unwrap()
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = temp_dir("roundtrip");
        let a = sample("Alpha");
        let b = sample("Beta-2");
        save(&dir, &[(&a, SplitRatio::R712), (&b, SplitRatio::R622)]).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0.values(), a.values());
        assert_eq!(loaded[0].1, SplitRatio::R712);
        assert_eq!(loaded[1].0.name, "Beta-2");
        assert_eq!(loaded[1].1, SplitRatio::R622);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_detects_shape_tampering() {
        let dir = temp_dir("tamper");
        let a = sample("Gamma");
        save(&dir, &[(&a, SplitRatio::R712)]).unwrap();
        // Truncate a row from the CSV body.
        let path = dir.join("Gamma.csv");
        let body = std::fs::read_to_string(&path).unwrap();
        let truncated: Vec<&str> = body.lines().take(3).collect();
        std::fs::write(&path, truncated.join("\n")).unwrap();
        assert!(load(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn names_are_sanitized_for_paths() {
        let dir = temp_dir("sanitize");
        let weird = MultiSeries::from_channels(
            "FRED-MD (full/2024)",
            Frequency::Monthly,
            Domain::Economic,
            &[vec![1.0, 2.0]],
        )
        .unwrap();
        save(&dir, &[(&weird, SplitRatio::R712)]).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded[0].0.name, "FRED-MD (full/2024)");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

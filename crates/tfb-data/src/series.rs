//! Univariate and multivariate time-series containers plus the frequency
//! and domain taxonomy of the TFB dataset collection.

use crate::{DataError, Result};

/// Sampling frequency of a series, following Table 4/5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frequency {
    /// Every 5 minutes (METR-LA, PEMS-BAY, PEMS04, PEMS08).
    FiveMinutes,
    /// Every 10 minutes (Solar, Weather).
    TenMinutes,
    /// Every 15 minutes (ETTm1/2, Wind).
    FifteenMinutes,
    /// Every 30 minutes (ZafNoo, CzeLan).
    ThirtyMinutes,
    /// Hourly (ETTh1/2, Electricity, Traffic, AQShunyi, AQWan).
    Hourly,
    /// Daily (Exchange, NASDAQ, NYSE, NN5, Covid-19, Wike2000).
    Daily,
    /// Weekly (ILI).
    Weekly,
    /// Monthly (FRED-MD).
    Monthly,
    /// Quarterly (univariate archive).
    Quarterly,
    /// Yearly (univariate archive).
    Yearly,
    /// Anything else ("Other" in Table 4).
    Other,
}

impl Frequency {
    /// The natural seasonal period for this frequency, used as the default
    /// `S` of the MASE metric and as the seasonal-naive lag: 24 for hourly
    /// (daily cycle), 7 for daily (weekly cycle), 52 for weekly, 12 for
    /// monthly, 4 for quarterly, 1 (none) for yearly/other, and one day's
    /// worth of steps for sub-hourly data.
    pub fn default_period(self) -> usize {
        match self {
            Frequency::FiveMinutes => 288,
            Frequency::TenMinutes => 144,
            Frequency::FifteenMinutes => 96,
            Frequency::ThirtyMinutes => 48,
            Frequency::Hourly => 24,
            Frequency::Daily => 7,
            Frequency::Weekly => 52,
            Frequency::Monthly => 12,
            Frequency::Quarterly => 4,
            Frequency::Yearly | Frequency::Other => 1,
        }
    }

    /// Canonical identifier used in manifests.
    pub fn name(self) -> &'static str {
        match self {
            Frequency::FiveMinutes => "FiveMinutes",
            Frequency::TenMinutes => "TenMinutes",
            Frequency::FifteenMinutes => "FifteenMinutes",
            Frequency::ThirtyMinutes => "ThirtyMinutes",
            Frequency::Hourly => "Hourly",
            Frequency::Daily => "Daily",
            Frequency::Weekly => "Weekly",
            Frequency::Monthly => "Monthly",
            Frequency::Quarterly => "Quarterly",
            Frequency::Yearly => "Yearly",
            Frequency::Other => "Other",
        }
    }

    /// Inverse of [`Frequency::name`].
    pub fn parse_name(name: &str) -> Option<Frequency> {
        match name {
            "FiveMinutes" => Some(Frequency::FiveMinutes),
            "TenMinutes" => Some(Frequency::TenMinutes),
            "FifteenMinutes" => Some(Frequency::FifteenMinutes),
            "ThirtyMinutes" => Some(Frequency::ThirtyMinutes),
            "Hourly" => Some(Frequency::Hourly),
            "Daily" => Some(Frequency::Daily),
            "Weekly" => Some(Frequency::Weekly),
            "Monthly" => Some(Frequency::Monthly),
            "Quarterly" => Some(Frequency::Quarterly),
            "Yearly" => Some(Frequency::Yearly),
            "Other" => Some(Frequency::Other),
            _ => None,
        }
    }

    /// Short human-readable label (matches the paper's tables).
    pub fn label(self) -> &'static str {
        match self {
            Frequency::FiveMinutes => "5 mins",
            Frequency::TenMinutes => "10 mins",
            Frequency::FifteenMinutes => "15 mins",
            Frequency::ThirtyMinutes => "30 mins",
            Frequency::Hourly => "1 hour",
            Frequency::Daily => "1 day",
            Frequency::Weekly => "1 week",
            Frequency::Monthly => "1 month",
            Frequency::Quarterly => "1 quarter",
            Frequency::Yearly => "1 year",
            Frequency::Other => "other",
        }
    }
}

/// Application domain of a dataset — the ten domains of the paper plus a
/// catch-all for the univariate archive's long tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Road traffic (METR-LA, PEMS-*, Traffic).
    Traffic,
    /// Electric load and transformers (ETT*, Electricity).
    Electricity,
    /// Power generation (Solar, Wind).
    Energy,
    /// Environmental measurements (Weather, AQShunyi, AQWan).
    Environment,
    /// Ecology (ZafNoo, CzeLan).
    Nature,
    /// Macro-economics (FRED-MD, Exchange).
    Economic,
    /// Stock markets (NASDAQ, NYSE).
    Stock,
    /// Banking (NN5).
    Banking,
    /// Public health (ILI, Covid-19).
    Health,
    /// Web traffic (Wike2000).
    Web,
    /// Other/unlabelled (univariate archive tail).
    Other,
}

impl Domain {
    /// All ten named domains (excludes [`Domain::Other`]).
    pub const ALL: [Domain; 10] = [
        Domain::Traffic,
        Domain::Electricity,
        Domain::Energy,
        Domain::Environment,
        Domain::Nature,
        Domain::Economic,
        Domain::Stock,
        Domain::Banking,
        Domain::Health,
        Domain::Web,
    ];

    /// Canonical identifier used in manifests (coincides with
    /// [`Domain::label`] except that it never contains spaces).
    pub fn name(self) -> &'static str {
        match self {
            Domain::Traffic => "Traffic",
            Domain::Electricity => "Electricity",
            Domain::Energy => "Energy",
            Domain::Environment => "Environment",
            Domain::Nature => "Nature",
            Domain::Economic => "Economic",
            Domain::Stock => "Stock",
            Domain::Banking => "Banking",
            Domain::Health => "Health",
            Domain::Web => "Web",
            Domain::Other => "Other",
        }
    }

    /// Inverse of [`Domain::name`].
    pub fn parse_name(name: &str) -> Option<Domain> {
        match name {
            "Traffic" => Some(Domain::Traffic),
            "Electricity" => Some(Domain::Electricity),
            "Energy" => Some(Domain::Energy),
            "Environment" => Some(Domain::Environment),
            "Nature" => Some(Domain::Nature),
            "Economic" => Some(Domain::Economic),
            "Stock" => Some(Domain::Stock),
            "Banking" => Some(Domain::Banking),
            "Health" => Some(Domain::Health),
            "Web" => Some(Domain::Web),
            "Other" => Some(Domain::Other),
            _ => None,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Traffic => "Traffic",
            Domain::Electricity => "Electricity",
            Domain::Energy => "Energy",
            Domain::Environment => "Environment",
            Domain::Nature => "Nature",
            Domain::Economic => "Economic",
            Domain::Stock => "Stock",
            Domain::Banking => "Banking",
            Domain::Health => "Health",
            Domain::Web => "Web",
            Domain::Other => "Other",
        }
    }
}

/// A univariate time series with metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct UniSeries {
    /// Identifier within its archive (e.g. "Y0001").
    pub name: String,
    /// Sampling frequency.
    pub frequency: Frequency,
    /// Application domain.
    pub domain: Domain,
    /// Observations in chronological order.
    pub values: Vec<f64>,
}

impl UniSeries {
    /// Creates a series, rejecting empty data.
    pub fn new(
        name: impl Into<String>,
        frequency: Frequency,
        domain: Domain,
        values: Vec<f64>,
    ) -> Result<Self> {
        if values.is_empty() {
            return Err(DataError::Empty);
        }
        Ok(UniSeries {
            name: name.into(),
            frequency,
            domain,
            values,
        })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false by construction; present for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A multivariate time series stored time-major: `values[t * dim + c]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSeries {
    /// Dataset name (e.g. "ETTh1").
    pub name: String,
    /// Sampling frequency.
    pub frequency: Frequency,
    /// Application domain.
    pub domain: Domain,
    /// Number of channels (variables).
    dim: usize,
    /// Time-major storage of length `len * dim`.
    values: Vec<f64>,
}

impl MultiSeries {
    /// Creates a multivariate series from time-major storage.
    pub fn new(
        name: impl Into<String>,
        frequency: Frequency,
        domain: Domain,
        dim: usize,
        values: Vec<f64>,
    ) -> Result<Self> {
        if dim == 0 || values.is_empty() {
            return Err(DataError::Empty);
        }
        if !values.len().is_multiple_of(dim) {
            return Err(DataError::ShapeMismatch("values.len() % dim != 0"));
        }
        Ok(MultiSeries {
            name: name.into(),
            frequency,
            domain,
            dim,
            values,
        })
    }

    /// Builds a multivariate series from per-channel vectors (all must have
    /// equal length).
    pub fn from_channels(
        name: impl Into<String>,
        frequency: Frequency,
        domain: Domain,
        channels: &[Vec<f64>],
    ) -> Result<Self> {
        if channels.is_empty() || channels[0].is_empty() {
            return Err(DataError::Empty);
        }
        let len = channels[0].len();
        if channels.iter().any(|c| c.len() != len) {
            return Err(DataError::ShapeMismatch("unequal channel lengths"));
        }
        let dim = channels.len();
        let mut values = Vec::with_capacity(len * dim);
        for t in 0..len {
            for ch in channels {
                values.push(ch[t]);
            }
        }
        MultiSeries::new(name, frequency, domain, dim, values)
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.values.len() / self.dim
    }

    /// Always false by construction; present for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of channels.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The time-major raw storage.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value at time `t`, channel `c`.
    #[inline]
    pub fn at(&self, t: usize, c: usize) -> f64 {
        self.values[t * self.dim + c]
    }

    /// Mutable value at time `t`, channel `c`.
    #[inline]
    pub fn at_mut(&mut self, t: usize, c: usize) -> &mut f64 {
        &mut self.values[t * self.dim + c]
    }

    /// The row (all channels) at time `t`.
    #[inline]
    pub fn row(&self, t: usize) -> &[f64] {
        &self.values[t * self.dim..(t + 1) * self.dim]
    }

    /// Copies channel `c` into a vector.
    pub fn channel(&self, c: usize) -> Vec<f64> {
        (0..self.len()).map(|t| self.at(t, c)).collect()
    }

    /// A new series containing rows `range` (used by splits and rolling
    /// evaluation). Panics if the range is out of bounds.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> MultiSeries {
        assert!(range.end <= self.len(), "slice_rows out of bounds");
        MultiSeries {
            name: self.name.clone(),
            frequency: self.frequency,
            domain: self.domain,
            dim: self.dim,
            values: self.values[range.start * self.dim..range.end * self.dim].to_vec(),
        }
    }

    /// Views this series as a collection of per-channel vectors.
    pub fn to_channels(&self) -> Vec<Vec<f64>> {
        (0..self.dim).map(|c| self.channel(c)).collect()
    }

    /// Converts a univariate series into a 1-channel multivariate series.
    pub fn from_uni(u: &UniSeries) -> MultiSeries {
        MultiSeries {
            name: u.name.clone(),
            frequency: u.frequency,
            domain: u.domain,
            dim: 1,
            values: u.values.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniseries_rejects_empty() {
        assert!(UniSeries::new("x", Frequency::Daily, Domain::Web, vec![]).is_err());
    }

    #[test]
    fn frequency_periods_match_paper_conventions() {
        assert_eq!(Frequency::Hourly.default_period(), 24);
        assert_eq!(Frequency::Daily.default_period(), 7);
        assert_eq!(Frequency::Monthly.default_period(), 12);
        assert_eq!(Frequency::Yearly.default_period(), 1);
        assert_eq!(Frequency::FiveMinutes.default_period(), 288);
    }

    #[test]
    fn multiseries_shape_checks() {
        assert!(
            MultiSeries::new("m", Frequency::Hourly, Domain::Traffic, 3, vec![1.0; 7]).is_err()
        );
        assert!(
            MultiSeries::new("m", Frequency::Hourly, Domain::Traffic, 0, vec![1.0; 6]).is_err()
        );
        let m = MultiSeries::new("m", Frequency::Hourly, Domain::Traffic, 3, vec![1.0; 6]).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.dim(), 3);
    }

    #[test]
    fn from_channels_interleaves_time_major() {
        let m = MultiSeries::from_channels(
            "m",
            Frequency::Daily,
            Domain::Stock,
            &[vec![1.0, 2.0], vec![10.0, 20.0]],
        )
        .unwrap();
        assert_eq!(m.row(0), &[1.0, 10.0]);
        assert_eq!(m.row(1), &[2.0, 20.0]);
        assert_eq!(m.channel(1), vec![10.0, 20.0]);
    }

    #[test]
    fn from_channels_rejects_ragged() {
        assert!(MultiSeries::from_channels(
            "m",
            Frequency::Daily,
            Domain::Stock,
            &[vec![1.0, 2.0], vec![10.0]],
        )
        .is_err());
    }

    #[test]
    fn slice_rows_extracts_window() {
        let m = MultiSeries::from_channels(
            "m",
            Frequency::Daily,
            Domain::Stock,
            &[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]],
        )
        .unwrap();
        let s = m.slice_rows(1..3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[2.0, 6.0]);
        assert_eq!(s.row(1), &[3.0, 7.0]);
    }

    #[test]
    fn roundtrip_channels() {
        let chans = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = MultiSeries::from_channels("m", Frequency::Daily, Domain::Web, &chans).unwrap();
        assert_eq!(m.to_channels(), chans);
    }

    #[test]
    fn uni_to_multi_is_one_channel() {
        let u = UniSeries::new("u", Frequency::Monthly, Domain::Economic, vec![1.0, 2.0]).unwrap();
        let m = MultiSeries::from_uni(&u);
        assert_eq!(m.dim(), 1);
        assert_eq!(m.channel(0), vec![1.0, 2.0]);
    }
}

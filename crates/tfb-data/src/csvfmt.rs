//! The standardized wide CSV format of the TFB dataset collection.
//!
//! Every dataset is stored as `date,<channel>,<channel>,...` with one row
//! per time point. This module writes and parses that format without any
//! third-party CSV dependency (the format is strictly numeric after the
//! header, so a hand-rolled parser is both faster and clearer).

use crate::series::{Domain, Frequency, MultiSeries};
use crate::{DataError, Result};

/// Serializes a series into the standardized wide CSV format.
///
/// The `date` column holds the integer time index; channel headers are the
/// channel index prefixed with `c`.
pub fn to_csv(series: &MultiSeries) -> String {
    let dim = series.dim();
    let mut out = String::with_capacity(series.len() * dim * 8 + 64);
    out.push_str("date");
    for c in 0..dim {
        out.push_str(",c");
        out.push_str(&c.to_string());
    }
    out.push('\n');
    for t in 0..series.len() {
        out.push_str(&t.to_string());
        for c in 0..dim {
            out.push(',');
            // Shortest roundtrip formatting (Rust's default for f64).
            let v = series.at(t, c);
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    out
}

/// Parses the standardized wide CSV format produced by [`to_csv`].
///
/// `name`, `frequency` and `domain` are metadata not carried in the CSV
/// body (the original benchmark keeps them in a sidecar config).
pub fn from_csv(
    text: &str,
    name: impl Into<String>,
    frequency: Frequency,
    domain: Domain,
) -> Result<MultiSeries> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(DataError::Empty)?;
    let dim = header.split(',').count().saturating_sub(1);
    if dim == 0 {
        return Err(DataError::Parse("header has no channels".into()));
    }
    let mut values = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        // Skip the date column.
        fields
            .next()
            .ok_or_else(|| DataError::Parse(format!("line {}: missing date", lineno + 2)))?;
        let mut count = 0;
        for field in fields {
            let v: f64 = field
                .trim()
                .parse()
                .map_err(|e| DataError::Parse(format!("line {}: {e}", lineno + 2)))?;
            values.push(v);
            count += 1;
        }
        if count != dim {
            return Err(DataError::Parse(format!(
                "line {}: expected {dim} channels, found {count}",
                lineno + 2
            )));
        }
    }
    MultiSeries::new(name, frequency, domain, dim, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MultiSeries {
        MultiSeries::from_channels(
            "s",
            Frequency::Daily,
            Domain::Banking,
            &[vec![1.5, 2.25, -3.0], vec![0.0, 10.0, 100.5]],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_values() {
        let s = sample();
        let csv = to_csv(&s);
        let back = from_csv(&csv, "s", Frequency::Daily, Domain::Banking).unwrap();
        assert_eq!(back.dim(), s.dim());
        assert_eq!(back.len(), s.len());
        assert_eq!(back.values(), s.values());
    }

    #[test]
    fn csv_layout_matches_format() {
        let s = sample();
        let csv = to_csv(&s);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "date,c0,c1");
        assert_eq!(lines.next().unwrap(), "0,1.5,0");
        assert_eq!(lines.next().unwrap(), "1,2.25,10");
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        let text = "date,c0,c1\n0,1.0,2.0\n1,3.0\n";
        assert!(from_csv(text, "x", Frequency::Daily, Domain::Web).is_err());
    }

    #[test]
    fn parse_rejects_non_numeric() {
        let text = "date,c0\n0,abc\n";
        assert!(from_csv(text, "x", Frequency::Daily, Domain::Web).is_err());
    }

    #[test]
    fn parse_rejects_empty_document() {
        assert!(from_csv("", "x", Frequency::Daily, Domain::Web).is_err());
        assert!(from_csv("date\n", "x", Frequency::Daily, Domain::Web).is_err());
    }

    #[test]
    fn parse_skips_blank_lines() {
        let text = "date,c0\n0,1.0\n\n1,2.0\n";
        let s = from_csv(text, "x", Frequency::Daily, Domain::Web).unwrap();
        assert_eq!(s.len(), 2);
    }
}

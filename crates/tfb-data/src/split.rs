//! Chronological train/validation/test splits.
//!
//! TFB fixes a chronological ratio per dataset — 7:1:2 or 6:2:2 — so that
//! every method sees exactly the same data (Issue 3 in the paper).

use crate::series::MultiSeries;
use crate::{DataError, Result};

/// A train/validation/test ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitRatio {
    /// Training fraction.
    pub train: f64,
    /// Validation fraction.
    pub val: f64,
    /// Test fraction.
    pub test: f64,
}

impl SplitRatio {
    /// The 7:1:2 split used by most TFB datasets.
    pub const R712: SplitRatio = SplitRatio {
        train: 0.7,
        val: 0.1,
        test: 0.2,
    };

    /// The 6:2:2 split used by the ETT and PEMS datasets.
    pub const R622: SplitRatio = SplitRatio {
        train: 0.6,
        val: 0.2,
        test: 0.2,
    };

    /// Validates that the fractions are positive and sum to 1 (±1e-9).
    pub fn validate(self) -> Result<Self> {
        let sum = self.train + self.val + self.test;
        if (sum - 1.0).abs() > 1e-9 || self.train <= 0.0 || self.val < 0.0 || self.test <= 0.0 {
            return Err(DataError::InvalidRange("split ratio must sum to 1"));
        }
        Ok(self)
    }

    /// Label like "7:1:2" for reports.
    pub fn label(self) -> String {
        format!(
            "{}:{}:{}",
            (self.train * 10.0).round() as i64,
            (self.val * 10.0).round() as i64,
            (self.test * 10.0).round() as i64
        )
    }
}

/// The three chronological segments of a dataset.
#[derive(Debug, Clone)]
pub struct ChronoSplit {
    /// Training segment (earliest).
    pub train: MultiSeries,
    /// Validation segment.
    pub val: MultiSeries,
    /// Test segment (latest).
    pub test: MultiSeries,
    /// Index where validation starts.
    pub val_start: usize,
    /// Index where test starts.
    pub test_start: usize,
}

impl ChronoSplit {
    /// Splits a series chronologically by `ratio`.
    ///
    /// Segment boundaries are `floor(len * train)` and
    /// `floor(len * (train + val))`, matching the original implementation.
    pub fn split(series: &MultiSeries, ratio: SplitRatio) -> Result<ChronoSplit> {
        let ratio = ratio.validate()?;
        let n = series.len();
        if n < 3 {
            return Err(DataError::InvalidRange("series too short to split"));
        }
        let val_start = (n as f64 * ratio.train).floor() as usize;
        let test_start = (n as f64 * (ratio.train + ratio.val)).floor() as usize;
        if val_start == 0 || test_start <= val_start && ratio.val > 0.0 || test_start >= n {
            return Err(DataError::InvalidRange("degenerate split"));
        }
        Ok(ChronoSplit {
            train: series.slice_rows(0..val_start),
            val: series.slice_rows(val_start..test_start),
            test: series.slice_rows(test_start..n),
            val_start,
            test_start,
        })
    }

    /// Train plus validation as one segment — statistical methods retrain on
    /// everything before the test region.
    pub fn train_val(&self, original: &MultiSeries) -> MultiSeries {
        original.slice_rows(0..self.test_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Domain, Frequency};

    fn series(n: usize) -> MultiSeries {
        MultiSeries::from_channels(
            "s",
            Frequency::Hourly,
            Domain::Electricity,
            &[(0..n).map(|i| i as f64).collect()],
        )
        .unwrap()
    }

    #[test]
    fn split_712_proportions() {
        let s = series(100);
        let sp = ChronoSplit::split(&s, SplitRatio::R712).unwrap();
        assert_eq!(sp.train.len(), 70);
        assert_eq!(sp.val.len(), 10);
        assert_eq!(sp.test.len(), 20);
    }

    #[test]
    fn split_622_proportions() {
        let s = series(100);
        let sp = ChronoSplit::split(&s, SplitRatio::R622).unwrap();
        assert_eq!(sp.train.len(), 60);
        assert_eq!(sp.val.len(), 20);
        assert_eq!(sp.test.len(), 20);
    }

    #[test]
    fn split_is_chronological() {
        let s = series(50);
        let sp = ChronoSplit::split(&s, SplitRatio::R712).unwrap();
        assert_eq!(sp.train.at(0, 0), 0.0);
        assert_eq!(sp.val.at(0, 0), sp.train.len() as f64);
        assert_eq!(sp.test.at(0, 0), (sp.train.len() + sp.val.len()) as f64);
    }

    #[test]
    fn split_rejects_bad_ratio() {
        let s = series(100);
        let bad = SplitRatio {
            train: 0.5,
            val: 0.1,
            test: 0.1,
        };
        assert!(ChronoSplit::split(&s, bad).is_err());
    }

    #[test]
    fn split_rejects_tiny_series() {
        let s = series(2);
        assert!(ChronoSplit::split(&s, SplitRatio::R712).is_err());
    }

    #[test]
    fn train_val_concatenates() {
        let s = series(100);
        let sp = ChronoSplit::split(&s, SplitRatio::R622).unwrap();
        let tv = sp.train_val(&s);
        assert_eq!(tv.len(), 80);
        assert_eq!(tv.at(79, 0), 79.0);
    }

    #[test]
    fn ratio_labels() {
        assert_eq!(SplitRatio::R712.label(), "7:1:2");
        assert_eq!(SplitRatio::R622.label(), "6:2:2");
    }
}

//! Batching of forecasting samples.
//!
//! The "drop last" trick — discarding the final incomplete batch during
//! *testing* — silently removes test samples and changes reported scores as
//! a function of batch size (Table 2 / Figure 4 of the paper). TFB never
//! drops samples; the option exists here only so the Table 2 ablation can
//! reproduce the distortion.

use crate::window::{Window, WindowSampler};

/// Batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batching {
    /// Number of samples per batch.
    pub batch_size: usize,
    /// Whether to discard a final batch smaller than `batch_size`.
    /// **Unfair for evaluation** — see Table 2 of the paper. TFB's pipeline
    /// always sets this to `false`; it is configurable only for the
    /// ablation study.
    pub drop_last: bool,
}

impl Batching {
    /// Fair batching: keep every sample.
    pub fn keep_all(batch_size: usize) -> Batching {
        Batching {
            batch_size: batch_size.max(1),
            drop_last: false,
        }
    }

    /// The "drop last" trick, for the Table 2 ablation only.
    pub fn drop_last(batch_size: usize) -> Batching {
        Batching {
            batch_size: batch_size.max(1),
            drop_last: true,
        }
    }

    /// Number of batches over `n` samples.
    pub fn batch_count(&self, n: usize) -> usize {
        if self.drop_last {
            n / self.batch_size
        } else {
            n.div_ceil(self.batch_size)
        }
    }

    /// Number of samples retained over `n` samples (fewer than `n` only when
    /// `drop_last` is set).
    pub fn samples_retained(&self, n: usize) -> usize {
        if self.drop_last {
            (n / self.batch_size) * self.batch_size
        } else {
            n
        }
    }
}

/// Iterator over batches of windows.
pub struct BatchIter<'a> {
    sampler: &'a WindowSampler,
    policy: Batching,
    next_batch: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates a batch iterator over all samples of `sampler`.
    pub fn new(sampler: &'a WindowSampler, policy: Batching) -> Self {
        BatchIter {
            sampler,
            policy,
            next_batch: 0,
        }
    }
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = Vec<Window>;

    fn next(&mut self) -> Option<Vec<Window>> {
        let total = self.sampler.count();
        let start = self.next_batch * self.policy.batch_size;
        if start >= total {
            return None;
        }
        let end = (start + self.policy.batch_size).min(total);
        if self.policy.drop_last && end - start < self.policy.batch_size {
            return None;
        }
        self.next_batch += 1;
        Some((start..end).map(|i| self.sampler.window(i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_all_retains_every_sample() {
        let sampler = WindowSampler::new(100, 10, 5, 1).unwrap();
        let total = sampler.count();
        let batches: Vec<_> = BatchIter::new(&sampler, Batching::keep_all(32)).collect();
        let seen: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(seen, total);
        assert_eq!(batches.last().unwrap().len(), total % 32);
    }

    #[test]
    fn drop_last_discards_partial_batch() {
        let sampler = WindowSampler::new(100, 10, 5, 1).unwrap();
        let total = sampler.count(); // 86
        let batches: Vec<_> = BatchIter::new(&sampler, Batching::drop_last(32)).collect();
        let seen: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(seen, (total / 32) * 32);
        assert!(seen < total);
    }

    #[test]
    fn paper_figure4_sample_counts() {
        // ETTh2 test region: length 2880, F=336, H=512 -> 2033 samples.
        // Last-batch sizes for 32/64/128 are 17/49/113 per the paper.
        let sampler = WindowSampler::new(2880, 512, 336, 1).unwrap();
        let total = sampler.count();
        assert_eq!(total, 2033);
        for (bs, expect_last) in [(32usize, 17usize), (64, 49), (128, 113)] {
            let batches: Vec<_> = BatchIter::new(&sampler, Batching::keep_all(bs)).collect();
            assert_eq!(batches.last().unwrap().len(), expect_last, "bs={bs}");
        }
    }

    #[test]
    fn batch_count_math() {
        let keep = Batching::keep_all(32);
        assert_eq!(keep.batch_count(100), 4);
        assert_eq!(keep.samples_retained(100), 100);
        let drop = Batching::drop_last(32);
        assert_eq!(drop.batch_count(100), 3);
        assert_eq!(drop.samples_retained(100), 96);
    }

    #[test]
    fn exact_multiple_has_no_partial_batch() {
        let sampler = WindowSampler::new(37, 5, 1, 1).unwrap(); // 32 samples
        assert_eq!(sampler.count(), 32);
        let keep: Vec<_> = BatchIter::new(&sampler, Batching::keep_all(16)).collect();
        let drop: Vec<_> = BatchIter::new(&sampler, Batching::drop_last(16)).collect();
        assert_eq!(keep.len(), drop.len());
    }

    #[test]
    fn zero_batch_size_is_clamped() {
        assert_eq!(Batching::keep_all(0).batch_size, 1);
    }
}
